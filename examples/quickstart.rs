//! Quickstart: the paper's Figure 1 — slicing a population by height.
//!
//! Ten people with heights skewed toward 2 m are split into two slices: the
//! five shortest and the five tallest. Slices hold a *proportion* of the
//! population, so the split stays balanced no matter how skewed the heights
//! are — the paper's argument against absolute thresholds ("taller than
//! 1.65 m"), which can leave a group empty.
//!
//! The second half runs the actual gossip protocol at a 500-node scale:
//! nobody sees the population, yet everyone finds its half.
//!
//! Run with:
//! ```text
//! cargo run -p dslice --example quickstart
//! ```

use dslice::prelude::*;

fn main() {
    // ── Part 1: the model (Fig. 1, exact) ──────────────────────────────
    let heights = [1.51, 1.55, 1.62, 1.68, 1.73, 1.78, 1.82, 1.88, 1.93, 1.99];
    let partition = Partition::equal(2).unwrap();
    let people: Vec<(NodeId, Attribute)> = heights
        .iter()
        .enumerate()
        .map(|(i, &h)| (NodeId::new(i as u64 + 1), Attribute::new(h).unwrap()))
        .collect();

    println!("Figure 1: ten people, two slices");
    let slices = rank::true_slices(people.iter().copied(), &partition);
    for (id, height) in &people {
        println!(
            "  person {id:>2}  {:.2} m  -> {}",
            height.value(),
            slices[id]
        );
    }

    // ── Part 2: the protocol (distributed, 500 nodes) ──────────────────
    // A normal height distribution; every node runs the ranking algorithm
    // of §5 and learns its slice from gossip samples alone.
    let cfg = SimConfig {
        n: 500,
        view_size: 8,
        partition: partition.clone(),
        distribution: AttributeDistribution::Normal {
            mean: 1.75,
            std_dev: 0.12,
        },
        seed: 42,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();

    println!("\nGossip run (n = 500, ranking algorithm):");
    println!("  cycle   SDM (slice disorder measure)");
    for checkpoint in [1usize, 5, 10, 20, 40, 80] {
        while engine.cycle() < checkpoint {
            engine.step();
        }
        println!("  {:>5}   {:>8.1}", engine.cycle(), engine.sdm());
    }

    // The extremes always know where they belong.
    let mut snapshot = engine.snapshot();
    snapshot.sort_by_key(|a| a.1);
    let shortest = snapshot.first().unwrap();
    let tallest = snapshot.last().unwrap();
    println!(
        "\n  shortest node ({:.2} m) believes it is in {}",
        shortest.1.value(),
        partition.slice_of(shortest.2)
    );
    println!(
        "  tallest node  ({:.2} m) believes it is in {}",
        tallest.1.value(),
        partition.slice_of(tallest.2)
    );
    assert_eq!(partition.slice_of(shortest.2).as_usize(), 0);
    assert_eq!(partition.slice_of(tallest.2).as_usize(), 1);
}
