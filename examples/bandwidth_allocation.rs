//! Resource allocation over a heavy-tailed bandwidth population.
//!
//! The paper's motivation (§1.1): a generic P2P platform wants to hand the
//! top 10% of nodes (by bandwidth) to a latency-critical application, the
//! next 40% to bulk distribution, and the rest to background tasks.
//! Measured P2P bandwidth distributions are heavy-tailed, so absolute
//! thresholds are hopeless — slices, being rank-based, are immune to the
//! skew.
//!
//! This example slices a Pareto-distributed population with the ranking
//! algorithm and reports per-slice assignment quality.
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example bandwidth_allocation
//! ```

use dslice::prelude::*;

fn main() {
    // 10% super-peers / 40% relays / 50% leaf nodes.
    let partition = Partition::from_fractions(&[0.5, 0.4, 0.1]).unwrap();
    let names = [
        "leaf (bottom 50%)",
        "relay (middle 40%)",
        "super-peer (top 10%)",
    ];

    let cfg = SimConfig {
        n: 2_000,
        view_size: 10,
        partition: partition.clone(),
        // Heavy tail: most nodes are slow, a few are enormously fast.
        distribution: AttributeDistribution::Pareto {
            scale: 1.0, // 1 Mbit/s floor
            shape: 1.5,
        },
        seed: 2024,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();

    println!("slicing a Pareto(1, 1.5) bandwidth population, n = 2000\n");
    println!("cycle    SDM      correctly-sliced");
    for checkpoint in [5usize, 20, 50, 100, 200, 400] {
        while engine.cycle() < checkpoint {
            engine.step();
        }
        let snapshot = engine.snapshot();
        let truth = rank::true_slices(snapshot.iter().map(|&(id, a, _)| (id, a)), &partition);
        let correct = snapshot
            .iter()
            .filter(|(id, _, est)| partition.slice_of(*est) == truth[id])
            .count();
        println!(
            "{:>5}  {:>8.1}   {:>5.1}%",
            checkpoint,
            engine.sdm(),
            100.0 * correct as f64 / snapshot.len() as f64
        );
    }

    // Final per-slice report.
    let snapshot = engine.snapshot();
    let truth = rank::true_slices(snapshot.iter().map(|&(id, a, _)| (id, a)), &partition);
    println!("\nper-slice outcome:");
    for (idx, name) in names.iter().enumerate() {
        let members: Vec<_> = snapshot
            .iter()
            .filter(|(_, _, est)| partition.slice_of(*est).as_usize() == idx)
            .collect();
        let correct = members
            .iter()
            .filter(|(id, _, _)| truth[id].as_usize() == idx)
            .count();
        let min_bw = members
            .iter()
            .map(|(_, a, _)| a.value())
            .fold(f64::INFINITY, f64::min);
        let max_bw = members
            .iter()
            .map(|(_, a, _)| a.value())
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  S{idx} {name:<22} {:>4} members, {:>5.1}% correct, bandwidth {:.1}–{:.1} Mbit/s",
            members.len(),
            100.0 * correct as f64 / members.len().max(1) as f64,
            min_bw,
            max_bw,
        );
    }

    // The headline guarantee: the true top-10% slice is mostly identified.
    let super_peers: Vec<_> = snapshot
        .iter()
        .filter(|(id, _, _)| truth[id].as_usize() == 2)
        .collect();
    let found = super_peers
        .iter()
        .filter(|(_, _, est)| partition.slice_of(*est).as_usize() == 2)
        .count();
    let recall = 100.0 * found as f64 / super_peers.len().max(1) as f64;
    println!("\nsuper-peer recall: {recall:.1}% of the true top-10% self-identify as super-peers");
    assert!(recall > 60.0, "super-peer recall collapsed: {recall}");
}
