//! Zero-cost re-slicing: changing the partitioning of a live network.
//!
//! §1.1 motivates slicing as a resource-allocation primitive — and
//! allocations change. Because both protocol families estimate the
//! partition-independent *normalized rank*, installing a new partitioning
//! (`Engine::set_partition`) costs no protocol work: the very next lookup
//! is as accurate as the estimates already were.
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example repartition
//! ```

use dslice::prelude::*;

fn main() {
    let n = 1_500;
    let cfg = SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(4).unwrap(),
        seed: 555,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();

    println!("phase 1: converge under 4 equal slices");
    engine.run(120);
    println!(
        "  cycle {:>4}: accuracy {:>5.1}%  histogram {:?}",
        engine.cycle(),
        100.0 * engine.accuracy(),
        engine.slice_histogram()
    );

    // A new application arrives and the platform re-allocates:
    // 70% workers / 20% relays / 10% coordinators.
    println!("\nphase 2: install a 70/20/10 partitioning — zero extra messages");
    engine.set_partition(Partition::from_fractions(&[0.7, 0.2, 0.1]).unwrap());
    println!(
        "  immediately:  accuracy {:>5.1}%  histogram {:?}",
        100.0 * engine.accuracy(),
        engine.slice_histogram()
    );

    println!("\nphase 3: keep gossiping — boundary targeting now aims at the new boundaries");
    engine.run(120);
    println!(
        "  cycle {:>4}: accuracy {:>5.1}%  histogram {:?}",
        engine.cycle(),
        100.0 * engine.accuracy(),
        engine.slice_histogram()
    );

    assert!(
        engine.accuracy() > 0.9,
        "re-sliced network failed to sharpen"
    );
    println!("\nre-slicing was free; convergence continued under the new slices");
}
