//! A production-scale slicing run: 100 000 nodes, 50 cycles, the ranking
//! algorithm — ten times the paper's population (§4.5 runs 10⁴).
//!
//! Demonstrates the engine's scale architecture end to end: slab-backed
//! node storage, per-node RNG streams, a sharded active phase, and a sparse
//! metrics cadence. The shard count is tunable via the first CLI argument
//! (default 4) and **never changes the simulated result** — only the
//! wall-clock. Run with:
//!
//! ```text
//! cargo run --release --example scale_run [shards]
//! ```

use dslice::prelude::*;
use std::time::Instant;

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .map(|raw| raw.parse().expect("shards must be a positive integer"))
        .unwrap_or(4);

    let cfg = SimConfig {
        n: 100_000,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 0xD51CE,
        shards,
        // Measure every 10th cycle: the evaluation oracle (global sort for
        // the GDM) is the one O(n log n) piece, so at scale it runs on a
        // cadence while the protocol itself stays O(n) per cycle.
        metrics_every: 10,
        ..SimConfig::default()
    };

    println!(
        "scale run: n = {}, slices = {}, view = {}, shards = {shards}",
        cfg.n,
        cfg.partition.len(),
        cfg.view_size,
    );

    let build_start = Instant::now();
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    println!(
        "built + bootstrapped in {:.2}s | initial SDM {:.0}",
        build_start.elapsed().as_secs_f64(),
        engine.sdm()
    );

    let run_start = Instant::now();
    let record = engine.run(50);
    let elapsed = run_start.elapsed().as_secs_f64();

    for stats in record.cycles.iter().filter(|c| c.cycle % 10 == 0) {
        println!(
            "cycle {:>3}: SDM {:>9.1} | accuracy-relevant population {}",
            stats.cycle, stats.sdm, stats.n
        );
    }
    println!(
        "50 cycles over {} nodes in {elapsed:.2}s ({:.0} ms/cycle) | final SDM {:.0} | accuracy {:.1}%",
        engine.population(),
        1000.0 * elapsed / 50.0,
        engine.sdm(),
        100.0 * engine.accuracy(),
    );

    assert!(
        engine.sdm() < record.cycles[0].sdm / 4.0,
        "slicing must converge at scale"
    );
}
