//! Multi-attribute slicing — the paper's declared future work, working.
//!
//! A platform rarely cares about one capability: a streaming relay needs
//! bandwidth *and* storage. This example gives every node a two-dimensional
//! attribute vector (bandwidth heavy-tailed, storage roughly independent),
//! runs per-dimension rank estimation over a shared gossip stream, and
//! compares the three composite policies:
//!
//! * **grid** — top-third bandwidth × top-third storage cells;
//! * **weighted** — 2:1 bandwidth:storage scalarization;
//! * **bottleneck** — a node is as good as its scarcest resource.
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example multi_attribute
//! ```

use dslice::algorithms::multi::{
    true_rank_vectors, AttributeVector, CompositePolicy, CompositeSlice, MultiSwarm,
};
use dslice::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 1_200;
    let mut rng = StdRng::seed_from_u64(4242);

    // Bandwidth: Pareto (heavy tail). Storage: log-uniform, independent.
    let population: Vec<(NodeId, AttributeVector)> = (0..n)
        .map(|i| {
            let u: f64 = rng.gen_range(0.0001..1.0);
            let bandwidth = u.powf(-1.0 / 1.5); // Mbit/s
            let storage = 10f64.powf(rng.gen_range(0.0..3.0)); // GB
            (
                NodeId::new(i as u64),
                AttributeVector::new(vec![
                    Attribute::new(bandwidth).unwrap(),
                    Attribute::new(storage).unwrap(),
                ]),
            )
        })
        .collect();

    let grid = CompositePolicy::Grid(vec![
        Partition::equal(3).unwrap(), // bandwidth thirds
        Partition::equal(3).unwrap(), // storage thirds
    ]);
    let weighted = CompositePolicy::Weighted {
        weights: vec![2.0, 1.0],
        partition: Partition::equal(4).unwrap(),
    };
    let bottleneck = CompositePolicy::Bottleneck(Partition::equal(4).unwrap());

    let mut swarm = MultiSwarm::new(population.clone(), 0.5);
    println!("multi-attribute slicing, n = {n}, dims = (bandwidth, storage)\n");
    println!("round   grid-acc   weighted-acc   bottleneck-acc");
    let mut rounds_done = 0usize;
    for checkpoint in [5usize, 15, 30, 60, 100] {
        while rounds_done < checkpoint {
            swarm.round(6, &mut rng);
            rounds_done += 1;
        }
        println!(
            "{:>5}   {:>7.1}%   {:>11.1}%   {:>13.1}%",
            checkpoint,
            100.0 * swarm.accuracy(&grid),
            100.0 * swarm.accuracy(&weighted),
            100.0 * swarm.accuracy(&bottleneck),
        );
    }

    // Allocation view: the premium cell = top bandwidth AND top storage.
    let truth = true_rank_vectors(&population);
    let premium: Vec<u64> = swarm
        .nodes()
        .iter()
        .filter(|node| {
            matches!(
                node.slice(&grid),
                CompositeSlice::Cell(ref c) if c[0].as_usize() == 2 && c[1].as_usize() == 2
            )
        })
        .map(|node| node.id().as_u64())
        .collect();
    let truly_premium = premium
        .iter()
        .filter(|&&id| {
            let r = &truth[&NodeId::new(id)];
            r[0] > 2.0 / 3.0 && r[1] > 2.0 / 3.0
        })
        .count();
    println!(
        "\npremium cell (top-⅓ bandwidth × top-⅓ storage): {} nodes, {:.1}% genuine",
        premium.len(),
        100.0 * truly_premium as f64 / premium.len().max(1) as f64
    );
    assert!(
        truly_premium as f64 / premium.len().max(1) as f64 > 0.6,
        "premium cell too polluted"
    );
}
