//! A real network cluster: the same protocols over TCP.
//!
//! Spins up 24 nodes on loopback, each a tokio task with its own listener,
//! Cyclon view and ranking-protocol state, introduces them to a few random
//! bootstrap peers, and lets them gossip in real time. No simulator — real
//! sockets, real concurrency, real message loss tolerance.
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example net_cluster
//! ```

use dslice::prelude::*;
use std::time::Duration;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    // A spread of capacities: 24 nodes, attribute = node index squared
    // (deliberately non-uniform).
    let attributes: Vec<Attribute> = (1..=24)
        .map(|i| Attribute::new((i * i) as f64).unwrap())
        .collect();
    let partition = Partition::equal(3).unwrap(); // thirds: low / mid / high

    let cfg = ClusterConfig {
        view_size: 8,
        period: Duration::from_millis(15),
        bootstrap_degree: 5,
        ..ClusterConfig::new(attributes, partition.clone(), ProtocolKind::Ranking)
    };

    println!("spawning 24 nodes on loopback…");
    let mut cluster = LocalCluster::spawn(cfg).await?;
    println!("gossiping for 1.5 s (~100 periods)…");
    for _ in 0..5 {
        cluster.run_for(Duration::from_millis(300)).await;
        println!("  live SDM = {:.1}", cluster.live_sdm());
    }

    let report = cluster.shutdown().await;
    println!("\nfinal assignments:");
    let mut assignments = report.assignments();
    assignments.sort_by_key(|a| a.1);
    for (id, attribute, estimate, slice) in &assignments {
        println!(
            "  node {:>2}  capacity {:>4}  estimate {:.2}  -> S{}",
            id,
            attribute.value(),
            estimate,
            slice
        );
    }
    println!(
        "\naccuracy: {:.1}% of nodes identified their true third (SDM {:.1})",
        report.accuracy() * 100.0,
        report.sdm()
    );
    Ok(())
}
