//! The related-work baselines, side by side with slicing (paper §2).
//!
//! The paper argues quantile-search approaches (ref [13]) answer a *global*
//! question — one value — and "use an approximation of the system size",
//! while slicing answers a *per-node* question with no size estimate at
//! all. This example makes the comparison concrete on one population:
//!
//! 1. gossip size estimation (ref [12]'s inverse-average COUNT);
//! 2. gossip φ-quantile search for every decile boundary;
//! 3. the ranking algorithm bringing every node to its slice.
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example aggregation_baselines
//! ```

use dslice::aggregation::{estimate_size, exact_quantile, QuantileSearch};
use dslice::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 1_000;
    let seed = 123;
    let mut rng = StdRng::seed_from_u64(seed);
    let distribution = AttributeDistribution::Pareto {
        scale: 1.0,
        shape: 1.5,
    };
    let values: Vec<f64> = (0..n)
        .map(|_| distribution.sample(&mut rng).value())
        .collect();

    // --- Baseline 1: network-size estimation (what quantile search needs).
    println!("1. gossip size estimation (ref [12] COUNT):");
    let estimates = estimate_size(n, 40, seed);
    let worst = estimates
        .iter()
        .map(|e| e.map_or(f64::INFINITY, |e| (e - n as f64).abs() / n as f64))
        .fold(0.0f64, f64::max);
    println!(
        "   n = {n}, 40 rounds: worst per-node relative error {:.2}%\n",
        100.0 * worst
    );

    // --- Baseline 2: quantile search, one run per decile boundary.
    println!("2. gossip quantile search (ref [13]), decile boundaries:");
    println!("   phi    found     exact     probes   gossip-rounds");
    let mut total_rounds = 0usize;
    for b in 1..10 {
        let phi = b as f64 / 10.0;
        let result = QuantileSearch::new(phi).run(&values, seed ^ b as u64);
        let exact = exact_quantile(&values, phi);
        total_rounds += result.gossip_rounds;
        println!(
            "   {phi:.1}   {:>7.3}   {:>7.3}   {:>5}   {:>8}",
            result.value, exact, result.probes, result.gossip_rounds
        );
    }
    println!("   total: {total_rounds} gossip rounds for 9 global boundary values\n");

    // --- Slicing: every node learns its decile in one continuous protocol.
    println!("3. distributed slicing (ranking algorithm), 10 slices:");
    let cfg = SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(10).unwrap(),
        distribution,
        seed,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    let mut cycles_to_95 = None;
    for cycle in 1..=400 {
        engine.step();
        if cycles_to_95.is_none() && engine.accuracy() >= 0.95 {
            cycles_to_95 = Some(cycle);
            break;
        }
    }
    match cycles_to_95 {
        Some(c) => println!(
            "   every node self-assigned; 95% correct after {c} cycles \
             (vs {total_rounds} rounds for 9 boundary values only)"
        ),
        None => println!(
            "   accuracy after 400 cycles: {:.1}%",
            100.0 * engine.accuracy()
        ),
    }
}
