//! Slice-connected overlays: allocating a slice to an application.
//!
//! The paper's service definition (§1.1) promises slices that are
//! *connected overlay networks* an application can be handed. This example
//! runs the ranking protocol, maintains a `SliceOverlay` per node (fed
//! purely by the gossip stream the protocol already generates — no extra
//! messages), and reports, per slice: link precision, connected components,
//! and giant-component coverage, as the overlays crystallize.
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example slice_overlay
//! ```

use dslice::overlay::{ConnectivityReport, OverlayConfig, SliceOverlay};
use dslice::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn main() {
    let slices = 5;
    let n = 1_500;
    let partition = Partition::equal(slices).unwrap();
    let cfg = SimConfig {
        n,
        view_size: 12,
        partition: partition.clone(),
        seed: 99,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    let mut overlays: HashMap<NodeId, SliceOverlay> = HashMap::new();
    let ov_cfg = OverlayConfig {
        capacity: 8,
        max_age: 15,
    };

    println!("slice-connected overlays over n = {n}, {slices} equal slices\n");
    println!("cycle   precision   worst-giant   all-connected");

    for checkpoint in [10usize, 25, 50, 100, 150] {
        while engine.cycle() < checkpoint {
            engine.step();
            maintain(&mut overlays, &engine, ov_cfg);
        }
        let report = connectivity(&engine, &overlays);
        println!(
            "{:>5}   {:>8.1}%   {:>10.1}%   {}",
            checkpoint,
            100.0 * report.mean_precision(),
            100.0 * report.worst_giant_fraction(),
            if report.all_connected() { "yes" } else { "no" },
        );
    }

    // Final per-slice breakdown: what an allocator would hand out.
    let report = connectivity(&engine, &overlays);
    println!("\nper-slice overlays:");
    for s in &report.slices {
        println!(
            "  S{}: {:>4} members, {:>2} component(s), giant covers {:>5.1}%, precision {:>5.1}%",
            s.slice,
            s.members,
            s.component_count,
            100.0 * s.giant_fraction(),
            100.0 * s.link_precision,
        );
    }
    assert!(
        report.worst_giant_fraction() > 0.9,
        "a slice failed to form a usable overlay"
    );
}

/// One maintenance round: feed every node's view stream into its overlay.
fn maintain(overlays: &mut HashMap<NodeId, SliceOverlay>, engine: &Engine, cfg: OverlayConfig) {
    let estimates: HashMap<NodeId, f64> = engine
        .snapshot()
        .into_iter()
        .map(|(id, _, est)| (id, est))
        .collect();
    let partition = engine.partition().clone();
    for (owner, neighbor_ids) in engine.view_snapshot() {
        let candidates: Vec<(NodeId, f64)> = neighbor_ids
            .into_iter()
            .filter_map(|id| estimates.get(&id).map(|&e| (id, e)))
            .collect();
        overlays
            .entry(owner)
            .or_insert_with(|| SliceOverlay::new(owner, cfg))
            .observe(estimates[&owner], &partition, candidates);
    }
}

fn connectivity(engine: &Engine, overlays: &HashMap<NodeId, SliceOverlay>) -> ConnectivityReport {
    let snapshot = engine.snapshot();
    let truth: BTreeMap<NodeId, usize> = rank::true_slices(
        snapshot.iter().map(|&(id, a, _)| (id, a)),
        engine.partition(),
    )
    .into_iter()
    .map(|(id, s)| (id, s.as_usize()))
    .collect();
    let links: HashMap<NodeId, Vec<NodeId>> = overlays
        .iter()
        .map(|(&id, ov)| (id, ov.neighbors().collect()))
        .collect();
    ConnectivityReport::new(&truth, &links, engine.partition().len())
}
