//! Super-peer discovery under session churn (the ref [15] use case).
//!
//! Sacha et al. use gossip aggregation to isolate high-capability nodes as
//! super-peers; the paper positions slicing as the generic answer to the
//! same need. This example runs the sliding-window ranking algorithm with
//! the attribute = *uptime* (session duration), under Weibull session churn
//! whose statistics follow the measurements the paper cites (Stutzbach &
//! Rejaie): the top-5% uptime slice is the super-peer set.
//!
//! Two properties matter to an application consuming the slice and are
//! reported per checkpoint:
//!
//! * **recall** — what fraction of the true top-5% currently self-identify;
//! * **stability** — how many nodes changed their super-peer verdict since
//!   the previous checkpoint (flapping super-peers force reconfiguration).
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example superpeer_discovery
//! ```

use dslice::prelude::*;
use dslice::sim::{SessionChurn, WeibullSessions};
use std::collections::HashSet;

fn main() {
    // 95% ordinary nodes, 5% super-peers (by uptime rank).
    let partition = Partition::from_fractions(&[0.95, 0.05]).unwrap();
    let n = 2_000;

    let cfg = SimConfig {
        n,
        view_size: 12,
        partition: partition.clone(),
        // Initial uptimes: heavy-tailed, like the session model itself.
        distribution: AttributeDistribution::Pareto {
            scale: 10.0,
            shape: 1.2,
        },
        seed: 77,
        ..SimConfig::default()
    };

    // Heavy-tailed sessions (Weibull shape 0.5, mean ≈ 500 cycles), with
    // the attribute equal to the node's actual session duration — churn and
    // attribute are fully correlated, the regime of Fig. 6(c)/(d).
    let churn = SessionChurn::new(
        WeibullSessions::heavy_tailed(250.0),
        AttributeDistribution::default(),
    )
    .uptime_attribute();

    let mut engine = Engine::new(cfg, ProtocolKind::SlidingRanking { window: 600 })
        .unwrap()
        .with_churn(Box::new(churn));

    println!("super-peer discovery: top-5% uptime slice of n = {n} under Weibull session churn\n");
    println!("cycle   population   recall   precision   verdict-changes");

    let mut previous: HashSet<u64> = HashSet::new();
    for checkpoint in [25usize, 50, 100, 200, 400, 800] {
        while engine.cycle() < checkpoint {
            engine.step();
        }
        let snapshot = engine.snapshot();
        let truth = rank::true_slices(snapshot.iter().map(|&(id, a, _)| (id, a)), &partition);

        // Who currently claims to be a super-peer, and who truly is.
        let claimed: HashSet<u64> = snapshot
            .iter()
            .filter(|(_, _, est)| partition.slice_of(*est).as_usize() == 1)
            .map(|(id, _, _)| id.as_u64())
            .collect();
        let actual: HashSet<u64> = snapshot
            .iter()
            .filter(|(id, _, _)| truth[id].as_usize() == 1)
            .map(|(id, _, _)| id.as_u64())
            .collect();

        let recall =
            100.0 * claimed.intersection(&actual).count() as f64 / actual.len().max(1) as f64;
        let precision =
            100.0 * claimed.intersection(&actual).count() as f64 / claimed.len().max(1) as f64;
        let changes = claimed.symmetric_difference(&previous).count();

        println!(
            "{:>5}   {:>10}   {:>5.1}%   {:>8.1}%   {:>6}",
            checkpoint,
            snapshot.len(),
            recall,
            precision,
            changes,
        );
        previous = claimed;
    }

    // Final sanity: the discovered super-peer set is dominated by genuinely
    // long-lived nodes.
    let snapshot = engine.snapshot();
    let truth = rank::true_slices(snapshot.iter().map(|&(id, a, _)| (id, a)), &partition);
    let claimed: Vec<_> = snapshot
        .iter()
        .filter(|(_, _, est)| partition.slice_of(*est).as_usize() == 1)
        .collect();
    let correct = claimed
        .iter()
        .filter(|(id, _, _)| truth[id].as_usize() == 1)
        .count();
    let precision = 100.0 * correct as f64 / claimed.len().max(1) as f64;
    println!(
        "\nfinal: {} self-declared super-peers, {precision:.1}% genuinely in the top 5% by uptime",
        claimed.len()
    );
    assert!(
        precision > 50.0,
        "super-peer precision collapsed: {precision:.1}%"
    );
}
