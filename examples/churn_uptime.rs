//! Churn correlated with the attribute: the uptime scenario of §5.3.3.
//!
//! When the attribute *is* the node's session duration, churn is maximally
//! adversarial for the ordering algorithms: the lowest-attribute nodes are
//! exactly the ones that leave, and joiners arrive above everyone. The
//! random values held by leavers drain from the bottom of `(0, 1]`, skewing
//! the distribution irrecoverably — while the ranking algorithm just keeps
//! re-estimating, and its sliding-window variant forgets the stale samples.
//!
//! This example races the three protocols under regular correlated churn
//! (0.1% every 10 cycles) and prints their SDM trajectories — the shape of
//! the paper's Fig. 6(d).
//!
//! Run with:
//! ```text
//! cargo run --release -p dslice --example churn_uptime
//! ```

use dslice::prelude::*;
use dslice::sim::churn::ChurnSchedule;

fn run(kind: ProtocolKind, seed: u64, cycles: usize, checkpoints: &[usize]) -> Vec<f64> {
    let cfg = SimConfig {
        n: 1_500,
        view_size: 10,
        partition: Partition::equal(20).unwrap(),
        seed,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, kind)
        .unwrap()
        .with_churn(Box::new(CorrelatedChurn::new(
            ChurnSchedule::regular(),
            1.0,
        )));
    let mut out = Vec::new();
    for &cp in checkpoints {
        while engine.cycle() < cp.min(cycles) {
            engine.step();
        }
        out.push(engine.sdm());
    }
    out
}

fn main() {
    let cycles = 500;
    let checkpoints = [10usize, 50, 100, 200, 350, 500];
    println!("uptime-correlated churn: 0.1% of the shortest-lived nodes replaced every 10 cycles");
    println!("(n = 1500, 20 slices, view 10)\n");

    let ordering = run(ProtocolKind::ModJk, 7, cycles, &checkpoints);
    let ranking = run(ProtocolKind::Ranking, 7, cycles, &checkpoints);
    let sliding = run(
        ProtocolKind::SlidingRanking { window: 1_500 },
        7,
        cycles,
        &checkpoints,
    );

    println!("cycle    mod-JK (ordering)   ranking   sliding-window");
    for (i, cp) in checkpoints.iter().enumerate() {
        println!(
            "{:>5}   {:>17.1}   {:>7.1}   {:>14.1}",
            cp, ordering[i], ranking[i], sliding[i]
        );
    }

    let last = checkpoints.len() - 1;
    println!();
    if ordering[last] > ranking[last] {
        println!(
            "ordering ends {:.1}x more disordered than ranking — random values cannot recover \
             from attribute-correlated churn (§5.3.3)",
            ordering[last] / ranking[last].max(1.0)
        );
    }
    if sliding[last] <= ranking[last] * 1.5 {
        println!(
            "sliding-window stays at or below plain ranking late in the run — stale samples \
             are forgotten (§5.3.4)"
        );
    }
}
