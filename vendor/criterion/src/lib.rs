//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's five bench harnesses compiling and runnable with
//! zero dependencies: same macro entry points ([`criterion_group!`],
//! [`criterion_main!`]), same `Criterion` / group / [`Bencher`] surface.
//! Measurement is deliberately coarse — a short calibrated loop reporting
//! median-free mean ns/iter — because the statistical machinery of real
//! criterion is not what CI's `cargo bench --no-run` smoke gate exercises.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iterations used to estimate per-iteration cost before measuring.
const CALIBRATION_ITERS: u64 = 10;

/// How batched inputs are grouped (accepted, ignored: every batch is one
/// input here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Units for reporting throughput alongside timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    /// (total duration, iterations) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate.
        let t0 = Instant::now();
        for _ in 0..CALIBRATION_ITERS {
            black_box(routine());
        }
        let per_iter = t0.elapsed() / CALIBRATION_ITERS as u32;
        let iters = iterations_for(per_iter);
        // Measure.
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Times `routine` on inputs built by `setup`; only `routine` is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate.
        let mut measured = Duration::ZERO;
        for _ in 0..CALIBRATION_ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
        }
        let per_iter = measured / CALIBRATION_ITERS as u32;
        let iters = iterations_for(per_iter);
        // Measure.
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.result = Some((total, iters));
    }
}

/// Picks an iteration count that keeps each benchmark within the budget.
fn iterations_for(per_iter: Duration) -> u64 {
    if per_iter.is_zero() {
        return 10_000;
    }
    let fit = MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1);
    (fit as u64).clamp(10, 100_000)
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in sizes runs by wall
    /// clock, not sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used in reports for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(&self.name, &id.to_string(), b.result, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.result, self.throughput);
        self
    }

    /// Ends the group (a reporting boundary in real criterion; a no-op
    /// here).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, result: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((total, iters)) = result else {
        eprintln!("{group}/{id}: no measurement recorded");
        return;
    };
    let ns = total.as_nanos() as f64 / iters.max(1) as f64;
    let mut line = format!("{group}/{id}: {ns:.1} ns/iter ({iters} iters)");
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) => format!("{:.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64),
            Throughput::Elements(n) => format!("{:.1} Melem/s", n as f64 / ns * 1e9 / 1e6),
        };
        line.push_str(&format!(", {per_sec}"));
    }
    eprintln!("{line}");
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        report("bench", id, b.result, None);
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($group), "` benchmark group.")]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The bench-binary entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut group = Criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 32], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
