//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] and [`BytesMut`] here are plain `Vec<u8>` wrappers — no
//! reference-counted zero-copy splitting — with the [`Buf`]/[`BufMut`]
//! methods the workspace codec uses. Frame sizes are a few kilobytes, so the
//! copies real `bytes` avoids are irrelevant here.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer with cursor-style consumption from the front.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before `head` have been consumed by [`Buf::advance`] /
    /// [`BytesMut::split_to`]; kept lazily and compacted on growth.
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    /// Length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes { data: self.data }
    }

    /// Drops the consumed prefix so appends don't grow without bound.
    fn compact(&mut self) {
        if self.head > 0 {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact();
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

/// Read-side buffer operations.
pub trait Buf {
    /// Unconsumed bytes remaining.
    fn remaining(&self) -> usize;

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Reads a big-endian u32 and advances past it.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEADBEEF);
        buf.put_u8(7);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.get_u32(), 0xDEADBEEF);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(&buf[..], b"abc");
    }

    #[test]
    fn split_advance_freeze() {
        let mut buf = BytesMut::from(&b"hello world"[..]);
        buf.advance(6);
        let word = buf.split_to(5);
        assert_eq!(&word[..], b"world");
        assert!(buf.is_empty());
        let frozen = word.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(frozen.iter().copied().collect::<Vec<u8>>(), b"world");
    }

    #[test]
    fn append_after_advance_sees_only_tail() {
        let mut buf = BytesMut::from(&b"abcd"[..]);
        buf.advance(4);
        buf.put_slice(b"xy");
        assert_eq!(&buf[..], b"xy");
    }
}
