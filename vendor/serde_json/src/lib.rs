//! Offline stand-in for `serde_json`: JSON printing and parsing over the
//! vendored serde [`Value`] model.
//!
//! Covers what the workspace uses: [`to_vec`], [`to_string`],
//! [`to_string_pretty`], [`from_slice`], [`from_str`], and a [`json!`] macro
//! for building manifest entries. Non-finite floats are rejected at
//! serialization time, like real `serde_json`.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] literally.
///
/// Reduced grammar compared to real `serde_json`: object values and array
/// elements are Rust expressions (any `Serialize` type), `null` is
/// supported, and objects/arrays nest one level via the same macro.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("non-finite float {f} has no JSON form")));
            }
            // Rust's shortest-roundtrip Display never uses exponent
            // notation, so the output parses back to the identical bits.
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing (recursive descent with a depth cap)
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => return Err(Error::new(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Out-of-range integer: fall back to float like serde_json's
            // arbitrary_precision-less default would overflow to error; a
            // float keeps the value usable for stats output.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (txt, val) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("-42", Value::Int(-42)),
            ("3.5", Value::Float(3.5)),
            ("\"hi\\n\"", Value::Str("hi\n".into())),
        ] {
            assert_eq!(parse_value_complete(txt).unwrap(), val);
        }
    }

    #[test]
    fn float_roundtrip_exact() {
        for f in [0.1, 1.0 / 3.0, 123456.789, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_structures() {
        let v = json!({
            "name": "run",
            "rows": 3u32,
            "tags": ["a", "b"],
            "nested": json!({"x": 1u8})
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<Value>("!!!!").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "quote\" slash\\ ctrl\u{01} tab\t 日本語 😀";
        let enc = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&enc).unwrap();
        assert_eq!(back, s);
    }
}
