//! `#[tokio::main]` and `#[tokio::test]` for the vendored tokio stand-in.
//!
//! Both rewrite `async fn name(...) -> T { body }` into
//! `fn name(...) -> T { ::tokio::runtime::block_on(async move { body }) }`.
//! Attribute arguments like `flavor = "multi_thread", worker_threads = 4`
//! are accepted and ignored: the stand-in runtime always runs one OS thread
//! per task, which subsumes any worker-thread count.

use proc_macro::{Delimiter, Group, Ident, Span, TokenStream, TokenTree};

/// Rewrites an `async fn main` into a sync entry point driving the
/// stand-in runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// Rewrites an `async fn` test into a `#[test]` driving the stand-in
/// runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

fn rewrite(item: TokenStream, mark_test: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // Locate the `async` keyword directly preceding `fn`.
    let async_idx = tokens.iter().enumerate().position(|(i, t)| {
        matches!(t, TokenTree::Ident(id) if id.to_string() == "async")
            && matches!(tokens.get(i + 1), Some(TokenTree::Ident(id2)) if id2.to_string() == "fn")
    });
    let Some(async_idx) = async_idx else {
        return "compile_error!(\"#[tokio::main]/#[tokio::test] requires an `async fn`\");"
            .parse()
            .expect("valid Rust");
    };

    // The final token must be the function body block.
    let Some(TokenTree::Group(body)) = tokens.last() else {
        return "compile_error!(\"expected a function body\");"
            .parse()
            .expect("valid Rust");
    };
    if body.delimiter() != Delimiter::Brace {
        return "compile_error!(\"expected a brace-delimited function body\");"
            .parse()
            .expect("valid Rust");
    }

    let mut out: Vec<TokenTree> = Vec::new();
    if mark_test {
        // `#[test]`
        out.push(TokenTree::Punct(proc_macro::Punct::new(
            '#',
            proc_macro::Spacing::Alone,
        )));
        out.push(TokenTree::Group(Group::new(
            Delimiter::Bracket,
            TokenStream::from(TokenTree::Ident(Ident::new("test", Span::call_site()))),
        )));
    }
    // Signature minus `async`, minus the body.
    for (i, tok) in tokens[..tokens.len() - 1].iter().enumerate() {
        if i == async_idx {
            continue;
        }
        out.push(tok.clone());
    }
    // New body: ::tokio::runtime::block_on(async move <body>)
    let wrapped: TokenStream = format!("::tokio::runtime::block_on(async move {})", body)
        .parse()
        .expect("wrapped body parses");
    out.push(TokenTree::Group(Group::new(Delimiter::Brace, wrapped)));

    out.into_iter().collect()
}
