//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config]`), range and tuple
//! strategies, [`collection::vec`], [`Just`], [`prop_oneof!`],
//! [`Strategy::prop_map`], `any::<T>()` and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (reported on failure), and there is **no shrinking** — a
//! failing case prints its seed and case number instead. That trades
//! counterexample minimality for zero dependencies.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies, seeded per test case.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among same-valued strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_range_from_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        use rand::Rng;
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy behind `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property: `cases` deterministic random cases, panicking on
/// the first failure with enough context to replay it.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable per-test seed base.
    let mut base: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100000001b3);
    }
    for i in 0..config.cases {
        let seed = base.wrapping_add(i as u64);
        let mut rng = TestRng(StdRng::seed_from_u64(seed));
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i} (seed {seed:#x}): {e}");
        }
    }
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),+ ) $body
            )+
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds (counted as a pass here,
/// since this stand-in has no rejection bookkeeping).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// A uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -1.0f64..1.0, k in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(k <= 4);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || v == 2 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_applied(_x in 0u32..10) {
            // Runs 7 cases; the assertion is that compilation + plumbing work.
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails`")]
    fn failures_panic_with_context() {
        crate::run_proptest(ProptestConfig::with_cases(1), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
