//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed directly
//! from the `proc_macro` token stream. Supported shapes — which cover every
//! derived type in this workspace — are non-generic structs (named, tuple,
//! unit) and non-generic enums (unit, named and tuple variants). `#[serde]`
//! helper attributes are accepted and ignored; the only one the workspace
//! uses is `#[serde(transparent)]` on newtype structs, and newtype structs
//! are serialized transparently by default here (as in real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field shape of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// A parsed derive input item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour) for a non-generic
/// struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour) for a non-generic
/// struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error is valid Rust"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        // `#![...]` inner attributes cannot appear here; outer is `#[...]`.
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i)?);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_type_until_comma(&tokens, &mut i);
    }
    Ok(names)
}

/// Advances past a type, stopping after the `,` that ends it (or at end of
/// stream). Tracks `<...>` nesting so commas inside generics don't split.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                '-' => {
                    // `->` in fn-pointer types: consume the `>` too so it
                    // doesn't disturb angle-depth tracking.
                    if matches!(tokens.get(*i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>')
                    {
                        *i += 1;
                    }
                }
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        count += 1;
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (externally tagged enums, transparent newtypes — the
// serde defaults, so the wire format stays compatible with real serde)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str("        ::serde::Value::Null\n"),
                Fields::Tuple(1) => {
                    out.push_str("        ::serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("        ::serde::Value::Seq(vec![");
                    for k in 0..*n {
                        out.push_str(&format!("::serde::Serialize::to_value(&self.{k}), "));
                    }
                    out.push_str("])\n");
                }
                Fields::Named(names) => {
                    out.push_str("        ::serde::Value::Map(vec![\n");
                    for f in names {
                        out.push_str(&format!(
                            "            ({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),\n"
                        ));
                    }
                    out.push_str("        ])\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {name}::{v}(__v0) => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Serialize::to_value(__v0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__v{k}")).collect();
                        out.push_str(&format!(
                            "            {name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let entries = names
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "            {name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Value::Map(vec![{entries}]))]),\n"
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str(&format!(
                    "        let _ = v;\n        ::std::result::Result::Ok({name})\n"
                )),
                Fields::Tuple(1) => out.push_str(&format!(
                    "        ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                )),
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "        let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for tuple struct {name}\"))?;\n        if s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}\")); }}\n"
                    ));
                    let args = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push_str(&format!(
                        "        ::std::result::Result::Ok({name}({args}))\n"
                    ));
                }
                Fields::Named(names) => {
                    out.push_str(&format!(
                        "        let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n"
                    ));
                    out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
                    for f in names {
                        out.push_str(&format!(
                            "            {f}: ::serde::Deserialize::from_value(::serde::__field(m, {f:?})).map_err(|e| ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?,\n"
                        ));
                    }
                    out.push_str("        })\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            // Unit variants arrive as bare strings.
            out.push_str("        if let ::std::option::Option::Some(s) = v.as_str() {\n            return match s {\n");
            for (v, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    out.push_str(&format!(
                        "                {v:?} => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "                other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown unit variant {{other}} for enum {name}\"))),\n            }};\n        }}\n"
            ));
            // Data variants arrive as single-entry maps.
            out.push_str(&format!(
                "        let (tag, inner) = v.as_single_entry().ok_or_else(|| ::serde::Error::custom(\"expected externally tagged enum {name}\"))?;\n        match tag {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        // Also accept {"Variant": null} for robustness.
                        out.push_str(&format!(
                            "            {v:?} => {{ let _ = inner; ::std::result::Result::Ok({name}::{v}) }}\n"
                        ));
                    }
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let args = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "            {v:?} => {{\n                let s = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{v}\"))?;\n                if s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{v}\")); }}\n                ::std::result::Result::Ok({name}::{v}({args}))\n            }}\n"
                        ));
                    }
                    Fields::Named(names) => {
                        let inits = names
                            .iter()
                            .map(|f| format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::__field(m, {f:?})).map_err(|e| ::serde::Error::custom(format!(\"{name}::{v}.{f}: {{e}}\")))?"
                            ))
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "            {v:?} => {{\n                let m = inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{v}\"))?;\n                ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n            }}\n"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "            other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant {{other}} for enum {name}\"))),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    out
}
