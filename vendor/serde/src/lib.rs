//! Offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so this crate provides the
//! subset of serde's surface the workspace uses: `#[derive(Serialize,
//! Deserialize)]` plus the impls those derives need. Instead of serde's
//! visitor-based zero-copy model, everything funnels through a simple
//! self-describing [`Value`] tree — exactly what a length-prefixed JSON codec
//! and run-manifest files need, at a fraction of the machinery.
//!
//! The encoding mirrors serde's defaults so a future swap back to real serde
//! stays format-compatible: structs are maps, newtype structs are
//! transparent, enums are externally tagged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the JSON data model plus u64/i64 fidelity).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields keep declaration
    /// order, which keeps serialized output stable and diffable).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// For externally tagged enums: the `(tag, payload)` of a one-entry map.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(m) if m.len() == 1 => Some((m[0].0.as_str(), &m[0].1)),
            _ => None,
        }
    }
}

/// A deserialization (or serialization) failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in a map, treating a missing key as `Null` so
/// `Option` fields tolerate omission (serde's default for `Option`).
#[doc(hidden)]
pub fn __field<'a>(map: &'a [(String, Value)], name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                if u <= i64::MAX as u64 { Value::Int(u as i64) } else { Value::UInt(u) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single char, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected 2-tuple"))?;
        if s.len() != 2 {
            return Err(Error::custom(format!("expected 2-tuple, got {}", s.len())));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected 3-tuple"))?;
        if s.len() != 3 {
            return Err(Error::custom(format!("expected 3-tuple, got {}", s.len())));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_map()
            .ok_or_else(|| Error::custom("expected {secs, nanos} for Duration"))?;
        let secs = u64::from_value(__field(m, "secs"))?;
        let nanos = u32::from_value(__field(m, "nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
    }

    #[test]
    fn missing_struct_field_reads_as_null() {
        let m = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(__field(&m, "a"), &Value::Int(1));
        assert_eq!(__field(&m, "b"), &Value::Null);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 450);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }
}
