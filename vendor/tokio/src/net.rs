//! Async TCP on nonblocking std sockets.
//!
//! `WouldBlock` maps to `Poll::Pending`; the thread-per-task executor
//! re-polls on its park interval, so no reactor registration is needed.

use crate::io::{AsyncRead, AsyncWrite};
use std::fmt;
use std::future::poll_fn;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::task::{Context, Poll};

/// A TCP listener accepting nonblockingly.
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpListener")
            .field("local_addr", &self.inner.local_addr().ok())
            .finish()
    }
}

impl TcpListener {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Waits for and accepts one inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        poll_fn(|_cx| match self.inner.accept() {
            Ok((stream, addr)) => match stream.set_nonblocking(true) {
                Ok(()) => Poll::Ready(Ok((TcpStream { inner: stream }, addr))),
                Err(e) => Poll::Ready(Err(e)),
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// A TCP connection.
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpStream")
            .field("peer_addr", &self.inner.peer_addr().ok())
            .finish()
    }
}

impl TcpStream {
    /// Connects to `addr`.
    ///
    /// The handshake itself is performed blockingly — on the loopback paths
    /// this workspace exercises it completes immediately — and the socket is
    /// switched to nonblocking for all subsequent I/O.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        inner.set_nodelay(true)?;
        Ok(TcpStream { inner })
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(&mut self, _cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        match self.inner.read(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(&mut self, _cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        match self.inner.write(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_flush(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match self.inner.flush() {
            Ok(()) => Poll::Ready(Ok(())),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{AsyncReadExt, AsyncWriteExt};
    use crate::runtime::block_on;

    #[test]
    fn listener_accepts_and_streams_bytes() {
        block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();

            let server = crate::spawn(async move {
                let (mut stream, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 5];
                stream.read_exact(&mut buf).await.unwrap();
                stream.write_all(&buf).await.unwrap();
                stream.flush().await.unwrap();
                buf
            });

            let mut client = TcpStream::connect(addr).await.unwrap();
            client.write_all(b"hello").await.unwrap();
            let mut echo = [0u8; 5];
            client.read_exact(&mut echo).await.unwrap();
            assert_eq!(&echo, b"hello");
            assert_eq!(&server.await.unwrap(), b"hello");
        });
    }
}
