//! The driving loop: a polling `block_on`.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{self, Thread};
use std::time::Duration;

/// How long a pending task parks before re-polling. Leaf futures that have
/// no wakeup source (nonblocking sockets, timers) become ready within one
/// park interval of the underlying event.
const PARK_INTERVAL: Duration = Duration::from_micros(500);

/// A waker that unparks the thread driving the task.
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Runs a future to completion on the current thread.
///
/// Wakers unpark the thread immediately; sources without wakers (sockets,
/// timers) are covered by the short park timeout.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => thread::park_timeout(PARK_INTERVAL),
        }
    }
}

/// A handle mirroring `tokio::runtime::Runtime` for code that constructs a
/// runtime explicitly.
#[derive(Debug, Default)]
pub struct Runtime;

impl Runtime {
    /// Builds the (stateless) runtime handle.
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime)
    }

    /// Runs a future to completion on the current thread.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        block_on(fut)
    }
}
