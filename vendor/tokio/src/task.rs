//! Task spawning: one OS thread per task.

use crate::runtime::block_on;
use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::thread;

/// Shared completion state between the task thread and its handle.
struct JoinState<T> {
    result: Mutex<Option<thread::Result<T>>>,
    waker: Mutex<Option<Waker>>,
    done: AtomicBool,
}

/// An owned permission to await a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("done", &self.state.done.load(Ordering::Acquire))
            .finish()
    }
}

/// The task being awaited panicked.
#[derive(Debug)]
pub struct JoinError {
    panic_msg: String,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", self.panic_msg)
    }
}

impl std::error::Error for JoinError {}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.state.done.load(Ordering::Acquire) {
            let result = self
                .state
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("JoinHandle polled after completion");
            return Poll::Ready(result.map_err(|panic| JoinError {
                panic_msg: panic_message(&panic),
            }));
        }
        *self.state.waker.lock().unwrap_or_else(|e| e.into_inner()) = Some(cx.waker().clone());
        // Re-check: the task may have finished between the check and the
        // waker registration.
        if self.state.done.load(Ordering::Acquire) {
            cx.waker().wake_by_ref();
        }
        Poll::Pending
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns a future as an independent task (here: an OS thread) and returns
/// a handle that resolves with its output.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let state = Arc::new(JoinState {
        result: Mutex::new(None),
        waker: Mutex::new(None),
        done: AtomicBool::new(false),
    });
    let task_state = Arc::clone(&state);
    thread::Builder::new()
        .name("tokio-task".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| block_on(fut)));
            *task_state.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            task_state.done.store(true, Ordering::Release);
            if let Some(waker) = task_state
                .waker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                waker.wake();
            }
        })
        .expect("failed to spawn task thread");
    JoinHandle { state }
}
