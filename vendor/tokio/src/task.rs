//! Task spawning: one OS thread per task, with cooperative cancellation.

use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::{pin, Pin};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{self, Thread};
use std::time::Duration;

/// How long the task thread parks between polls (mirrors the executor's
/// park interval in `runtime.rs`). Cancellation latency is bounded by it.
const PARK_INTERVAL: Duration = Duration::from_micros(500);

/// Shared completion state between the task thread and its handle.
struct JoinState<T> {
    result: Mutex<Option<Result<T, JoinError>>>,
    waker: Mutex<Option<Waker>>,
    done: AtomicBool,
    cancel: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

/// An owned permission to await a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("done", &self.state.done.load(Ordering::Acquire))
            .finish()
    }
}

/// Why a task failed to produce its output: it panicked, or it was aborted.
#[derive(Debug)]
enum JoinErrorKind {
    Panic(String),
    Cancelled,
}

/// The task being awaited panicked or was aborted.
#[derive(Debug)]
pub struct JoinError {
    kind: JoinErrorKind,
}

impl JoinError {
    fn panic(msg: String) -> Self {
        JoinError {
            kind: JoinErrorKind::Panic(msg),
        }
    }

    fn cancelled() -> Self {
        JoinError {
            kind: JoinErrorKind::Cancelled,
        }
    }

    /// Whether the task was aborted via [`JoinHandle::abort`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self.kind, JoinErrorKind::Cancelled)
    }

    /// Whether the task panicked.
    pub fn is_panic(&self) -> bool {
        matches!(self.kind, JoinErrorKind::Panic(_))
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            JoinErrorKind::Panic(msg) => write!(f, "task panicked: {msg}"),
            JoinErrorKind::Cancelled => write!(f, "task was cancelled"),
        }
    }
}

impl std::error::Error for JoinError {}

impl<T> JoinHandle<T> {
    /// Requests cancellation: the task stops at its next yield point (here:
    /// between polls, within one park interval) and awaiting the handle
    /// yields a cancelled [`JoinError`]. A task that already completed is
    /// unaffected — its output is still returned.
    ///
    /// Cancellation drops the task's future, releasing everything it owns
    /// (sockets, channel endpoints, …), exactly like an abrupt crash from
    /// the rest of the system's point of view.
    pub fn abort(&self) {
        self.state.cancel.store(true, Ordering::Release);
        if let Some(thread) = self
            .state
            .thread
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            thread.unpark();
        }
    }

    /// Whether the task has finished (completed, panicked, or cancelled).
    pub fn is_finished(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.state.done.load(Ordering::Acquire) {
            let result = self
                .state
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("JoinHandle polled after completion");
            return Poll::Ready(result);
        }
        *self.state.waker.lock().unwrap_or_else(|e| e.into_inner()) = Some(cx.waker().clone());
        // Re-check: the task may have finished between the check and the
        // waker registration.
        if self.state.done.load(Ordering::Acquire) {
            cx.waker().wake_by_ref();
        }
        Poll::Pending
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A waker that unparks the task thread.
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives `fut` to completion on the current thread, checking `cancel`
/// between polls. Returns `None` when cancelled (the future is dropped).
fn block_on_cancellable<F: Future>(fut: F, cancel: &AtomicBool) -> Option<F::Output> {
    let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = pin!(fut);
    loop {
        if cancel.load(Ordering::Acquire) {
            return None;
        }
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return Some(out),
            Poll::Pending => thread::park_timeout(PARK_INTERVAL),
        }
    }
}

/// Spawns a future as an independent task (here: an OS thread) and returns
/// a handle that resolves with its output.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let state = Arc::new(JoinState {
        result: Mutex::new(None),
        waker: Mutex::new(None),
        done: AtomicBool::new(false),
        cancel: AtomicBool::new(false),
        thread: Mutex::new(None),
    });
    let task_state = Arc::clone(&state);
    thread::Builder::new()
        .name("tokio-task".to_string())
        .spawn(move || {
            *task_state.thread.lock().unwrap_or_else(|e| e.into_inner()) = Some(thread::current());
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                block_on_cancellable(fut, &task_state.cancel)
            }));
            let result = match outcome {
                Ok(Some(value)) => Ok(value),
                Ok(None) => Err(JoinError::cancelled()),
                Err(panic) => Err(JoinError::panic(panic_message(&*panic))),
            };
            *task_state.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            task_state.done.store(true, Ordering::Release);
            if let Some(waker) = task_state
                .waker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                waker.wake();
            }
        })
        .expect("failed to spawn task thread");
    JoinHandle { state }
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on;

    #[test]
    fn abort_cancels_a_pending_task() {
        block_on(async {
            let handle = crate::spawn(async {
                crate::time::sleep(std::time::Duration::from_secs(60)).await;
                42u32
            });
            assert!(!handle.is_finished());
            handle.abort();
            let err = handle.await.unwrap_err();
            assert!(err.is_cancelled());
            assert!(!err.is_panic());
        });
    }

    #[test]
    fn abort_after_completion_preserves_output() {
        block_on(async {
            let handle = crate::spawn(async { 7u32 });
            // Wait for the task to finish before aborting.
            while !handle.is_finished() {
                crate::time::sleep(std::time::Duration::from_millis(1)).await;
            }
            handle.abort();
            assert_eq!(handle.await.unwrap(), 7);
        });
    }

    #[test]
    fn panic_is_reported_as_panic() {
        block_on(async {
            let handle = crate::spawn(async {
                panic!("boom");
            });
            let err = handle.await.unwrap_err();
            assert!(err.is_panic());
            assert!(err.to_string().contains("boom"));
        });
    }

    #[test]
    fn abort_drops_the_future() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        struct SetOnDrop(Arc<AtomicBool>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }

        block_on(async {
            let dropped = Arc::new(AtomicBool::new(false));
            let flag = SetOnDrop(Arc::clone(&dropped));
            let handle = crate::spawn(async move {
                let _keep = flag;
                crate::time::sleep(std::time::Duration::from_secs(60)).await;
            });
            handle.abort();
            assert!(handle.await.unwrap_err().is_cancelled());
            assert!(dropped.load(Ordering::Acquire), "future must be dropped");
        });
    }
}
