//! Offline stand-in for `tokio`.
//!
//! The build environment has no crates registry, so this crate implements
//! the subset of tokio's API the workspace uses on a deliberately simple
//! model: **every spawned task is one OS thread** running a polling
//! `block_on`. Leaf futures (sockets, timers, channels) return `Pending`
//! when not ready; the driving thread re-polls on wakeup or after a short
//! park timeout, so no reactor/epoll machinery is needed. Latency floors sit
//! around the park timeout (≈0.5 ms), which is far below the gossip periods
//! the tests run at, and a few dozen concurrent tasks map to a few dozen
//! threads — fine for localhost clusters of tens of nodes.
//!
//! Provided: [`spawn`], [`task::JoinHandle`], [`net::TcpListener`] /
//! [`net::TcpStream`], [`io`] (async read/write + in-memory [`io::duplex`]),
//! [`sync::mpsc`] / [`sync::watch`] / [`sync::Mutex`], [`time::sleep`] /
//! [`time::interval`], the [`select!`] macro and the `#[tokio::main]` /
//! `#[tokio::test]` attribute macros.

pub use tokio_macros::{main, test};

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;

/// Waits on multiple branches concurrently, running the body of the first
/// branch whose future completes with a matching pattern.
///
/// Reduced grammar compared to real tokio: up to four `pattern =
/// future => block` branches (no `else`, no preconditions). A branch whose
/// completed value does not match its pattern is disabled and the remaining
/// branches keep running, like the real macro.
#[macro_export]
macro_rules! select {
    // Entry points: 1-4 branches, with or without trailing commas between
    // block bodies (blocks need no separating comma).
    ($p0:pat = $f0:expr => $b0:block $(,)?) => {
        $crate::__select_impl!(($p0 = $f0 => $b0))
    };
    ($p0:pat = $f0:expr => $b0:block $(,)? $p1:pat = $f1:expr => $b1:block $(,)?) => {
        $crate::__select_impl!(($p0 = $f0 => $b0) ($p1 = $f1 => $b1))
    };
    ($p0:pat = $f0:expr => $b0:block $(,)? $p1:pat = $f1:expr => $b1:block $(,)? $p2:pat = $f2:expr => $b2:block $(,)?) => {
        $crate::__select_impl!(($p0 = $f0 => $b0) ($p1 = $f1 => $b1) ($p2 = $f2 => $b2))
    };
    ($p0:pat = $f0:expr => $b0:block $(,)? $p1:pat = $f1:expr => $b1:block $(,)? $p2:pat = $f2:expr => $b2:block $(,)? $p3:pat = $f3:expr => $b3:block $(,)?) => {
        $crate::__select_impl!(($p0 = $f0 => $b0) ($p1 = $f1 => $b1) ($p2 = $f2 => $b2) ($p3 = $f3 => $b3))
    };
}

/// Internal expansion for [`select!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __select_impl {
    ( $(($p:pat = $f:expr => $b:block))+ ) => {{
        // One enum variant per branch, indexed by a generated path.
        $crate::__select_with_out!( $(($p = $f => $b))+ )
    }};
}

/// Second stage: fixed arities so each branch gets a distinct enum variant.
#[doc(hidden)]
#[macro_export]
macro_rules! __select_with_out {
    (($p0:pat = $f0:expr => $b0:block)) => {{
        let __out = {
            let mut __f0 = ::std::pin::pin!($f0);
            ::std::future::poll_fn(
                |__cx| match ::std::future::Future::poll(__f0.as_mut(), __cx) {
                    ::std::task::Poll::Ready(v) => ::std::task::Poll::Ready(v),
                    ::std::task::Poll::Pending => ::std::task::Poll::Pending,
                },
            )
            .await
        };
        match __out {
            $p0 => $b0,
            #[allow(unreachable_patterns)]
            _ => panic!("select!: single branch completed with non-matching pattern"),
        }
    }};
    (($p0:pat = $f0:expr => $b0:block) ($p1:pat = $f1:expr => $b1:block)) => {{
        enum __Out<A, B> {
            _0(A),
            _1(B),
        }
        let __out = {
            let mut __f0 = ::std::pin::pin!($f0);
            let mut __f1 = ::std::pin::pin!($f1);
            let mut __done = [false; 2];
            ::std::future::poll_fn(|__cx| {
                $crate::__select_poll_branch!(__cx, __f0, __done, 0, $p0, __Out::_0);
                $crate::__select_poll_branch!(__cx, __f1, __done, 1, $p1, __Out::_1);
                ::std::task::Poll::Pending
            })
            .await
        };
        match __out {
            __Out::_0($p0) => $b0,
            __Out::_1($p1) => $b1,
            #[allow(unreachable_patterns)]
            _ => panic!("select!: branch completed with non-matching pattern"),
        }
    }};
    (($p0:pat = $f0:expr => $b0:block) ($p1:pat = $f1:expr => $b1:block) ($p2:pat = $f2:expr => $b2:block)) => {{
        enum __Out<A, B, C> {
            _0(A),
            _1(B),
            _2(C),
        }
        let __out = {
            let mut __f0 = ::std::pin::pin!($f0);
            let mut __f1 = ::std::pin::pin!($f1);
            let mut __f2 = ::std::pin::pin!($f2);
            let mut __done = [false; 3];
            ::std::future::poll_fn(|__cx| {
                $crate::__select_poll_branch!(__cx, __f0, __done, 0, $p0, __Out::_0);
                $crate::__select_poll_branch!(__cx, __f1, __done, 1, $p1, __Out::_1);
                $crate::__select_poll_branch!(__cx, __f2, __done, 2, $p2, __Out::_2);
                ::std::task::Poll::Pending
            })
            .await
        };
        match __out {
            __Out::_0($p0) => $b0,
            __Out::_1($p1) => $b1,
            __Out::_2($p2) => $b2,
            #[allow(unreachable_patterns)]
            _ => panic!("select!: branch completed with non-matching pattern"),
        }
    }};
    (($p0:pat = $f0:expr => $b0:block) ($p1:pat = $f1:expr => $b1:block) ($p2:pat = $f2:expr => $b2:block) ($p3:pat = $f3:expr => $b3:block)) => {{
        enum __Out<A, B, C, D> {
            _0(A),
            _1(B),
            _2(C),
            _3(D),
        }
        let __out = {
            let mut __f0 = ::std::pin::pin!($f0);
            let mut __f1 = ::std::pin::pin!($f1);
            let mut __f2 = ::std::pin::pin!($f2);
            let mut __f3 = ::std::pin::pin!($f3);
            let mut __done = [false; 4];
            ::std::future::poll_fn(|__cx| {
                $crate::__select_poll_branch!(__cx, __f0, __done, 0, $p0, __Out::_0);
                $crate::__select_poll_branch!(__cx, __f1, __done, 1, $p1, __Out::_1);
                $crate::__select_poll_branch!(__cx, __f2, __done, 2, $p2, __Out::_2);
                $crate::__select_poll_branch!(__cx, __f3, __done, 3, $p3, __Out::_3);
                ::std::task::Poll::Pending
            })
            .await
        };
        match __out {
            __Out::_0($p0) => $b0,
            __Out::_1($p1) => $b1,
            __Out::_2($p2) => $b2,
            __Out::_3($p3) => $b3,
            #[allow(unreachable_patterns)]
            _ => panic!("select!: branch completed with non-matching pattern"),
        }
    }};
}

/// Polls one select branch: on completion, either returns the tagged value
/// (pattern matches) or disables the branch (pattern refuted).
#[doc(hidden)]
#[macro_export]
macro_rules! __select_poll_branch {
    ($cx:ident, $fut:ident, $done:ident, $idx:tt, $pat:pat, $variant:path) => {
        if !$done[$idx] {
            if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll($fut.as_mut(), $cx) {
                #[allow(unused_variables, irrefutable_let_patterns)]
                if let $pat = &v {
                    return ::std::task::Poll::Ready($variant(v));
                }
                $done[$idx] = true;
            }
        }
    };
}
