//! Synchronization primitives: async `Mutex`, `mpsc` and `watch` channels.

use std::collections::VecDeque;
use std::fmt;
use std::future::poll_fn;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, RwLock, RwLockReadGuard};
use std::task::{Poll, Waker};

/// Registers `waker` in `slot` unless an equivalent waker is already there.
fn register(slot: &StdMutex<Vec<Waker>>, waker: &Waker) {
    let mut wakers = slot.lock().unwrap_or_else(|e| e.into_inner());
    if !wakers.iter().any(|w| w.will_wake(waker)) {
        wakers.push(waker.clone());
    }
}

/// Wakes and clears every waker in `slot`.
fn wake_all(slot: &StdMutex<Vec<Waker>>) {
    for waker in slot.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
        waker.wake();
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// An async mutex.
///
/// Backed by a blocking `std::sync::Mutex`: with one OS thread per task,
/// briefly blocking the thread on contention is correct and simpler than a
/// waiter queue. Guards in this workspace are never held across `.await`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// A lock guard for [`Mutex`].
pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock.
    pub async fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

/// A bounded multi-producer single-consumer channel.
pub mod mpsc {
    use super::*;

    struct Shared<T> {
        queue: StdMutex<VecDeque<T>>,
        capacity: usize,
        recv_waker: StdMutex<Vec<Waker>>,
        send_wakers: StdMutex<Vec<Waker>>,
        senders: AtomicUsize,
        receiver_alive: AtomicBool,
    }

    /// The sending half.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiver was dropped; the value comes back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "channel closed")
        }
    }

    /// Why a [`Sender::try_send`] did not enqueue; the value comes back.
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The queue is at capacity.
        Full(T),
        /// The receiver was dropped.
        Closed(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "channel full"),
                TrySendError::Closed(_) => write!(f, "channel closed"),
            }
        }
    }

    /// Creates a bounded channel with room for `capacity` queued messages.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc channel capacity must be positive");
        let shared = Arc::new(Shared {
            queue: StdMutex::new(VecDeque::new()),
            capacity,
            recv_waker: StdMutex::new(Vec::new()),
            send_wakers: StdMutex::new(Vec::new()),
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                wake_all(&self.shared.recv_waker);
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receiver_alive.store(false, Ordering::Release);
            wake_all(&self.shared.send_wakers);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, waiting while the channel is full. Errors (and
        /// returns the value) if the receiver is gone.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut slot = Some(value);
            poll_fn(|cx| {
                if !self.shared.receiver_alive.load(Ordering::Acquire) {
                    return Poll::Ready(Err(SendError(
                        slot.take().expect("send polled after completion"),
                    )));
                }
                {
                    let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    if queue.len() < self.shared.capacity {
                        queue.push_back(slot.take().expect("send polled after completion"));
                        drop(queue);
                        wake_all(&self.shared.recv_waker);
                        return Poll::Ready(Ok(()));
                    }
                }
                register(&self.shared.send_wakers, cx.waker());
                Poll::Pending
            })
            .await
        }

        /// Enqueues a value without waiting: fails immediately when the
        /// queue is full or the receiver is gone. This is the send used on
        /// latency-critical paths that must never block on a slow consumer.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if !self.shared.receiver_alive.load(Ordering::Acquire) {
                return Err(TrySendError::Closed(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            drop(queue);
            wake_all(&self.shared.recv_waker);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value; `None` once all senders are gone and the
        /// queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                {
                    let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(value) = queue.pop_front() {
                        drop(queue);
                        wake_all(&self.shared.send_wakers);
                        return Poll::Ready(Some(value));
                    }
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Poll::Ready(None);
                }
                register(&self.shared.recv_waker, cx.waker());
                Poll::Pending
            })
            .await
        }

        /// Receives without waiting: `None` when the queue is currently
        /// empty (regardless of whether senders remain).
        pub fn try_recv(&mut self) -> Option<T> {
            let value = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            if value.is_some() {
                wake_all(&self.shared.send_wakers);
            }
            value
        }
    }
}

// ---------------------------------------------------------------------------
// watch
// ---------------------------------------------------------------------------

/// A single-value broadcast channel: receivers observe the latest value.
pub mod watch {
    use super::*;

    struct Shared<T> {
        value: RwLock<T>,
        version: AtomicU64,
        wakers: StdMutex<Vec<Waker>>,
        sender_alive: AtomicBool,
    }

    /// The sending half.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half. Each clone tracks which version it has seen.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
        seen: u64,
    }

    /// The channel has no live counterpart.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sender was dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// A borrowed view of the current value.
    pub struct Ref<'a, T>(RwLockReadGuard<'a, T>);

    impl<T> std::ops::Deref for Ref<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    /// Creates a watch channel seeded with `init`.
    pub fn channel<T>(init: T) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            value: RwLock::new(init),
            version: AtomicU64::new(0),
            wakers: StdMutex::new(Vec::new()),
            sender_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared, seen: 0 },
        )
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("watch::Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("watch::Receiver")
                .field("seen", &self.seen)
                .finish_non_exhaustive()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
                // A fresh clone has "seen" the current value, like tokio.
                seen: self.shared.version.load(Ordering::Acquire),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.sender_alive.store(false, Ordering::Release);
            wake_all(&self.shared.wakers);
        }
    }

    impl<T> Sender<T> {
        /// Publishes a new value, waking all waiting receivers.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            *self.shared.value.write().unwrap_or_else(|e| e.into_inner()) = value;
            self.shared.version.fetch_add(1, Ordering::AcqRel);
            wake_all(&self.shared.wakers);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Borrows the most recent value.
        pub fn borrow(&self) -> Ref<'_, T> {
            Ref(self.shared.value.read().unwrap_or_else(|e| e.into_inner()))
        }

        /// Waits for a value newer than the last one seen by this receiver.
        pub async fn changed(&mut self) -> Result<(), RecvError> {
            poll_fn(|cx| {
                let current = self.shared.version.load(Ordering::Acquire);
                if current != self.seen {
                    self.seen = current;
                    return Poll::Ready(Ok(()));
                }
                if !self.shared.sender_alive.load(Ordering::Acquire) {
                    return Poll::Ready(Err(RecvError));
                }
                register(&self.shared.wakers, cx.waker());
                Poll::Pending
            })
            .await
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn mpsc_roundtrip_and_close() {
        block_on(async {
            let (tx, mut rx) = mpsc::channel::<u32>(2);
            tx.send(1).await.unwrap();
            tx.send(2).await.unwrap();
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
            drop(tx);
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn mpsc_try_send_reports_full_and_closed() {
        block_on(async {
            let (tx, mut rx) = mpsc::channel::<u32>(1);
            assert!(tx.try_send(1).is_ok());
            assert!(matches!(tx.try_send(2), Err(mpsc::TrySendError::Full(2))));
            assert_eq!(rx.try_recv(), Some(1));
            assert_eq!(rx.try_recv(), None);
            assert!(tx.try_send(3).is_ok());
            assert_eq!(rx.recv().await, Some(3));
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(mpsc::TrySendError::Closed(4))));
        });
    }

    #[test]
    fn mpsc_send_fails_after_receiver_drop() {
        block_on(async {
            let (tx, rx) = mpsc::channel::<u32>(1);
            drop(rx);
            assert!(tx.send(7).await.is_err());
        });
    }

    #[test]
    fn mpsc_backpressure_resolves_across_tasks() {
        block_on(async {
            let (tx, mut rx) = mpsc::channel::<u32>(1);
            tx.send(0).await.unwrap();
            let producer = crate::spawn(async move {
                for i in 1..10u32 {
                    tx.send(i).await.unwrap();
                }
            });
            for expect in 0..10u32 {
                assert_eq!(rx.recv().await, Some(expect));
            }
            producer.await.unwrap();
        });
    }

    #[test]
    fn watch_changed_sees_latest() {
        block_on(async {
            let (tx, mut rx) = watch::channel(0u32);
            assert_eq!(*rx.borrow(), 0);
            tx.send(5).unwrap();
            rx.changed().await.unwrap();
            assert_eq!(*rx.borrow(), 5);
            drop(tx);
            assert!(rx.changed().await.is_err());
        });
    }

    #[test]
    fn async_mutex_guards_shared_state() {
        block_on(async {
            let m = std::sync::Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                handles.push(crate::spawn(async move {
                    for _ in 0..100 {
                        *m.lock().await += 1;
                    }
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            assert_eq!(*m.lock().await, 800);
        });
    }
}
