//! Async byte I/O: the read/write traits, their ext methods, and an
//! in-memory duplex pipe.

use std::collections::VecDeque;
use std::fmt;
use std::future::poll_fn;
use std::io;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// A nonblocking byte source.
///
/// Simplified from tokio: receivers are `Unpin` and the buffer is a plain
/// slice, which is all the workspace's codec needs.
#[allow(async_fn_in_trait)]
pub trait AsyncRead: Unpin {
    /// Attempts to read into `buf`, returning how many bytes were read.
    /// `Ok(0)` means end of stream.
    fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>>;
}

/// A nonblocking byte sink.
#[allow(async_fn_in_trait)]
pub trait AsyncWrite: Unpin {
    /// Attempts to write from `buf`, returning how many bytes were written.
    fn poll_write(&mut self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>>;

    /// Attempts to flush buffered data.
    fn poll_flush(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
}

/// Convenience read methods, available on every [`AsyncRead`].
#[allow(async_fn_in_trait)]
pub trait AsyncReadExt: AsyncRead {
    /// Reads some bytes into `buf`.
    async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        poll_fn(|cx| self.poll_read(cx, buf)).await
    }

    /// Reads exactly `buf.len()` bytes, erroring with `UnexpectedEof` if the
    /// stream ends early.
    async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = poll_fn(|cx| self.poll_read(cx, &mut buf[filled..])).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed before buffer was filled",
                ));
            }
            filled += n;
        }
        Ok(filled)
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

/// Convenience write methods, available on every [`AsyncWrite`].
#[allow(async_fn_in_trait)]
pub trait AsyncWriteExt: AsyncWrite {
    /// Writes the entire buffer.
    async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut written = 0;
        while written < buf.len() {
            let n = poll_fn(|cx| self.poll_write(cx, &buf[written..])).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "stream refused further bytes",
                ));
            }
            written += n;
        }
        Ok(())
    }

    /// Flushes buffered data to the underlying transport.
    async fn flush(&mut self) -> io::Result<()> {
        poll_fn(|cx| self.poll_flush(cx)).await
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

// ---------------------------------------------------------------------------
// duplex
// ---------------------------------------------------------------------------

/// One direction of an in-memory pipe.
struct Pipe {
    buf: VecDeque<u8>,
    max: usize,
    closed: bool,
    read_wakers: Vec<Waker>,
    write_wakers: Vec<Waker>,
}

impl Pipe {
    fn new(max: usize) -> Arc<Mutex<Pipe>> {
        Arc::new(Mutex::new(Pipe {
            buf: VecDeque::new(),
            max,
            closed: false,
            read_wakers: Vec::new(),
            write_wakers: Vec::new(),
        }))
    }
}

fn wake_drain(wakers: &mut Vec<Waker>) {
    for waker in wakers.drain(..) {
        waker.wake();
    }
}

/// One endpoint of an in-memory, bidirectional byte stream.
pub struct DuplexStream {
    read_from: Arc<Mutex<Pipe>>,
    write_to: Arc<Mutex<Pipe>>,
}

impl fmt::Debug for DuplexStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DuplexStream").finish_non_exhaustive()
    }
}

/// Creates a connected pair of in-memory streams, each direction buffering
/// at most `max_buf_size` bytes.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new(max_buf_size.max(1));
    let b_to_a = Pipe::new(max_buf_size.max(1));
    (
        DuplexStream {
            read_from: Arc::clone(&b_to_a),
            write_to: Arc::clone(&a_to_b),
        },
        DuplexStream {
            read_from: a_to_b,
            write_to: b_to_a,
        },
    )
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        for pipe in [&self.read_from, &self.write_to] {
            let mut p = pipe.lock().unwrap_or_else(|e| e.into_inner());
            p.closed = true;
            let mut readers = std::mem::take(&mut p.read_wakers);
            let mut writers = std::mem::take(&mut p.write_wakers);
            drop(p);
            wake_drain(&mut readers);
            wake_drain(&mut writers);
        }
    }
}

impl AsyncRead for DuplexStream {
    fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        let mut pipe = self.read_from.lock().unwrap_or_else(|e| e.into_inner());
        if !pipe.buf.is_empty() {
            let mut n = 0;
            while n < buf.len() {
                match pipe.buf.pop_front() {
                    Some(b) => {
                        buf[n] = b;
                        n += 1;
                    }
                    None => break,
                }
            }
            let mut writers = std::mem::take(&mut pipe.write_wakers);
            drop(pipe);
            wake_drain(&mut writers);
            return Poll::Ready(Ok(n));
        }
        if pipe.closed {
            return Poll::Ready(Ok(0));
        }
        let waker = cx.waker();
        if !pipe.read_wakers.iter().any(|w| w.will_wake(waker)) {
            pipe.read_wakers.push(waker.clone());
        }
        Poll::Pending
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(&mut self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        let mut pipe = self.write_to.lock().unwrap_or_else(|e| e.into_inner());
        if pipe.closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer closed",
            )));
        }
        let room = pipe.max.saturating_sub(pipe.buf.len());
        if room == 0 {
            let waker = cx.waker();
            if !pipe.write_wakers.iter().any(|w| w.will_wake(waker)) {
                pipe.write_wakers.push(waker.clone());
            }
            return Poll::Pending;
        }
        let n = room.min(buf.len());
        pipe.buf.extend(&buf[..n]);
        let mut readers = std::mem::take(&mut pipe.read_wakers);
        drop(pipe);
        wake_drain(&mut readers);
        Poll::Ready(Ok(n))
    }

    fn poll_flush(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn duplex_roundtrip() {
        block_on(async {
            let (mut a, mut b) = duplex(64);
            a.write_all(b"ping").await.unwrap();
            let mut buf = [0u8; 4];
            b.read_exact(&mut buf).await.unwrap();
            assert_eq!(&buf, b"ping");
            b.write_all(b"pong").await.unwrap();
            a.read_exact(&mut buf).await.unwrap();
            assert_eq!(&buf, b"pong");
        });
    }

    #[test]
    fn duplex_eof_after_peer_drop() {
        block_on(async {
            let (mut a, b) = duplex(16);
            drop(b);
            let mut buf = [0u8; 1];
            assert_eq!(a.read(&mut buf).await.unwrap(), 0, "EOF");
            assert!(a.write_all(b"x").await.is_err(), "broken pipe");
        });
    }

    #[test]
    fn duplex_backpressure_across_tasks() {
        block_on(async {
            let (mut a, mut b) = duplex(4);
            let writer = crate::spawn(async move {
                let payload = [7u8; 64];
                a.write_all(&payload).await.unwrap();
                a
            });
            let mut got = Vec::new();
            let mut buf = [0u8; 16];
            while got.len() < 64 {
                let n = b.read(&mut buf).await.unwrap();
                got.extend_from_slice(&buf[..n]);
            }
            assert!(got.iter().all(|&b| b == 7));
            writer.await.unwrap();
        });
    }
}
