//! Timers: `sleep`, `timeout` and `interval`, driven by the executor's poll
//! cadence.

use std::fmt;
use std::future::{poll_fn, Future};
use std::pin::pin;
use std::task::Poll;
use std::time::{Duration, Instant};

/// Waits for at least `duration`.
///
/// Resolution is the executor's park interval (≈0.5 ms), ample for the
/// millisecond-scale periods the workspace uses.
pub async fn sleep(duration: Duration) {
    let deadline = Instant::now() + duration;
    poll_fn(|_cx| {
        if Instant::now() >= deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    })
    .await
}

/// The future given to [`timeout`] did not complete before the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

impl From<Elapsed> for std::io::Error {
    fn from(_: Elapsed) -> Self {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "deadline has elapsed")
    }
}

/// Requires `fut` to complete within `duration`, or resolves to
/// [`Elapsed`] and drops the future.
///
/// The deadline is checked between polls, so a *blocking* leaf operation
/// (e.g. this stand-in's `TcpStream::connect` handshake) cannot be
/// preempted mid-call; on the loopback paths this workspace exercises those
/// complete (or fail) immediately, and all nonblocking I/O — reads, writes,
/// channel waits, sleeps — times out as expected.
pub async fn timeout<F: Future>(duration: Duration, fut: F) -> Result<F::Output, Elapsed> {
    let deadline = Instant::now() + duration;
    let mut fut = pin!(fut);
    poll_fn(|cx| {
        if let Poll::Ready(out) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(out));
        }
        if Instant::now() >= deadline {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    })
    .await
}

/// What [`Interval::tick`] does when ticks were missed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MissedTickBehavior {
    /// Fire all missed ticks immediately, back to back.
    #[default]
    Burst,
    /// Skip missed ticks and re-anchor the schedule at now + period.
    Delay,
    /// Skip missed ticks but stay phase-aligned to the original schedule.
    Skip,
}

/// A stream of ticks at a fixed period. The first tick fires immediately.
#[derive(Debug)]
pub struct Interval {
    next: Instant,
    period: Duration,
    behavior: MissedTickBehavior,
}

/// Creates an interval; the first [`Interval::tick`] completes at once.
pub fn interval(period: Duration) -> Interval {
    assert!(period > Duration::ZERO, "interval period must be non-zero");
    Interval {
        next: Instant::now(),
        period,
        behavior: MissedTickBehavior::Burst,
    }
}

impl Interval {
    /// Sets the policy for ticks that were missed while the task was busy.
    pub fn set_missed_tick_behavior(&mut self, behavior: MissedTickBehavior) {
        self.behavior = behavior;
    }

    /// Completes at the next scheduled tick.
    pub async fn tick(&mut self) -> Instant {
        poll_fn(|_cx| {
            let now = Instant::now();
            if now < self.next {
                return Poll::Pending;
            }
            let fired = self.next;
            self.next = match self.behavior {
                MissedTickBehavior::Burst => fired + self.period,
                MissedTickBehavior::Delay => now + self.period,
                MissedTickBehavior::Skip => {
                    let mut next = fired + self.period;
                    while next <= now {
                        next += self.period;
                    }
                    next
                }
            };
            Poll::Ready(fired)
        })
        .await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn sleep_waits_roughly_long_enough() {
        block_on(async {
            let start = Instant::now();
            sleep(Duration::from_millis(20)).await;
            assert!(start.elapsed() >= Duration::from_millis(20));
        });
    }

    #[test]
    fn timeout_passes_through_fast_futures() {
        block_on(async {
            let out = timeout(Duration::from_millis(100), async { 5u32 }).await;
            assert_eq!(out, Ok(5));
        });
    }

    #[test]
    fn timeout_fires_on_slow_futures() {
        block_on(async {
            let out = timeout(Duration::from_millis(10), sleep(Duration::from_secs(60))).await;
            assert_eq!(out, Err(Elapsed));
        });
    }

    #[test]
    fn interval_first_tick_is_immediate_then_periodic() {
        block_on(async {
            let start = Instant::now();
            let mut ticker = interval(Duration::from_millis(10));
            ticker.set_missed_tick_behavior(MissedTickBehavior::Delay);
            ticker.tick().await;
            assert!(
                start.elapsed() < Duration::from_millis(8),
                "first tick immediate"
            );
            ticker.tick().await;
            assert!(start.elapsed() >= Duration::from_millis(9));
        });
    }
}
