//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! vendors the *subset* of the `rand` 0.8 API that the workspace actually
//! uses: [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (a
//! xoshiro256++ generator), [`seq::SliceRandom`] and [`seq::index::sample`].
//!
//! Determinism contract: a given seed always yields the same stream on every
//! platform; nothing here reads OS entropy.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + (end - start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Uniform integer in `[0, span)` (`span == 0` means the full u64 range),
/// via Lemire-style widening multiplication with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Reject the low fringe so every value in [0, span) is equally likely.
    let fringe = (u64::MAX - span + 1) % span; // == 2^64 mod span
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if wide as u64 >= fringe {
            return (wide >> 64) as u64;
        }
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, the full domain for integers, fair for bools).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as real `rand`'s `StdRng` (ChaCha12), but the
    /// workspace only relies on determinism and statistical quality, not on
    /// a specific stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffles and subset selection.

    use super::{Rng, RngCore};

    /// Slice extensions for random selection, mirroring `rand::seq`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns an iterator over `amount` distinct random elements (fewer
        /// if the slice is shorter), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let picked = index::sample(rng, self.len(), amount.min(self.len()));
            picked
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }

    pub mod index {
        //! Index sampling without replacement.

        use super::super::{Rng, RngCore};
        use std::collections::HashMap;

        /// A set of sampled indices.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether nothing was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length`, uniformly and
        /// in random order. Panics if `amount > length`.
        ///
        /// Runs a *sparse* partial Fisher–Yates: instead of materializing the
        /// full `0..length` index table (O(length) per call — quadratic for
        /// per-node sampling over large populations), only displaced entries
        /// are tracked, so one call costs O(amount) space. The RNG draw
        /// sequence and the returned indices are identical to the dense
        /// table walk, so seeded streams reproduce exactly.
        ///
        /// For the small `amount`s hot paths use (view-sized, ~tens), the
        /// displacements live in a linear-scanned vector — cheaper than a
        /// hash map at that size; larger requests switch to a map.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut out = Vec::with_capacity(amount);
            if amount <= 64 {
                // `(slot, value)` pairs; the latest entry for a slot wins,
                // emulating the dense table's overwrite.
                let mut displaced: Vec<(usize, usize)> = Vec::with_capacity(amount);
                let at = |d: &[(usize, usize)], k: usize| {
                    d.iter()
                        .rev()
                        .find(|&&(slot, _)| slot == k)
                        .map_or(k, |&(_, v)| v)
                };
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    let picked = at(&displaced, j);
                    let at_i = at(&displaced, i);
                    displaced.push((j, at_i));
                    out.push(picked);
                }
            } else {
                // `displaced[k]` holds the value a dense table would have
                // at slot `k` after the swaps so far; untouched slots hold `k`.
                let mut displaced: HashMap<usize, usize> = HashMap::with_capacity(amount * 2);
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    let picked = displaced.get(&j).copied().unwrap_or(j);
                    let at_i = displaced.get(&i).copied().unwrap_or(i);
                    displaced.insert(j, at_i);
                    out.push(picked);
                }
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "both tails visited");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct() {
        let mut rng = StdRng::seed_from_u64(6);
        let picked = seq::index::sample(&mut rng, 100, 10);
        let mut v = picked.into_vec();
        assert_eq!(v.len(), 10);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 10, "indices distinct");
    }

    #[test]
    fn sparse_sample_matches_dense_walk() {
        // The sparse Fisher–Yates must reproduce the dense index-table walk
        // exactly: same draws, same outputs.
        // Both implementations: the linear-scan path (small amounts) and
        // the hash-map path (amount > 64).
        for amount in [17usize, 100] {
            for seed in 0..20 {
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                let length = 1000;
                let sparse = seq::index::sample(&mut a, length, amount).into_vec();
                let mut dense: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = b.gen_range(i..length);
                    dense.swap(i, j);
                }
                dense.truncate(amount);
                assert_eq!(sparse, dense, "seed {seed}, amount {amount}");
                assert_eq!(a.next_u64(), b.next_u64(), "same number of draws");
            }
        }
    }

    #[test]
    fn choose_multiple_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let v: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let all: Vec<u32> = v.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 10);
    }
}
