//! Integration: the analytic results validated against the simulator.
//!
//! Lemma 4.1 and Theorem 5.1 are proved on idealized sampling models; these
//! tests check they actually describe what the *simulated protocols* do —
//! slice populations under the ordering algorithm follow the binomial
//! characterization, and ranking-node confidence tracks the sample-size
//! bound.

use dslice::analysis;
use dslice::prelude::*;

#[test]
fn ordering_slice_populations_follow_the_binomial_model() {
    // Run mod-JK to full order, then count the population of each slice
    // (by final random value). §4.4: the count is Binomial(n, p); Lemma 4.1
    // bounds the deviation from np.
    let n = 1_000usize;
    let slices = 10usize;
    let p = 1.0 / slices as f64;
    let cfg = SimConfig {
        n,
        view_size: 15,
        partition: Partition::equal(slices).unwrap(),
        seed: 77,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
    // Run to total order (the convergence tail is long: the final inversions
    // wait for specific pairs to meet in a view).
    engine.run(120);
    while engine.gdm() > 0.0 && engine.cycle() < 600 {
        engine.step();
    }
    assert_eq!(engine.gdm(), 0.0, "fully ordered before measuring");

    let partition = engine.partition().clone();
    let mut counts = vec![0usize; slices];
    for (_, _, r) in engine.snapshot() {
        counts[partition.slice_of(r).as_usize()] += 1;
    }
    assert_eq!(counts.iter().sum::<usize>(), n);

    // Lemma 4.1 with β = 1.0: for p = 0.1 and n = 1000 the premise holds at
    // ε = 0.05, so each slice count should lie within [0, 2np] — and the
    // binomial std dev (≈ 9.5) says typical counts are 100 ± 30.
    assert!(analysis::chernoff::lemma_applies(1.0, 0.05, n, p));
    let expectation = analysis::expected_slice_population(n, p);
    for (idx, &count) in counts.iter().enumerate() {
        let deviation = (count as f64 - expectation.mean).abs();
        assert!(
            deviation <= 5.0 * expectation.std_dev,
            "slice {idx} holds {count}, > 5σ from np = {}",
            expectation.mean
        );
    }
}

#[test]
fn slice_counts_are_rarely_exact() {
    // §4.4: the probability of an exactly even split is ≈ √(2/nπ) — tiny.
    // Verify on the simulator: across 20 seeds, 2-slice populations almost
    // never split exactly 150/150.
    let mut exact = 0;
    for seed in 0..20u64 {
        let cfg = SimConfig {
            n: 300,
            view_size: 10,
            partition: Partition::equal(2).unwrap(),
            seed,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
        engine.run(60);
        let partition = engine.partition().clone();
        let low = engine
            .snapshot()
            .iter()
            .filter(|(_, _, r)| partition.slice_of(*r).as_usize() == 0)
            .count();
        if low == 150 {
            exact += 1;
        }
    }
    // Per-seed probability ≈ √(2/300π) ≈ 4.6%; 20 seeds → expect ~1.
    assert!(
        exact <= 5,
        "exactly-even splits should be rare: {exact}/20 seeds"
    );
}

#[test]
fn ranking_confidence_tracks_theorem_51() {
    // After enough cycles, nodes far from a boundary should satisfy the
    // theorem's sample requirement while freshly-joined nodes would not.
    let cfg = SimConfig {
        n: 400,
        view_size: 10,
        partition: Partition::equal(4).unwrap(),
        seed: 91,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    engine.run(120);
    let partition = engine.partition().clone();

    // Every cycle a node folds ~view_size + received samples; after 120
    // cycles ≳ 1200 samples. Theorem 5.1 at d = 0.1 (mid-slice of quarter
    // slices), p̂ = 0.5: k = (1.96·0.5/0.1)² ≈ 96 — amply satisfied, and
    // indeed mid-slice nodes are essentially always right.
    let required = analysis::required_samples(0.5, 0.1, 0.05);
    assert!(
        required < 1_200,
        "mid-slice requirement ({required}) met by cycle budget"
    );

    let snapshot = engine.snapshot();
    let alpha = dslice::core::rank::attribute_ranks(snapshot.iter().map(|&(id, a, _)| (id, a)));
    let n = snapshot.len();
    let (mut mid_total, mut mid_correct) = (0usize, 0usize);
    for (id, _, est) in &snapshot {
        let truth = alpha[id] as f64 / n as f64;
        if partition.boundary_distance(truth) >= 0.1 {
            mid_total += 1;
            if partition.slice_of(*est) == partition.slice_of(truth) {
                mid_correct += 1;
            }
        }
    }
    let rate = mid_correct as f64 / mid_total.max(1) as f64;
    assert!(
        rate >= 0.95,
        "mid-slice nodes must be ≥95% correct (Theorem 5.1): {rate:.3}"
    );
}

#[test]
fn wald_interval_covers_the_simulated_estimates() {
    // For a sample of nodes, the Wald 95% interval around the final
    // estimate should cover the true normalized rank for the vast majority.
    let cfg = SimConfig {
        n: 300,
        view_size: 10,
        partition: Partition::equal(4).unwrap(),
        seed: 93,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    let record = engine.run(100);
    // Approximate per-node sample count: absorbed samples / population.
    let absorbed: u64 = record
        .cycles
        .iter()
        .map(|c| c.events.samples_absorbed)
        .sum();
    let k = (absorbed / 300).max(1) as usize;

    let snapshot = engine.snapshot();
    let alpha = dslice::core::rank::attribute_ranks(snapshot.iter().map(|&(id, a, _)| (id, a)));
    let n = snapshot.len();
    let covered = snapshot
        .iter()
        .filter(|(id, _, est)| {
            let truth = alpha[id] as f64 / n as f64;
            let (lo, hi) = analysis::wald_interval(est.clamp(0.0, 1.0), k, 0.05);
            lo <= truth && truth <= hi
        })
        .count();
    let rate = covered as f64 / n as f64;
    // Samples are view-correlated rather than iid, so allow slack below the
    // nominal 95% — but far above chance.
    assert!(
        rate >= 0.60,
        "Wald coverage collapsed: {rate:.2} with k = {k}"
    );
}
