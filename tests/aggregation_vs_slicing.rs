//! Integration: the related-work baselines (refs [12], [13]) against the
//! slicing protocols on shared populations.
//!
//! §2 of the paper dismisses quantile-search approaches because they answer
//! one global question per run and need a system-size estimate. These tests
//! wire `dslice-aggregation` to the same attribute populations the slicing
//! engine uses and verify (a) the baselines work as their papers claim, and
//! (b) the comparison the paper draws actually holds numerically.

use dslice::aggregation::{estimate_size, exact_quantile, AggregateKind, QuantileSearch, Swarm};
use dslice::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws the same kind of population the engine would build.
fn attribute_values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = AttributeDistribution::Pareto {
        scale: 1.0,
        shape: 1.5,
    };
    (0..n).map(|_| dist.sample(&mut rng).value()).collect()
}

#[test]
fn size_estimation_feeds_quantile_rank_conversion() {
    // Ref [13]-style pipelines convert "the k-th smallest" to a normalized
    // rank via n; verify the COUNT estimate is good enough for that use.
    let n = 800;
    let estimates = estimate_size(n, 40, 91);
    for est in estimates {
        let est = est.expect("counting wave must reach everyone in 40 rounds");
        assert!((est - n as f64).abs() / (n as f64) < 0.02);
    }
}

#[test]
fn quantile_search_locates_slice_boundaries() {
    // The boundary values of a 4-slice partition, found by bisection, match
    // the exact order statistics of the attribute population.
    let values = attribute_values(1_200, 93);
    for phi in [0.25, 0.5, 0.75] {
        let result = QuantileSearch::new(phi).run(&values, 95);
        let exact = exact_quantile(&values, phi);
        let rel = (result.value - exact).abs() / exact;
        assert!(
            rel < 0.05,
            "phi {phi}: found {:.3} vs exact {exact:.3}",
            result.value
        );
    }
}

#[test]
fn slicing_cost_is_independent_of_slice_count_quantile_cost_is_not() {
    // The §2 comparison, run small. Quantile search pays per boundary;
    // ranking pays once regardless of k.
    let values = attribute_values(400, 97);

    let cost_for = |k: usize| -> usize {
        (1..k)
            .map(|b| {
                QuantileSearch {
                    phi: b as f64 / k as f64,
                    tolerance: 0.01,
                    rounds_per_probe: 20,
                    max_probes: 20,
                }
                .run(&values, 99 ^ b as u64)
                .gossip_rounds
            })
            .sum()
    };
    let rounds_k4 = cost_for(4);
    let rounds_k16 = cost_for(16);
    assert!(
        rounds_k16 > 3 * rounds_k4,
        "quantile cost must grow with slice count: k=4 → {rounds_k4}, k=16 → {rounds_k16}"
    );

    // Ranking: the *per-cycle message cost* is structurally independent of
    // k — every node sends exactly two UPD messages per cycle (Fig. 5 lines
    // 13–14) no matter how many slices the partition defines. (Time to a
    // given accuracy does grow with k, but that is Theorem 5.1's
    // boundary-resolution effect, which quantile search pays too — inside
    // every single probe.)
    let updates_per_node_per_cycle = |k: usize| -> f64 {
        let cfg = SimConfig {
            n: 400,
            view_size: 10,
            partition: Partition::equal(k).unwrap(),
            distribution: AttributeDistribution::Pareto {
                scale: 1.0,
                shape: 1.5,
            },
            seed: 101,
            ..SimConfig::default()
        };
        let record = Engine::new(cfg, ProtocolKind::Ranking).unwrap().run(50);
        let updates: u64 = record.cycles.iter().map(|c| c.events.updates_sent).sum();
        updates as f64 / (50.0 * 400.0)
    };
    let cost_k4 = updates_per_node_per_cycle(4);
    let cost_k16 = updates_per_node_per_cycle(16);
    assert!((cost_k4 - 2.0).abs() < 0.01, "k=4 cost {cost_k4}");
    assert!((cost_k16 - 2.0).abs() < 0.01, "k=16 cost {cost_k16}");
}

#[test]
fn averaging_tracks_the_engine_population_mean() {
    // The aggregation substrate consumes the same attribute values the
    // engine holds; its estimate matches the exact snapshot mean.
    let cfg = SimConfig {
        n: 500,
        view_size: 10,
        partition: Partition::equal(5).unwrap(),
        seed: 103,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    engine.run(10);
    let attributes: Vec<f64> = engine
        .snapshot()
        .iter()
        .map(|&(_, a, _)| a.value())
        .collect();
    let exact = attributes.iter().sum::<f64>() / attributes.len() as f64;

    let mut swarm = Swarm::new(AggregateKind::Average, &attributes, 105);
    for _ in 0..40 {
        swarm.round();
    }
    for v in swarm.values() {
        assert!((v - exact).abs() < 1e-6 * exact.max(1.0));
    }
}

#[test]
fn epidemic_max_finds_the_best_node() {
    // Min/max epidemics identify the single most capable node — the
    // degenerate "slice of size 1" — in O(log n) rounds.
    let attributes = attribute_values(1_000, 107);
    let exact_max = attributes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut swarm = Swarm::new(AggregateKind::Max, &attributes, 109);
    for _ in 0..25 {
        swarm.round();
    }
    for v in swarm.values() {
        assert_eq!(v, exact_max);
    }
}
