//! Integration: every figure pipeline runs end-to-end at Tiny scale and
//! reproduces the paper's qualitative shape.
//!
//! These tests exercise exactly the code the `figures` binary runs, so a
//! green run here means `cargo run -p dslice-bench --bin figures` will
//! produce meaningful CSVs.

use dslice_bench::experiments::{self, Scale};
use dslice_bench::Table;

const SEED: u64 = 0xF16;

fn column(t: &Table, name: &str) -> Vec<f64> {
    t.column(name)
        .unwrap_or_else(|| panic!("table {} lacks column {name}", t.name))
}

#[test]
fn fig4a_gdm_hits_zero_sdm_plateaus_positive() {
    let t = experiments::fig4a(Scale::Tiny, SEED);
    let gdm = column(&t, "gdm");
    let sdm = column(&t, "sdm");
    assert_eq!(*gdm.last().unwrap(), 0.0, "GDM must reach 0");
    assert!(
        *sdm.last().unwrap() > 0.0,
        "SDM floor must be positive (random-value inaccuracy, §4.4)"
    );
    assert!(
        sdm.last().unwrap() < &sdm[0],
        "SDM still improved massively"
    );
}

#[test]
fn fig4b_modjk_faster_than_jk() {
    let t = experiments::fig4b(Scale::Tiny, SEED);
    let jk: f64 = column(&t, "sdm_jk").iter().sum();
    let modjk: f64 = column(&t, "sdm_modjk").iter().sum();
    assert!(modjk < jk, "mod-JK AUC {modjk} must beat JK {jk}");
}

#[test]
fn fig4c_concurrency_wastes_messages_modjk_most() {
    let t = experiments::fig4c(Scale::Tiny, SEED);
    // Average over the first eighth of the run: that is the active phase
    // where swaps are still being proposed. Once mod-JK converges (which it
    // does first, and faster still under the schedule-driven membership
    // phase) its unsuccessful-swap rate collapses to zero, so a longer
    // average would dilute exactly the effect the figure shows.
    let window = t.rows.len() / 8;
    let avg = |name: &str| {
        let v = column(&t, name);
        v[..window].iter().sum::<f64>() / window as f64
    };
    let jk_half = avg("jk_half");
    let jk_full = avg("jk_full");
    let _modjk_half = avg("modjk_half");
    let modjk_full = avg("modjk_full");
    assert!(jk_full > 0.0 && modjk_full > 0.0);
    assert!(
        jk_full > jk_half * 0.8,
        "full ≥ half for JK: {jk_full} vs {jk_half}"
    );
    assert!(
        modjk_full > jk_full,
        "mod-JK wastes more than JK under full concurrency: {modjk_full} vs {jk_full}"
    );
}

#[test]
fn fig4d_full_concurrency_only_slightly_slower() {
    let t = experiments::fig4d(Scale::Tiny, SEED);
    let none: f64 = column(&t, "sdm_none").iter().sum();
    let full: f64 = column(&t, "sdm_full").iter().sum();
    assert!(
        full < none * 2.5,
        "full-concurrency AUC {full} vs atomic {none}: impact must stay slight"
    );
    let last = *column(&t, "sdm_full").last().unwrap();
    let first = column(&t, "sdm_full")[0];
    assert!(last < first / 3.0, "still converges under full concurrency");
}

#[test]
fn fig6a_ranking_passes_below_ordering() {
    let t = experiments::fig6a(Scale::Tiny, SEED);
    let ranking = column(&t, "sdm_ranking");
    let ordering = column(&t, "sdm_ordering");
    assert!(
        ranking.last().unwrap() < ordering.last().unwrap(),
        "ranking must end below the ordering floor: {} vs {}",
        ranking.last().unwrap(),
        ordering.last().unwrap()
    );
}

#[test]
fn fig6b_views_track_the_uniform_oracle() {
    let t = experiments::fig6b(Scale::Tiny, SEED);
    let uniform = column(&t, "sdm_uniform");
    let views = column(&t, "sdm_views");
    // Compare converged tails.
    let tail = |v: &[f64]| {
        let t = &v[v.len() - 20..];
        t.iter().sum::<f64>() / t.len() as f64
    };
    let u = tail(&uniform);
    let v = tail(&views);
    assert!(
        (u - v).abs() <= u.max(v) * 0.6 + 5.0,
        "substrates must agree: uniform {u:.1} vs views {v:.1}"
    );
}

#[test]
fn fig6c_ranking_recovers_ordering_does_not() {
    let t = experiments::fig6c(Scale::Tiny, SEED);
    let ranking = column(&t, "sdm_ranking");
    let jk = column(&t, "sdm_jk");
    // Burst covers the first half; afterwards ranking decreases, JK stays
    // stuck above it.
    let half = ranking.len() / 2;
    assert!(
        ranking.last().unwrap() < &ranking[half],
        "ranking must keep dropping after the burst"
    );
    assert!(
        jk.last().unwrap() > ranking.last().unwrap(),
        "JK must end above ranking after correlated churn: {} vs {}",
        jk.last().unwrap(),
        ranking.last().unwrap()
    );
}

#[test]
fn fig6d_sliding_window_contains_churn() {
    let t = experiments::fig6d(Scale::Tiny, SEED);
    let ordering = column(&t, "sdm_ordering");
    let sliding = column(&t, "sdm_sliding");
    let tail = |v: &[f64]| {
        let t = &v[v.len() - 20..];
        t.iter().sum::<f64>() / t.len() as f64
    };
    assert!(
        tail(&sliding) < tail(&ordering),
        "sliding-window tail {} must sit below the ordering tail {}",
        tail(&sliding),
        tail(&ordering)
    );
}

#[test]
fn lemma41_and_thm51_tables_are_well_formed() {
    let l = experiments::lemma41_with(SEED, 200, &[1_000]);
    assert!(!l.rows.is_empty());
    for (b, e) in column(&l, "bound").iter().zip(column(&l, "empirical")) {
        assert!(e <= b + 0.06, "empirical {e} above bound {b}");
    }
    let t = experiments::thm51_with(SEED, 100, &[0.04, 0.02]);
    for c in column(&t, "empirical_correct") {
        assert!(c >= 0.88, "correct rate {c} too low");
    }
}

#[test]
fn ablations_run() {
    let s = experiments::ablation_sampler(Scale::Tiny, SEED);
    assert!(!s.rows.is_empty());
    // Both substrates converge.
    let last = s.rows.last().unwrap();
    assert!(last[1] < s.rows[0][1], "cyclon converged");
    assert!(last[2] < s.rows[0][2], "newscast converged");

    let d = experiments::ablation_distribution(Scale::Tiny, SEED);
    let last = d.rows.last().unwrap();
    // Rank-based slicing is insensitive to the attribute shape.
    assert!(
        (last[1] - last[2]).abs() <= last[1].max(last[2]) + 10.0,
        "uniform vs pareto diverged: {} vs {}",
        last[1],
        last[2]
    );
}

#[test]
fn ablation_sampler_ranking_orders_substrates() {
    // Ranking quality by substrate: the Cyclon variant must track the
    // uniform oracle closely, and Newscast must trail badly (its
    // freshest-c merge correlates views, biasing the sample stream).
    let t = dslice_bench::ablations::ablation_sampler_ranking(Scale::Tiny, SEED);
    let last = t.rows.len() - 1;
    let cyclon = column(&t, "sdm_cyclon")[last];
    let oracle = column(&t, "sdm_oracle")[last];
    let newscast = column(&t, "sdm_newscast")[last];
    assert!(
        cyclon < oracle * 2.0,
        "Cyclon ({cyclon}) must track the oracle ({oracle})"
    );
    assert!(
        newscast > cyclon * 1.5,
        "Newscast ({newscast}) must trail Cyclon ({cyclon}) clearly"
    );
}

#[test]
fn ablation_targeting_boundary_heuristic_helps_or_ties() {
    // The j1 heuristic is a refinement: it must never substantially hurt.
    let t = dslice_bench::ablations::ablation_targeting(Scale::Tiny, SEED);
    let last = t.rows.len() - 1;
    let boundary = column(&t, "sdm_boundary")[last];
    let uniform = column(&t, "sdm_uniform_targets")[last];
    assert!(
        boundary < uniform * 1.2,
        "boundary targeting ({boundary}) must not lose to uniform ({uniform})"
    );
}

#[test]
fn ablation_window_has_an_interior_optimum_or_monotone_edge() {
    // The window trade-off: the medium window must beat at least one
    // extreme (short = noisy, long = stale) under correlated churn.
    let t = dslice_bench::ablations::ablation_window(Scale::Tiny, SEED);
    let last = t.rows.len() - 1;
    let small = column(&t, "sdm_small")[last];
    let medium = column(&t, "sdm_medium")[last];
    let large = column(&t, "sdm_large")[last];
    assert!(
        medium <= small.max(large),
        "medium window ({medium}) worse than both extremes ({small}, {large})"
    );
}
