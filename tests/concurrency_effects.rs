//! Integration: message concurrency (§4.5.2) at reduced scale.
//!
//! Asserts the qualitative results of Figs. 4(c) and 4(d): concurrency
//! produces unsuccessful swaps (none exist in the atomic model); more
//! concurrency produces more of them; mod-JK wastes more messages than JK
//! (it concentrates proposals on the most misplaced nodes); and full
//! concurrency slows convergence only slightly.

use dslice::prelude::*;

fn config(seed: u64, concurrency: Concurrency) -> SimConfig {
    SimConfig {
        n: 500,
        view_size: 12,
        partition: Partition::equal(10).unwrap(),
        concurrency,
        seed,
        ..SimConfig::default()
    }
}

fn total_useless(record: &RunRecord) -> u64 {
    record.cycles.iter().map(|c| c.events.swaps_useless).sum()
}

fn total_applied(record: &RunRecord) -> u64 {
    record.cycles.iter().map(|c| c.events.swaps_applied).sum()
}

#[test]
fn atomic_model_has_no_useless_swaps() {
    let record = Engine::new(config(1, Concurrency::None), ProtocolKind::ModJk)
        .unwrap()
        .run(40);
    assert_eq!(total_useless(&record), 0);
    assert!(total_applied(&record) > 0, "swaps did happen");
}

#[test]
fn more_concurrency_means_more_useless_swaps() {
    let half = Engine::new(config(2, Concurrency::Half), ProtocolKind::ModJk)
        .unwrap()
        .run(40);
    let full = Engine::new(config(2, Concurrency::Full), ProtocolKind::ModJk)
        .unwrap()
        .run(40);
    let half_useless = total_useless(&half);
    let full_useless = total_useless(&full);
    assert!(half_useless > 0, "half concurrency must waste something");
    assert!(
        full_useless > half_useless,
        "full ({full_useless}) must waste more than half ({half_useless})"
    );
}

#[test]
fn mod_jk_wastes_more_than_jk_under_concurrency() {
    // Fig. 4(c): "in the modified version of JK, more messages are ignored
    // than in the original JK algorithm" — gain-maximizing selection
    // concentrates REQs on the same targets.
    let pct = |kind: ProtocolKind| {
        let record = Engine::new(config(3, Concurrency::Full), kind)
            .unwrap()
            .run(60);
        let useless = total_useless(&record) as f64;
        let applied = total_applied(&record) as f64;
        100.0 * useless / (useless + applied)
    };
    let jk = pct(ProtocolKind::Jk);
    let modjk = pct(ProtocolKind::ModJk);
    assert!(
        modjk > jk,
        "mod-JK must waste a larger share: {modjk:.1}% vs JK {jk:.1}%"
    );
}

#[test]
fn full_concurrency_slows_convergence_only_slightly() {
    // Fig. 4(d): the two SDM curves nearly coincide. We allow the
    // concurrent run up to 2x the atomic run's SDM area — "slight" at this
    // scale — and require it to still converge massively from its start.
    let atomic = Engine::new(config(4, Concurrency::None), ProtocolKind::ModJk)
        .unwrap()
        .run(80);
    let full = Engine::new(config(4, Concurrency::Full), ProtocolKind::ModJk)
        .unwrap()
        .run(80);
    let auc = |r: &RunRecord| -> f64 { r.cycles.iter().map(|c| c.sdm).sum() };
    assert!(
        auc(&full) < auc(&atomic) * 2.0,
        "full concurrency must not blow up convergence: {} vs {}",
        auc(&full),
        auc(&atomic)
    );
    let first = full.cycles.first().unwrap().sdm;
    let last = full.final_sdm().unwrap();
    assert!(
        last < first / 5.0,
        "concurrent run still converges: {first} -> {last}"
    );
}

#[test]
fn ranking_is_immune_to_concurrency() {
    // §5 "Concurrency side-effect": Update payloads never go stale, so the
    // ranking algorithm records no useless swaps and converges identically
    // in distribution.
    let atomic = Engine::new(config(5, Concurrency::None), ProtocolKind::Ranking)
        .unwrap()
        .run(100);
    let full = Engine::new(config(5, Concurrency::Full), ProtocolKind::Ranking)
        .unwrap()
        .run(100);
    assert_eq!(total_useless(&atomic), 0);
    assert_eq!(total_useless(&full), 0);
    // Both converge to comparable SDM.
    let a = atomic.final_sdm().unwrap();
    let f = full.final_sdm().unwrap();
    assert!(
        (a - f).abs() <= a.max(f) * 0.8 + 20.0,
        "ranking under concurrency diverged: {a} vs {f}"
    );
}
