//! Soak: the networked runtime under crash/restart chaos plus wire loss,
//! cross-validated against the deterministic simulator.
//!
//! The simulator is the controlled counterpart of the socket runtime: same
//! protocol code, same partition, same fault magnitudes (10% loss, 20% of
//! the population crashing and later returning). Its final SDM is the
//! oracle band — the real cluster, with genuine concurrency, timeouts and
//! supervision, must land in the same order of disorder, not merely
//! "survive".
//!
//! Ignored by default (runs ~10 s of wall clock); CI runs it in release in
//! the `net-chaos` job:
//!
//! ```text
//! cargo test --release -p dslice --test net_chaos_soak -- --ignored
//! ```
//!
//! The harvested [`ClusterReport`] is written as JSON to the path in
//! `NET_CHAOS_REPORT` (default `target/net-chaos-report.json`) so the CI
//! job can upload it as an artifact whether the band check passes or not.

use dslice::prelude::*;
use dslice::sim::churn::ChurnPlan;
use std::time::Duration;

const N: usize = 20;
const SLICES: usize = 2;
const VIEW: usize = 8;
const SEED: u64 = 0x50AC;
const PERIOD: Duration = Duration::from_millis(40);
/// Total run length, in gossip periods / simulator cycles.
const CYCLES: usize = 150;
/// Crash 20% of the population at this period, restart it at twice this.
const CRASH_AT: usize = 30;
const LOSS: f64 = 0.1;

fn crash_count() -> usize {
    N / 5
}

fn attrs() -> Vec<Attribute> {
    (0..N)
        .map(|i| Attribute::new(((i * 37) % N) as f64).unwrap())
        .collect()
}

/// The simulator-side mirror of the chaos plan: the lowest-id fifth of the
/// population leaves at [`CRASH_AT`] and rejoins (same attribute values,
/// fresh identities and state) at `2 * CRASH_AT` — exactly what a crash
/// plus supervised restart looks like from the protocol's point of view.
struct CrashRestartChurn {
    stash: Vec<Attribute>,
}

impl ChurnModel for CrashRestartChurn {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        _rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        if cycle == CRASH_AT {
            let mut pop = population.to_vec();
            pop.sort_by_key(|(id, _)| id.as_u64());
            pop.truncate(crash_count());
            self.stash = pop.iter().map(|&(_, a)| a).collect();
            ChurnPlan {
                leavers: pop.into_iter().map(|(id, _)| id).collect(),
                joiners: Vec::new(),
            }
        } else if cycle == 2 * CRASH_AT {
            ChurnPlan {
                leavers: Vec::new(),
                joiners: std::mem::take(&mut self.stash),
            }
        } else {
            ChurnPlan::quiet()
        }
    }

    fn label(&self) -> &'static str {
        "crash-restart"
    }
}

/// Runs the deterministic oracle: same n, slices, view, loss, and the
/// mirrored crash/restart schedule. Returns its final SDM.
fn oracle_sdm() -> f64 {
    let cfg = SimConfig {
        n: N,
        view_size: VIEW,
        partition: Partition::equal(SLICES).unwrap(),
        seed: SEED,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(CrashRestartChurn { stash: Vec::new() }));
    engine.set_drop_rate(LOSS).unwrap();
    let record = engine.run(CYCLES);
    record.final_sdm().expect("oracle ran at least one cycle")
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
#[ignore = "soak test: ~10 s wall clock; CI runs it in the net-chaos job"]
async fn chaotic_cluster_tracks_the_simulator_band() {
    let k = crash_count();
    let mut chaos = ChaosPlan::new().at_ms((CRASH_AT as u64) * PERIOD.as_millis() as u64);
    for i in 0..k {
        chaos = chaos.crash(NodeId::new(i as u64));
    }
    chaos = chaos.at_ms((2 * CRASH_AT as u64) * PERIOD.as_millis() as u64);
    for i in 0..k {
        chaos = chaos.restart(NodeId::new(i as u64));
    }

    let cfg = ClusterConfig {
        view_size: VIEW,
        period: PERIOD,
        bootstrap_degree: 5,
        seed: SEED,
        faults: FaultPlan::lossy(LOSS),
        chaos,
        ..ClusterConfig::new(
            attrs(),
            Partition::equal(SLICES).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(PERIOD * CYCLES as u32).await;
    let report = cluster.shutdown().await;

    // Persist the report for the CI artifact *before* any assertion, so a
    // red run still ships its evidence.
    let path =
        std::env::var("NET_CHAOS_REPORT").unwrap_or_else(|_| "target/net-chaos-report.json".into());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("chaos soak report -> {path}");

    // The chaos plan executed in full.
    assert_eq!(
        report.totals.chaos_kills, k as u64,
        "exits: {:?}",
        report.exits
    );
    assert_eq!(
        report.totals.restarts, k as u64,
        "exits: {:?}",
        report.exits
    );
    assert!(report.totals.dropped > 0, "10% loss must drop something");
    // Everyone — including the restarted fifth — is alive at shutdown.
    assert_eq!(report.nodes.len(), N);

    // Cross-validation: the socket runtime may be messier than the
    // deterministic oracle (real timeouts, genuine concurrency, its
    // crashed nodes lose *all* state), but it must land in the same band
    // of disorder, not an order of magnitude away.
    let oracle = oracle_sdm();
    let net = report.sdm();
    let band = (oracle * 4.0).max(2.0);
    eprintln!("SDM: oracle {oracle:.3}, net {net:.3}, band {band:.3}");
    assert!(
        net <= band,
        "net SDM {net:.3} outside the oracle band {band:.3} \
         (oracle {oracle:.3}; accuracy {:.2})",
        report.accuracy()
    );

    // And the survivors genuinely converged: most nodes know their half.
    let accuracy = report.accuracy();
    assert!(
        accuracy >= 0.6,
        "accuracy {accuracy} too low after crash/restart + loss (SDM {net:.3})"
    );
}
