//! Integration: churn (§3.3, §5.3.3, §5.3.4) at reduced scale.
//!
//! Asserts the qualitative results of Figs. 6(c) and 6(d): under
//! attribute-correlated churn the ordering algorithms degrade and cannot
//! recover, the ranking algorithm recovers once a burst stops, and the
//! sliding window bounds the long-run SDM growth under sustained churn.

use dslice::prelude::*;
use dslice::sim::churn::ChurnSchedule;

fn config(seed: u64) -> SimConfig {
    SimConfig {
        n: 600,
        view_size: 10,
        partition: Partition::equal(10).unwrap(),
        seed,
        ..SimConfig::default()
    }
}

fn burst_churn(stop_after: usize) -> Box<CorrelatedChurn> {
    Box::new(CorrelatedChurn::new(
        ChurnSchedule {
            rate: 0.002,
            period: 1,
            stop_after: Some(stop_after),
        },
        1.0,
    ))
}

#[test]
fn ranking_recovers_after_a_correlated_burst() {
    // Fig. 6(c): burst for 100 cycles, then quiet. After the burst, the
    // ranking SDM must resume decreasing.
    let record = Engine::new(config(31), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(burst_churn(100))
        .run(400);
    let at_burst_end = record.cycles[99].sdm;
    let final_sdm = record.final_sdm().unwrap();
    assert!(
        final_sdm < at_burst_end / 2.0,
        "ranking must recover after the burst: {at_burst_end} -> {final_sdm}"
    );
}

#[test]
fn ordering_cannot_recover_from_a_correlated_burst() {
    // Fig. 6(c): the ordering SDM "gets stuck" — the drained low random
    // values cannot be regenerated, so the post-burst SDM stays at or above
    // a floor well above the ranking algorithm's.
    let ordering = Engine::new(config(32), ProtocolKind::Jk)
        .unwrap()
        .with_churn(burst_churn(100))
        .run(400);
    let ranking = Engine::new(config(32), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(burst_churn(100))
        .run(400);
    let o = ordering.final_sdm().unwrap();
    let r = ranking.final_sdm().unwrap();
    assert!(
        o > r * 2.0,
        "ordering must end far above ranking after a correlated burst: {o} vs {r}"
    );
}

#[test]
fn uncorrelated_churn_is_benign_for_ranking() {
    // §3.3's "easier case": leavers uniform, joiners from the same
    // distribution — the ranking estimates stay calibrated.
    let quiet = Engine::new(config(33), ProtocolKind::Ranking)
        .unwrap()
        .run(300);
    let churned = Engine::new(config(33), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(UncorrelatedChurn::new(
            ChurnSchedule {
                rate: 0.002,
                period: 1,
                stop_after: None,
            },
            AttributeDistribution::default(),
        )))
        .run(300);
    let q = quiet.final_sdm().unwrap();
    let c = churned.final_sdm().unwrap();
    // Joining nodes are always catching up, so some penalty is expected —
    // but bounded, not runaway.
    assert!(
        c < q * 6.0 + 60.0,
        "uncorrelated churn must stay benign: quiet {q} vs churned {c}"
    );
}

#[test]
fn sliding_window_bounds_sdm_growth_under_sustained_churn() {
    // Fig. 6(d): under sustained correlated churn, plain ranking's frozen
    // history eventually biases estimates; the sliding window forgets it.
    let sustained = || {
        Box::new(CorrelatedChurn::new(
            ChurnSchedule {
                rate: 0.005,
                period: 5,
                stop_after: None,
            },
            1.0,
        ))
    };
    let plain = Engine::new(config(34), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(sustained())
        .run(600);
    let window = Engine::new(config(34), ProtocolKind::SlidingRanking { window: 600 })
        .unwrap()
        .with_churn(sustained())
        .run(600);

    let tail = |r: &RunRecord| -> f64 {
        let t: Vec<f64> = r.cycles[550..].iter().map(|c| c.sdm).collect();
        t.iter().sum::<f64>() / t.len() as f64
    };
    let p = tail(&plain);
    let w = tail(&window);
    assert!(
        w < p,
        "sliding window must end below plain ranking under sustained churn: {w} vs {p}"
    );
}

#[test]
fn population_size_is_conserved_under_symmetric_churn() {
    let mut engine = Engine::new(config(35), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(burst_churn(50));
    let record = engine.run(80);
    assert_eq!(engine.population(), 600);
    let left: usize = record.cycles.iter().map(|c| c.left).sum();
    let joined: usize = record.cycles.iter().map(|c| c.joined).sum();
    assert_eq!(left, joined);
    assert!(left > 0, "churn actually happened");
}

#[test]
fn views_never_reference_departed_nodes_after_a_cycle() {
    let mut engine = Engine::new(config(36), ProtocolKind::ModJk)
        .unwrap()
        .with_churn(burst_churn(60));
    for _ in 0..60 {
        engine.step();
        let alive: std::collections::HashSet<u64> = engine
            .snapshot()
            .iter()
            .map(|(id, _, _)| id.as_u64())
            .collect();
        for (owner, view_ids) in engine.debug_views() {
            for id in view_ids {
                assert!(
                    alive.contains(&id),
                    "node {owner} still references departed node {id}"
                );
            }
        }
    }
}
