//! Integration: realistic session churn and mass arrival/departure.
//!
//! Extends the paper's two churn scenarios (§5.3.3) with the Weibull
//! session model its own reference \[17\] measures, plus flash crowds —
//! and verifies the mechanism behind Fig. 6(c) directly: correlated churn
//! skews the ordering algorithm's random-value multiset away from
//! uniformity (detected by a KS test), which is why no amount of further
//! sorting can repair its slice assignment.

use dslice::analysis::{ks_statistic, ks_test};
use dslice::prelude::*;
use dslice::sim::{ChurnSchedule, FlashCrowd, SessionChurn, WeibullSessions};

fn config(n: usize, slices: usize, seed: u64) -> SimConfig {
    SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(slices).unwrap(),
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn sliding_ranking_stays_accurate_under_session_churn() {
    let churn = SessionChurn::new(
        WeibullSessions::heavy_tailed(150.0),
        AttributeDistribution::default(),
    )
    .uptime_attribute();
    let mut engine = Engine::new(
        config(600, 5, 81),
        ProtocolKind::SlidingRanking { window: 400 },
    )
    .unwrap()
    .with_churn(Box::new(churn));
    let record = engine.run(300);

    // Population is stationary under the replacement model.
    assert_eq!(engine.population(), 600);
    let total_left: usize = record.cycles.iter().map(|c| c.left).sum();
    let total_joined: usize = record.cycles.iter().map(|c| c.joined).sum();
    assert_eq!(total_left, total_joined);
    assert!(
        total_left > 100,
        "heavy-tailed sessions must churn the population"
    );

    // Accuracy holds despite the fully-correlated churn.
    assert!(
        engine.accuracy() > 0.6,
        "accuracy {:.3} collapsed under session churn",
        engine.accuracy()
    );
}

#[test]
fn flash_crowd_join_dips_then_recovers() {
    let crowd = FlashCrowd::joining(60, 0.5, AttributeDistribution::default());
    let mut engine = Engine::new(config(500, 5, 83), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(crowd));

    // Converge first.
    for _ in 0..59 {
        engine.step();
    }
    let before = engine.accuracy();
    assert!(
        before > 0.75,
        "should be converged before the crowd: {before}"
    );

    // The crowd arrives: 250 strangers with no samples.
    engine.step();
    assert_eq!(engine.population(), 750);
    let at_crowd = engine.accuracy();
    assert!(
        at_crowd < before,
        "a 50% join burst must dent accuracy ({before} -> {at_crowd})"
    );

    // Recovery: newcomers estimate their ranks; incumbents re-rank.
    for _ in 0..150 {
        engine.step();
    }
    let after = engine.accuracy();
    assert!(
        after > before - 0.05,
        "accuracy failed to recover: {before} -> {at_crowd} -> {after}"
    );
}

#[test]
fn mass_departure_does_not_wedge_the_overlay() {
    let crowd = FlashCrowd::leaving(40, 0.4);
    let mut engine = Engine::new(config(500, 4, 85), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(crowd));
    let record = engine.run(160);
    assert_eq!(engine.population(), 300);
    let left: usize = record.cycles.iter().map(|c| c.left).sum();
    assert_eq!(left, 200);
    // Survivors keep slicing correctly after losing 40% of the network.
    assert!(
        engine.accuracy() > 0.8,
        "post-departure accuracy {:.3}",
        engine.accuracy()
    );
}

#[test]
fn correlated_churn_skews_ordering_random_values() {
    // The Fig. 6(c) mechanism. After a long attribute-correlated burst, the
    // leavers (lowest attributes) drag the *small* random values out of the
    // system while joiners draw fresh uniform values — the surviving
    // multiset stops looking uniform, so slice lookups via `r_i` are
    // permanently biased.
    let schedule = ChurnSchedule {
        rate: 0.01,
        period: 1,
        stop_after: Some(150),
    };
    let mut engine = Engine::new(config(800, 10, 87), ProtocolKind::ModJk)
        .unwrap()
        .with_churn(Box::new(CorrelatedChurn::new(schedule, 1.0)));
    engine.run(200);

    let survivors: Vec<f64> = engine.snapshot().iter().map(|&(_, _, r)| r).collect();
    let outcome = ks_test(&survivors, 0.01);
    assert!(
        outcome.rejected,
        "random values should be skewed after correlated churn: {outcome:?}"
    );

    // Control: the same run without churn keeps a uniform multiset (swaps
    // permute values, never create or destroy them).
    let mut control = Engine::new(config(800, 10, 87), ProtocolKind::ModJk).unwrap();
    control.run(200);
    let values: Vec<f64> = control.snapshot().iter().map(|&(_, _, r)| r).collect();
    let d = ks_statistic(&values);
    let outcome = ks_test(&values, 0.01);
    assert!(
        !outcome.rejected,
        "static ordering run must keep its uniform draw (D = {d})"
    );
}

#[test]
fn session_churn_without_uptime_is_gentler_on_ranking() {
    // Uncorrelated joiner attributes: plain ranking copes without a window.
    let churn = SessionChurn::new(
        WeibullSessions::heavy_tailed(150.0),
        AttributeDistribution::default(),
    );
    let mut engine = Engine::new(config(600, 5, 89), ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(churn));
    engine.run(250);
    assert!(
        engine.accuracy() > 0.6,
        "uncorrelated session churn accuracy {:.3}",
        engine.accuracy()
    );
}
