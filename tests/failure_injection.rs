//! Integration: failure injection — message loss.
//!
//! Gossip protocols are supposed to tolerate lost messages by design (the
//! paper's model does not even bother to assume reliable channels for the
//! one-way `UPD` traffic). These tests quantify that: both protocol
//! families must still converge under substantial uniform message loss,
//! degrading gracefully rather than collapsing.

use dslice::prelude::*;

fn config(seed: u64, loss_rate: f64) -> SimConfig {
    SimConfig {
        n: 400,
        view_size: 10,
        partition: Partition::equal(8).unwrap(),
        loss_rate,
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn ranking_converges_under_20_percent_loss() {
    let record = Engine::new(config(51, 0.2), ProtocolKind::Ranking)
        .unwrap()
        .run(200);
    let first = record.cycles[0].sdm;
    let last = record.final_sdm().unwrap();
    assert!(
        last < first / 4.0,
        "ranking under 20% loss must still converge: {first} -> {last}"
    );
    let dropped: u64 = record.cycles.iter().map(|c| c.dropped_messages).sum();
    assert!(dropped > 0, "loss was actually injected");
}

#[test]
fn ordering_converges_under_20_percent_loss() {
    let mut engine = Engine::new(config(52, 0.2), ProtocolKind::ModJk).unwrap();
    let record = engine.run(250);
    let first = record.cycles[0].sdm;
    let last = record.final_sdm().unwrap();
    assert!(
        last < first / 4.0,
        "mod-JK under 20% loss must still converge: {first} -> {last}"
    );
    // Loss never corrupts the value multiset (a lost proposal is a no-op).
    let mut values: Vec<f64> = engine.snapshot().iter().map(|&(_, _, r)| r).collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values.dedup_by(|a, b| a == b);
    assert_eq!(values.len(), 400, "all 400 distinct values survive");
}

#[test]
fn loss_degrades_convergence_monotonically() {
    let auc = |loss: f64| {
        let record = Engine::new(config(53, loss), ProtocolKind::Ranking)
            .unwrap()
            .run(100);
        record.cycles.iter().map(|c| c.sdm).sum::<f64>()
    };
    let lossless = auc(0.0);
    let heavy = auc(0.5);
    // Heavy loss must cost something, but the protocol still functions.
    assert!(
        heavy > lossless * 0.8,
        "loss should not accelerate convergence"
    );
    let record = Engine::new(config(53, 0.5), ProtocolKind::Ranking)
        .unwrap()
        .run(200);
    assert!(
        record.final_sdm().unwrap() < record.cycles[0].sdm / 2.0,
        "even 50% loss must not prevent convergence"
    );
}

#[test]
fn total_loss_stalls_message_driven_progress_but_not_view_sampling() {
    // With 100% protocol-message loss the ranking algorithm still converges:
    // its primary sample stream is the view scan (Fig. 5 lines 5–11), which
    // rides on the membership layer, not on UPD messages.
    let record = Engine::new(config(54, 1.0), ProtocolKind::Ranking)
        .unwrap()
        .run(150);
    assert!(
        record.final_sdm().unwrap() < record.cycles[0].sdm / 2.0,
        "view-scan sampling alone must still drive convergence"
    );
    // The ordering algorithms, by contrast, make *no* progress: every swap
    // proposal is lost, so the SDM never leaves its initial level.
    let record = Engine::new(config(55, 1.0), ProtocolKind::ModJk)
        .unwrap()
        .run(50);
    let first = record.cycles[0].sdm;
    let last = record.final_sdm().unwrap();
    assert!(
        last > first * 0.8,
        "ordering with all proposals lost cannot converge: {first} -> {last}"
    );
    let applied: u64 = record.cycles.iter().map(|c| c.events.swaps_applied).sum();
    assert_eq!(
        applied, 0,
        "no swap can complete when every message is lost"
    );
}
