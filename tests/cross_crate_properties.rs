//! Property-based integration tests across the whole stack.
//!
//! Randomized configurations (population, slices, view size, protocol,
//! concurrency) must never violate the structural invariants: estimates are
//! probabilities, view invariants hold, the random-value multiset is
//! conserved by ordering runs, and determinism holds for every
//! configuration.

use dslice::prelude::*;
use proptest::prelude::*;

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Jk),
        Just(ProtocolKind::ModJk),
        Just(ProtocolKind::Ranking),
        (64usize..512).prop_map(|w| ProtocolKind::SlidingRanking { window: w }),
    ]
}

fn arb_concurrency() -> impl Strategy<Value = Concurrency> {
    prop_oneof![
        Just(Concurrency::None),
        Just(Concurrency::Half),
        Just(Concurrency::Full),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_invariants_hold_for_random_configs(
        n in 20usize..150,
        slices in 1usize..12,
        view_size in 2usize..16,
        seed in 0u64..1000,
        kind in arb_protocol(),
        concurrency in arb_concurrency(),
        cycles in 3usize..25,
    ) {
        let cfg = SimConfig {
            n,
            view_size,
            partition: Partition::equal(slices).unwrap(),
            concurrency,
            seed,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(cfg, kind).unwrap();
        let record = engine.run(cycles);

        // Population unchanged without churn.
        prop_assert_eq!(engine.population(), n);
        // Estimates are probabilities (or the initial (0,1] draw).
        for (_, _, est) in engine.snapshot() {
            prop_assert!((0.0..=1.0).contains(&est), "estimate {est}");
        }
        // SDM and GDM are nonnegative everywhere.
        for c in &record.cycles {
            prop_assert!(c.sdm >= 0.0 && c.gdm >= 0.0);
            prop_assert_eq!(c.n, n);
        }
        // Views stay structurally valid.
        for (owner, ids) in engine.debug_views() {
            let unique: std::collections::HashSet<_> = ids.iter().collect();
            prop_assert_eq!(unique.len(), ids.len(), "duplicate view entries");
            prop_assert!(!ids.contains(&owner), "self-pointer in view");
            prop_assert!(ids.len() <= view_size, "view overflow");
        }
    }

    #[test]
    fn ordering_conserves_values_under_any_concurrency_when_atomic(
        n in 20usize..120,
        seed in 0u64..500,
        kind in prop_oneof![Just(ProtocolKind::Jk), Just(ProtocolKind::ModJk)],
    ) {
        // Under the atomic model (Concurrency::None) swaps are exact
        // exchanges: the sorted multiset of random values is invariant.
        let cfg = SimConfig {
            n,
            view_size: 8,
            partition: Partition::equal(4).unwrap(),
            seed,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(cfg, kind).unwrap();
        let mut before: Vec<f64> =
            engine.snapshot().iter().map(|&(_, _, r)| r).collect();
        engine.run(20);
        let mut after: Vec<f64> =
            engine.snapshot().iter().map(|&(_, _, r)| r).collect();
        before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(before, after);
    }

    #[test]
    fn runs_are_deterministic(
        n in 20usize..100,
        seed in 0u64..500,
        kind in arb_protocol(),
        concurrency in arb_concurrency(),
    ) {
        let cfg = SimConfig {
            n,
            view_size: 6,
            partition: Partition::equal(5).unwrap(),
            concurrency,
            seed,
            ..SimConfig::default()
        };
        let a = Engine::new(cfg.clone(), kind).unwrap().run(8);
        let b = Engine::new(cfg, kind).unwrap().run(8);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn churned_engines_never_panic_and_stay_consistent(
        n in 30usize..120,
        seed in 0u64..300,
        rate in 0.001f64..0.05,
        correlated in any::<bool>(),
    ) {
        let schedule = dslice::sim::churn::ChurnSchedule {
            rate,
            period: 2,
            stop_after: None,
        };
        let churn: Box<dyn ChurnModel> = if correlated {
            Box::new(CorrelatedChurn::new(schedule, 1.0))
        } else {
            Box::new(UncorrelatedChurn::new(
                schedule,
                AttributeDistribution::default(),
            ))
        };
        let cfg = SimConfig {
            n,
            view_size: 6,
            partition: Partition::equal(4).unwrap(),
            seed,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking)
            .unwrap()
            .with_churn(churn);
        let record = engine.run(15);
        // Symmetric churn conserves the population.
        prop_assert_eq!(engine.population(), n);
        for c in &record.cycles {
            prop_assert_eq!(c.left, c.joined);
        }
    }
}
