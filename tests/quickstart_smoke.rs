//! Workspace smoke test: the `dslice` crate-docs quickstart, exercised as
//! real code so the documented entry path can never silently rot.
//!
//! Mirrors the doc example — 1 000 nodes sliced into 10 equal groups by a
//! bandwidth-like attribute — and asserts the same convergence claim the
//! docs make, plus basic sanity of the final assignment.

use dslice::prelude::*;

#[test]
fn quickstart_converges_1000_nodes_10_slices() {
    let cfg = SimConfig {
        n: 1000,
        view_size: 12,
        partition: Partition::equal(10).unwrap(),
        seed: 7,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    let record = engine.run(60);

    // The claim made in the crate docs.
    let final_sdm = record.final_sdm().unwrap();
    let initial_sdm = record.cycles[0].sdm;
    assert!(
        final_sdm < initial_sdm / 4.0,
        "quickstart did not converge: sdm {initial_sdm} -> {final_sdm}"
    );

    // And basic shape: one stats row per cycle, disorder is a finite
    // non-negative quantity throughout.
    assert_eq!(record.cycles.len(), 60);
    for cycle in &record.cycles {
        assert!(cycle.sdm.is_finite() && cycle.sdm >= 0.0);
    }
}
