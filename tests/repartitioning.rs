//! Integration: re-slicing a converged network at zero protocol cost.
//!
//! The slicing service exists so slices "can be allocated to specific
//! applications later on" (§1.1) — and later, re-allocated. Because both
//! protocol families estimate a partition-independent quantity (the
//! normalized rank), installing a new partitioning is a pure lookup change:
//! accuracy under the new slices is immediately what the estimates support,
//! with no transient and no extra messages.

use dslice::prelude::*;

fn converged_engine(kind: ProtocolKind, seed: u64) -> Engine {
    let cfg = SimConfig {
        n: 600,
        view_size: 10,
        partition: Partition::equal(5).unwrap(),
        seed,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, kind).unwrap();
    engine.run(120);
    engine
}

#[test]
fn ranking_reslices_instantly() {
    let mut engine = converged_engine(ProtocolKind::Ranking, 201);
    let before = engine.accuracy();
    assert!(before > 0.8, "not converged: {before}");

    // The platform re-allocates: 5 equal slices → 60/30/10 split.
    engine.set_partition(Partition::from_fractions(&[0.6, 0.3, 0.1]).unwrap());

    // Accuracy under the *new* partition, with zero additional cycles.
    let immediately = engine.accuracy();
    assert!(
        immediately > before - 0.1,
        "re-slicing should be free: {before} -> {immediately}"
    );
    // Histograms follow the new fractions.
    let hist = engine.slice_histogram();
    assert_eq!(hist.len(), 3);
    assert_eq!(hist.iter().sum::<usize>(), 600);
    assert!(
        (hist[0] as f64 - 360.0).abs() < 50.0,
        "bottom slice believed population {} far from 360",
        hist[0]
    );
}

#[test]
fn ordering_reslices_instantly_too() {
    // Random values are also partition-independent; the ordering family's
    // re-slicing accuracy is bounded by its usual uniformity floor, not by
    // any transient.
    let mut engine = converged_engine(ProtocolKind::ModJk, 203);
    let before = engine.accuracy();
    engine.set_partition(Partition::equal(2).unwrap());
    let immediately = engine.accuracy();
    assert!(
        immediately >= before - 0.1,
        "coarser slices cannot hurt a sorted run: {before} -> {immediately}"
    );
    assert!(immediately > 0.85);
}

#[test]
fn convergence_continues_under_the_new_partition() {
    // After re-slicing, the ranking protocol's boundary targeting now aims
    // at the *new* boundaries and accuracy keeps improving.
    let mut engine = converged_engine(ProtocolKind::Ranking, 205);
    engine.set_partition(Partition::equal(20).unwrap());
    let at_switch = engine.accuracy();
    engine.run(150);
    let later = engine.accuracy();
    assert!(
        later > at_switch,
        "post-repartition convergence stalled: {at_switch} -> {later}"
    );
}

#[test]
fn repartition_applies_to_future_joiners() {
    use dslice::sim::ChurnSchedule;
    let mut engine = converged_engine(ProtocolKind::Ranking, 207);
    engine.set_partition(Partition::equal(4).unwrap());
    // Churn in some joiners: they must slice against the new partition.
    let schedule = ChurnSchedule {
        rate: 0.05,
        period: 1,
        stop_after: Some(engine.cycle() + 3),
    };
    let mut engine = engine.with_churn(Box::new(UncorrelatedChurn::new(
        schedule,
        AttributeDistribution::default(),
    )));
    engine.run(40);
    assert_eq!(engine.partition().len(), 4);
    let hist = engine.slice_histogram();
    assert_eq!(hist.len(), 4);
    assert_eq!(hist.iter().sum::<usize>(), engine.population());
}
