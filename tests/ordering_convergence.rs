//! Integration: the ordering algorithms (§4) at reduced scale.
//!
//! Asserts the qualitative results of Fig. 4(a) and 4(b): mod-JK converges
//! faster than JK; the GDM reaches zero (total order achieved) while the
//! SDM plateaus at the accuracy floor of the initial random values; both
//! algorithms share that floor because they sort the same value multiset.

use dslice::prelude::*;

fn config(n: usize, slices: usize, seed: u64) -> SimConfig {
    SimConfig {
        n,
        view_size: 12,
        partition: Partition::equal(slices).unwrap(),
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn gdm_reaches_zero_while_sdm_plateaus() {
    // Fig. 4(a): the ordering algorithm totally orders the random values,
    // but slice assignment stays imperfect.
    // The phased cycle model propagates swaps once per cycle (no
    // within-cycle visibility), so total order takes more cycles than the
    // paper's interleaved PeerSim schedule — the budget reflects that.
    let mut engine = Engine::new(config(400, 20, 11), ProtocolKind::ModJk).unwrap();
    let record = engine.run(400);
    assert_eq!(
        engine.gdm(),
        0.0,
        "mod-JK must totally order the random values"
    );
    // SDM floor: with 400 uniform values over 20 slices, a perfect
    // assignment has essentially zero probability (§4.4). The plateau is
    // reached — the last 50 cycles do not improve the SDM.
    let late: Vec<f64> = record.cycles[350..].iter().map(|c| c.sdm).collect();
    let spread = late.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - late.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(spread, 0.0, "SDM must have plateaued after GDM hit 0");
}

#[test]
fn mod_jk_converges_faster_than_jk() {
    // Fig. 4(b): at matched cycles mid-convergence, mod-JK's SDM is lower.
    let jk = Engine::new(config(600, 10, 3), ProtocolKind::Jk)
        .unwrap()
        .run(60);
    let modjk = Engine::new(config(600, 10, 3), ProtocolKind::ModJk)
        .unwrap()
        .run(60);

    // Compare the area under the SDM curve over the convergent phase — a
    // robust "speed" summary that does not depend on a single cycle.
    let auc = |r: &RunRecord| -> f64 { r.cycles.iter().map(|c| c.sdm).sum() };
    let jk_auc = auc(&jk);
    let modjk_auc = auc(&modjk);
    assert!(
        modjk_auc < jk_auc,
        "mod-JK must converge faster: AUC {modjk_auc} vs JK {jk_auc}"
    );
}

#[test]
fn both_ordering_algorithms_share_the_same_floor() {
    // Same seed → same initial random values → same final SDM once both
    // have fully sorted (§4.5.1: "both converge to the same SDM").
    let jk = Engine::new(config(300, 10, 5), ProtocolKind::Jk)
        .unwrap()
        .run(250);
    let modjk = Engine::new(config(300, 10, 5), ProtocolKind::ModJk)
        .unwrap()
        .run(250);
    let jk_final = jk.final_sdm().unwrap();
    let modjk_final = modjk.final_sdm().unwrap();
    assert_eq!(
        jk_final, modjk_final,
        "identical value multisets must yield identical floors"
    );
}

#[test]
fn convergence_scales_with_view_size() {
    // Larger views find misplaced partners sooner.
    let run = |view_size: usize| {
        let cfg = SimConfig {
            view_size,
            ..config(400, 10, 9)
        };
        Engine::new(cfg, ProtocolKind::ModJk).unwrap().run(40)
    };
    let small = run(5);
    let large = run(20);
    let auc = |r: &RunRecord| -> f64 { r.cycles.iter().map(|c| c.sdm).sum() };
    assert!(
        auc(&large) < auc(&small),
        "view 20 should outpace view 5: {} vs {}",
        auc(&large),
        auc(&small)
    );
}

#[test]
fn ordering_conserves_the_random_value_multiset() {
    // Under the atomic cycle model swaps are lossless: the multiset of
    // random values never changes (values only move between nodes).
    let cfg = config(200, 10, 13);
    let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
    let mut before: Vec<f64> = engine.snapshot().iter().map(|&(_, _, r)| r).collect();
    before.sort_by(|a, b| a.partial_cmp(b).unwrap());
    engine.run(50);
    let mut after: Vec<f64> = engine.snapshot().iter().map(|&(_, _, r)| r).collect();
    after.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(before, after, "swap-based sorting must conserve the values");
}
