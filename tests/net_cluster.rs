//! Integration: the tokio runtime end-to-end.
//!
//! The same protocol code that runs in the simulator runs here over real
//! TCP sockets with genuine concurrency. A small cluster must converge to a
//! mostly-correct slice assignment within a few hundred gossip periods —
//! and keep gossiping through dead peers, crashes, and refused connections.

use dslice::prelude::*;
use std::time::Duration;

/// The gossip period every cluster in this file runs at. All deadlines are
/// derived from it (`periods(k)`), so retuning the period retunes the whole
/// file coherently instead of silently invalidating hard-coded sleeps.
const PERIOD: Duration = Duration::from_millis(10);

/// `k` gossip periods of wall-clock time.
fn periods(k: u32) -> Duration {
    PERIOD * k
}

fn attrs(n: usize) -> Vec<Attribute> {
    (0..n)
        .map(|i| Attribute::new(((i * 37) % n) as f64).unwrap())
        .collect()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn ranking_cluster_converges_over_tcp() {
    let cfg = ClusterConfig {
        view_size: 8,
        period: PERIOD,
        bootstrap_degree: 5,
        seed: 404,
        ..ClusterConfig::new(
            attrs(20),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(120)).await;
    let report = cluster.shutdown().await;
    let accuracy = report.accuracy();
    assert!(
        accuracy >= 0.7,
        "cluster accuracy {accuracy} too low (sdm = {})",
        report.sdm()
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sliding_ranking_cluster_runs_over_tcp() {
    let cfg = ClusterConfig {
        view_size: 6,
        period: PERIOD,
        bootstrap_degree: 4,
        seed: 405,
        ..ClusterConfig::new(
            attrs(12),
            Partition::equal(3).unwrap(),
            ProtocolKind::SlidingRanking { window: 256 },
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(90)).await;
    let report = cluster.shutdown().await;
    // Everyone made progress and estimates are sane probabilities.
    for node in &report.nodes {
        assert!(node.ticks > 20, "node {} barely ticked", node.id);
        assert!((0.0..=1.0).contains(&node.estimate));
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn cluster_survives_join_and_leave() {
    // Dynamic membership over real sockets: kill two nodes mid-run, join
    // two newcomers with extreme attributes, and verify the survivors and
    // newcomers still converge to sane estimates.
    let cfg = ClusterConfig {
        view_size: 6,
        period: PERIOD,
        bootstrap_degree: 4,
        seed: 410,
        ..ClusterConfig::new(
            attrs(14),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(30)).await;

    // Abrupt departures.
    let victims: Vec<NodeId> = cluster.node_ids().into_iter().take(2).collect();
    for v in victims {
        assert!(cluster.kill_node(v).await.is_some());
    }
    assert!(cluster.kill_node(NodeId::new(9999)).await.is_none());

    // Two joiners: one at the very bottom, one at the very top.
    let low = cluster
        .join_node(Attribute::new(-100.0).unwrap())
        .await
        .unwrap();
    let high = cluster
        .join_node(Attribute::new(1e6).unwrap())
        .await
        .unwrap();
    assert_eq!(cluster.len(), 14);

    cluster.run_for(periods(90)).await;
    let report = cluster.shutdown().await;
    let part = Partition::equal(2).unwrap();
    let low_snap = report.nodes.iter().find(|s| s.id == low).unwrap();
    let high_snap = report.nodes.iter().find(|s| s.id == high).unwrap();
    assert!(
        low_snap.ticks > 10,
        "joiner {low} integrated into the overlay"
    );
    assert_eq!(
        part.slice_of(low_snap.estimate).as_usize(),
        0,
        "bottom joiner must learn it is in the low slice (estimate {})",
        low_snap.estimate
    );
    assert_eq!(
        part.slice_of(high_snap.estimate).as_usize(),
        1,
        "top joiner must learn it is in the high slice (estimate {})",
        high_snap.estimate
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn every_sampler_substrate_works_over_tcp() {
    // The §4.3.1 substrates are interchangeable over real sockets too:
    // the same ranking cluster converges on Cyclon, Newscast and Lpbcast.
    for (i, sampler) in [
        SamplerKind::Cyclon,
        SamplerKind::Newscast,
        SamplerKind::Lpbcast,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = ClusterConfig {
            view_size: 8,
            period: PERIOD,
            bootstrap_degree: 5,
            seed: 420 + i as u64,
            sampler,
            ..ClusterConfig::new(
                attrs(16),
                Partition::equal(2).unwrap(),
                ProtocolKind::Ranking,
            )
        };
        let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
        cluster.run_for(periods(100)).await;
        let report = cluster.shutdown().await;
        for node in &report.nodes {
            assert!(
                node.ticks > 20,
                "{sampler}: node {} barely ticked — overlay failed to form",
                node.id
            );
        }
        let accuracy = report.accuracy();
        assert!(
            accuracy >= 0.6,
            "{sampler}: accuracy {accuracy} too low over TCP"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn ranking_tolerates_wire_loss_and_delay() {
    // The simulator's loss/latency findings, checked over real sockets:
    // ranking converges through 20% message loss plus 0–30 ms extra delay
    // (3× the gossip period), because one-way attribute samples cannot go
    // stale and need no reliability.
    let cfg = ClusterConfig {
        view_size: 8,
        period: PERIOD,
        bootstrap_degree: 5,
        seed: 430,
        faults: FaultPlan {
            loss: 0.2,
            delay: Some((Duration::ZERO, periods(3))),
        },
        ..ClusterConfig::new(
            attrs(16),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(150)).await;
    let report = cluster.shutdown().await;
    let dropped: u64 = report.nodes.iter().map(|s| s.dropped).sum();
    assert!(dropped > 0, "the fault plan must actually drop messages");
    let accuracy = report.accuracy();
    assert!(
        accuracy >= 0.6,
        "accuracy {accuracy} under 20% loss + 3-period delays (dropped {dropped})"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn mod_jk_cluster_improves_sdm_over_tcp() {
    // The ordering algorithm faces real concurrency here (the paper's
    // §4.5.2 staleness for free). It must still substantially reduce
    // disorder.
    let cfg = ClusterConfig {
        view_size: 8,
        period: PERIOD,
        bootstrap_degree: 5,
        seed: 406,
        ..ClusterConfig::new(attrs(16), Partition::equal(4).unwrap(), ProtocolKind::ModJk)
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    // Let the overlay form before measuring the baseline.
    cluster.run_for(periods(10)).await;
    let before = cluster.live_sdm();
    cluster.run_for(periods(120)).await;
    let report = cluster.shutdown().await;
    let after = report.sdm();
    assert!(
        after <= before,
        "ordering over TCP should not increase disorder: {before} -> {after}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn dead_peer_is_evicted_without_stalling_gossip() {
    // An abrupt departure must surface as strikes on the outbound path and
    // end in eviction — and the survivors' tickers must never stall while
    // the link layer works through its retries.
    let cfg = ClusterConfig {
        view_size: 6,
        period: PERIOD,
        bootstrap_degree: 5,
        seed: 440,
        ..ClusterConfig::new(
            attrs(8),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(30)).await;

    let victim = cluster.node_ids()[0];
    cluster.kill_node(victim).await.unwrap();
    let ticks_at_kill: u64 = cluster.snapshots().iter().map(|s| s.ticks).sum();

    cluster.run_for(periods(60)).await;
    let report = cluster.shutdown().await;

    // Gossip went on: the survivors kept ticking at roughly one tick per
    // period each (allow half rate for scheduling noise on a loaded box).
    let ticks_at_end: u64 = report.nodes.iter().map(|s| s.ticks).sum();
    let survivors = report.nodes.len() as u64;
    assert_eq!(survivors, 7);
    assert!(
        ticks_at_end - ticks_at_kill >= survivors * 30,
        "tickers stalled while peers retried the dead node: \
         {ticks_at_kill} -> {ticks_at_end} over 60 periods"
    );

    // The failure was observed and punished: someone exhausted their
    // attempts against the dead address and evicted it.
    assert!(
        report.totals.send_failures > 0,
        "no send failures recorded against a killed node"
    );
    assert!(
        report.totals.evictions > 0,
        "dead peer was never evicted (failures: {})",
        report.totals.send_failures
    );
    // A departure is not a crash: nothing panicked, nothing restarted.
    assert_eq!(report.totals.crashes, 0);
    assert_eq!(report.totals.restarts, 0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn crashed_node_is_reaped_and_restarted_by_policy() {
    // Fault injection: node 0 panics after 5 ticks. The supervisor must
    // classify the exit as a crash (with the panic message), restart the
    // node after backoff, and the harness must end with a full population.
    let cfg = ClusterConfig {
        view_size: 6,
        period: PERIOD,
        bootstrap_degree: 4,
        seed: 450,
        die_after_ticks: Some((0, 5)),
        restart: RestartPolicy {
            backoff_base: PERIOD,
            backoff_cap: PERIOD * 4,
            ..RestartPolicy::default()
        },
        ..ClusterConfig::new(
            attrs(8),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(60)).await;
    let report = cluster.shutdown().await;

    let crash = report
        .exits
        .iter()
        .find(|e| matches!(e.kind, NodeExitKind::Crashed { .. }))
        .expect("the injected panic must be reaped as a crash");
    assert_eq!(crash.id, NodeId::new(0));
    let NodeExitKind::Crashed { reason } = &crash.kind else {
        unreachable!("matched above");
    };
    assert!(
        reason.contains("fault injection"),
        "panic message lost in classification: {reason:?}"
    );
    assert!(crash.restarted, "policy must restart the crashed node");
    assert!(report.totals.crashes >= 1);
    assert!(report.totals.restarts >= 1);
    // The restarted node (die_after_ticks cleared) survived to shutdown.
    assert_eq!(report.nodes.len(), 8, "exits: {:?}", report.exits);
    let revived = report
        .nodes
        .iter()
        .find(|s| s.id == NodeId::new(0))
        .expect("node 0 alive at shutdown");
    assert!(
        revived.ticks >= 5,
        "restarted node barely ran: {} ticks",
        revived.ticks
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn refusal_window_is_survived_and_reopened() {
    // A scripted listener-refusal window: peers see connection errors and
    // retry; the cluster neither stalls nor loses the node permanently —
    // after the window the listener rebinds the same address.
    let chaos = ChaosPlan::new()
        .at_ms(200)
        .refuse_for_ms(NodeId::new(5), 100);
    let cfg = ClusterConfig {
        view_size: 6,
        period: PERIOD,
        bootstrap_degree: 4,
        seed: 460,
        chaos,
        ..ClusterConfig::new(
            attrs(8),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(periods(70)).await;
    let report = cluster.shutdown().await;

    // The refused node itself never exited — gates fence the listener,
    // not the task.
    assert!(report.exits.is_empty(), "exits: {:?}", report.exits);
    assert_eq!(report.nodes.len(), 8);
    // Its ticker ran straight through the refusal window.
    let refused = report
        .nodes
        .iter()
        .find(|s| s.id == NodeId::new(5))
        .unwrap();
    assert!(
        refused.ticks > 50,
        "refused node stalled: {} ticks in 70 periods",
        refused.ticks
    );
    // Senders hit the closed listener and recorded the failures.
    assert!(
        report.totals.retries > 0,
        "refusal window produced no retries"
    );
}
