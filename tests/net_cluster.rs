//! Integration: the tokio runtime end-to-end.
//!
//! The same protocol code that runs in the simulator runs here over real
//! TCP sockets with genuine concurrency. A small cluster must converge to a
//! mostly-correct slice assignment within a few hundred gossip periods.

use dslice::prelude::*;
use std::time::Duration;

fn attrs(n: usize) -> Vec<Attribute> {
    (0..n)
        .map(|i| Attribute::new(((i * 37) % n) as f64).unwrap())
        .collect()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn ranking_cluster_converges_over_tcp() {
    let cfg = ClusterConfig {
        view_size: 8,
        period: Duration::from_millis(10),
        bootstrap_degree: 5,
        seed: 404,
        ..ClusterConfig::new(
            attrs(20),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(Duration::from_millis(1200)).await;
    let report = cluster.shutdown().await;
    let accuracy = report.accuracy();
    assert!(
        accuracy >= 0.7,
        "cluster accuracy {accuracy} too low (sdm = {})",
        report.sdm()
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sliding_ranking_cluster_runs_over_tcp() {
    let cfg = ClusterConfig {
        view_size: 6,
        period: Duration::from_millis(10),
        bootstrap_degree: 4,
        seed: 405,
        ..ClusterConfig::new(
            attrs(12),
            Partition::equal(3).unwrap(),
            ProtocolKind::SlidingRanking { window: 256 },
        )
    };
    let cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(Duration::from_millis(900)).await;
    let report = cluster.shutdown().await;
    // Everyone made progress and estimates are sane probabilities.
    for node in &report.nodes {
        assert!(node.ticks > 20, "node {} barely ticked", node.id);
        assert!((0.0..=1.0).contains(&node.estimate));
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn cluster_survives_join_and_leave() {
    // Dynamic membership over real sockets: kill two nodes mid-run, join
    // two newcomers with extreme attributes, and verify the survivors and
    // newcomers still converge to sane estimates.
    let cfg = ClusterConfig {
        view_size: 6,
        period: Duration::from_millis(10),
        bootstrap_degree: 4,
        seed: 410,
        ..ClusterConfig::new(
            attrs(14),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let mut cluster = LocalCluster::spawn(cfg.clone()).await.unwrap();
    cluster.run_for(Duration::from_millis(300)).await;

    // Abrupt departures.
    let victims: Vec<NodeId> = cluster.node_ids().into_iter().take(2).collect();
    for v in victims {
        assert!(cluster.kill_node(v).await.is_some());
    }
    assert!(cluster.kill_node(NodeId::new(9999)).await.is_none());

    // Two joiners: one at the very bottom, one at the very top.
    let low = cluster
        .join_node(&cfg, Attribute::new(-100.0).unwrap())
        .await
        .unwrap();
    let high = cluster
        .join_node(&cfg, Attribute::new(1e6).unwrap())
        .await
        .unwrap();
    assert_eq!(cluster.len(), 14);

    cluster.run_for(Duration::from_millis(900)).await;
    let report = cluster.shutdown().await;
    let part = Partition::equal(2).unwrap();
    let low_snap = report.nodes.iter().find(|s| s.id == low).unwrap();
    let high_snap = report.nodes.iter().find(|s| s.id == high).unwrap();
    assert!(
        low_snap.ticks > 10,
        "joiner {low} integrated into the overlay"
    );
    assert_eq!(
        part.slice_of(low_snap.estimate).as_usize(),
        0,
        "bottom joiner must learn it is in the low slice (estimate {})",
        low_snap.estimate
    );
    assert_eq!(
        part.slice_of(high_snap.estimate).as_usize(),
        1,
        "top joiner must learn it is in the high slice (estimate {})",
        high_snap.estimate
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn every_sampler_substrate_works_over_tcp() {
    // The §4.3.1 substrates are interchangeable over real sockets too:
    // the same ranking cluster converges on Cyclon, Newscast and Lpbcast.
    for (i, sampler) in [
        SamplerKind::Cyclon,
        SamplerKind::Newscast,
        SamplerKind::Lpbcast,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = ClusterConfig {
            view_size: 8,
            period: Duration::from_millis(10),
            bootstrap_degree: 5,
            seed: 420 + i as u64,
            sampler,
            ..ClusterConfig::new(
                attrs(16),
                Partition::equal(2).unwrap(),
                ProtocolKind::Ranking,
            )
        };
        let cluster = LocalCluster::spawn(cfg).await.unwrap();
        cluster.run_for(Duration::from_millis(1000)).await;
        let report = cluster.shutdown().await;
        for node in &report.nodes {
            assert!(
                node.ticks > 20,
                "{sampler}: node {} barely ticked — overlay failed to form",
                node.id
            );
        }
        let accuracy = report.accuracy();
        assert!(
            accuracy >= 0.6,
            "{sampler}: accuracy {accuracy} too low over TCP"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn ranking_tolerates_wire_loss_and_delay() {
    // The simulator's loss/latency findings, checked over real sockets:
    // ranking converges through 20% message loss plus 0–30 ms extra delay
    // (3× the gossip period), because one-way attribute samples cannot go
    // stale and need no reliability.
    use dslice::net::FaultPlan;
    use std::time::Duration as D;
    let cfg = ClusterConfig {
        view_size: 8,
        period: Duration::from_millis(10),
        bootstrap_degree: 5,
        seed: 430,
        faults: FaultPlan {
            loss: 0.2,
            delay: Some((D::from_millis(0), D::from_millis(30))),
        },
        ..ClusterConfig::new(
            attrs(16),
            Partition::equal(2).unwrap(),
            ProtocolKind::Ranking,
        )
    };
    let cluster = LocalCluster::spawn(cfg).await.unwrap();
    cluster.run_for(Duration::from_millis(1500)).await;
    let report = cluster.shutdown().await;
    let dropped: u64 = report.nodes.iter().map(|s| s.dropped).sum();
    assert!(dropped > 0, "the fault plan must actually drop messages");
    let accuracy = report.accuracy();
    assert!(
        accuracy >= 0.6,
        "accuracy {accuracy} under 20% loss + 3-period delays (dropped {dropped})"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn mod_jk_cluster_improves_sdm_over_tcp() {
    // The ordering algorithm faces real concurrency here (the paper's
    // §4.5.2 staleness for free). It must still substantially reduce
    // disorder.
    let cfg = ClusterConfig {
        view_size: 8,
        period: Duration::from_millis(10),
        bootstrap_degree: 5,
        seed: 406,
        ..ClusterConfig::new(attrs(16), Partition::equal(4).unwrap(), ProtocolKind::ModJk)
    };
    let cluster = LocalCluster::spawn(cfg).await.unwrap();
    // Let the overlay form before measuring the baseline.
    cluster.run_for(Duration::from_millis(100)).await;
    let before = cluster.live_sdm();
    cluster.run_for(Duration::from_millis(1200)).await;
    let report = cluster.shutdown().await;
    let after = report.sdm();
    assert!(
        after <= before,
        "ordering over TCP should not increase disorder: {before} -> {after}"
    );
}
