//! Golden determinism tests: the engine's headline contract.
//!
//! Identical `(config, protocol, churn, seed)` must yield identical runs,
//! **byte for byte** in the serialized [`RunRecord`] — and the shard count
//! must be invisible: with the membership, refresh *and* active phases all
//! sharded, `shards ∈ {2, 4, 8}` must reproduce the sequential run
//! (`shards = 1`) exactly, across every protocol family, every
//! peer-sampling substrate, and under churn, concurrency and latency. These
//! tests lock the contract down at the serialization boundary, where any
//! drift (a reordered float sum, a scheduling-dependent RNG draw, a
//! hash-ordered iteration, a batch-order-sensitive exchange) becomes a
//! visible diff.

use dslice::prelude::*;
use dslice::sim::churn::ChurnSchedule;

fn base_cfg(seed: u64, shards: usize) -> SimConfig {
    SimConfig {
        n: 200,
        view_size: 10,
        partition: Partition::equal(8).unwrap(),
        seed,
        shards,
        ..SimConfig::default()
    }
}

fn churned(schedule_rate: f64) -> Box<dyn ChurnModel> {
    Box::new(UncorrelatedChurn::new(
        ChurnSchedule {
            rate: schedule_rate,
            period: 2,
            stop_after: None,
        },
        AttributeDistribution::default(),
    ))
}

/// Runs `cycles` and returns the serialized record (the golden bytes).
fn golden(
    cfg: SimConfig,
    kind: ProtocolKind,
    churn: Option<Box<dyn ChurnModel>>,
    cycles: usize,
) -> String {
    let mut engine = Engine::new(cfg, kind).unwrap();
    if let Some(churn) = churn {
        engine = engine.with_churn(churn);
    }
    engine.run(cycles).to_json()
}

#[test]
fn same_inputs_twice_are_byte_identical() {
    for kind in [ProtocolKind::Ranking, ProtocolKind::Jk, ProtocolKind::ModJk] {
        let a = golden(base_cfg(42, 1), kind, Some(churned(0.05)), 25);
        let b = golden(base_cfg(42, 1), kind, Some(churned(0.05)), 25);
        assert_eq!(a, b, "{}: same inputs must reproduce exactly", kind.label());
        let c = golden(base_cfg(43, 1), kind, Some(churned(0.05)), 25);
        assert_ne!(a, c, "{}: a different seed must show", kind.label());
    }
}

#[test]
fn sharded_runs_match_sequential_for_every_protocol() {
    for kind in [ProtocolKind::Ranking, ProtocolKind::Jk, ProtocolKind::ModJk] {
        let sequential = golden(base_cfg(7, 1), kind, None, 20);
        let sharded = golden(base_cfg(7, 4), kind, None, 20);
        assert_eq!(
            sequential,
            sharded,
            "{}: shards=4 must be byte-identical to shards=1",
            kind.label()
        );
    }
}

#[test]
fn sharding_is_invisible_under_churn_concurrency_and_latency() {
    for kind in [ProtocolKind::Ranking, ProtocolKind::Jk, ProtocolKind::ModJk] {
        let cfg = |shards| {
            let mut cfg = base_cfg(1234, shards);
            cfg.concurrency = Concurrency::Half;
            cfg.latency = LatencyModel::Uniform { min: 0, max: 2 };
            cfg
        };
        let correlated = || -> Box<dyn ChurnModel> {
            Box::new(CorrelatedChurn::new(
                ChurnSchedule {
                    rate: 0.03,
                    period: 3,
                    stop_after: None,
                },
                1.0,
            ))
        };
        let sequential = golden(cfg(1), kind, Some(correlated()), 30);
        for shards in [2, 4, 8] {
            let sharded = golden(cfg(shards), kind, Some(correlated()), 30);
            assert_eq!(
                sequential,
                sharded,
                "{}: shards={shards} diverged under churn+concurrency+latency",
                kind.label()
            );
        }
    }
}

#[test]
fn metrics_cadence_preserves_shard_identity() {
    // A sparse metrics cadence must not interact with sharding: the
    // carried-forward disorder values come from the same measured cycles.
    let cfg = |shards| {
        let mut cfg = base_cfg(77, shards);
        cfg.metrics_every = 5;
        cfg
    };
    let a = golden(cfg(1), ProtocolKind::Ranking, Some(churned(0.1)), 23);
    let b = golden(cfg(4), ProtocolKind::Ranking, Some(churned(0.1)), 23);
    assert_eq!(a, b);
}

#[test]
fn sharded_membership_is_invisible_for_every_substrate() {
    // The schedule-then-execute membership phase (and the sharded oracle
    // refill / refresh phases) must be byte-invisible for every sampler,
    // not just the default Cyclon variant — each substrate consumes its
    // membership stream differently (aging, partner draw, digest draws).
    for sampler in [
        SamplerKind::Cyclon,
        SamplerKind::Newscast,
        SamplerKind::Lpbcast,
        SamplerKind::UniformOracle,
    ] {
        let cfg = |shards| {
            let mut cfg = base_cfg(2024, shards);
            cfg.sampler = sampler;
            cfg
        };
        let sequential = golden(cfg(1), ProtocolKind::Ranking, Some(churned(0.05)), 20);
        for shards in [2, 4, 8] {
            let sharded = golden(cfg(shards), ProtocolKind::Ranking, Some(churned(0.05)), 20);
            assert_eq!(
                sequential, sharded,
                "sampler {sampler}: shards={shards} diverged"
            );
        }
    }
}

#[test]
fn phase_timings_do_not_perturb_the_run() {
    // Opt-in timings must be measurement, not intervention: the simulated
    // bytes with `time_phases` on, minus the timing fields themselves, must
    // equal the run with timings off — at any shard count.
    let cfg = |time_phases, shards| {
        let mut cfg = base_cfg(99, shards);
        cfg.time_phases = time_phases;
        cfg
    };
    let strip = |record: RunRecord| -> RunRecord {
        let mut record = record;
        for stats in &mut record.cycles {
            stats.timings = None;
        }
        record.phase_ns = None;
        record
    };
    let plain = Engine::new(cfg(false, 1), ProtocolKind::Ranking)
        .unwrap()
        .run(15);
    for shards in [1, 4] {
        let timed = Engine::new(cfg(true, shards), ProtocolKind::Ranking)
            .unwrap()
            .run(15);
        assert!(
            timed.cycles.iter().all(|c| c.timings.is_some()),
            "time_phases must fill every cycle's breakdown"
        );
        assert_eq!(
            strip(timed).to_json(),
            plain.to_json(),
            "timings leaked into the simulation (shards={shards})"
        );
    }
}

#[test]
fn golden_record_roundtrips_through_json() {
    // The golden bytes are not just stable — they parse back to the same
    // record, so goldens can be archived and diffed structurally.
    let mut engine = Engine::new(base_cfg(5, 2), ProtocolKind::Ranking).unwrap();
    let record = engine.run(10);
    let parsed: RunRecord = serde_json::from_str(&record.to_json()).unwrap();
    assert_eq!(parsed, record);
}
