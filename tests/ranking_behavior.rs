//! Integration: the ranking algorithm (§5) at reduced scale.
//!
//! Asserts the qualitative results of Figs. 6(a) and 6(b): the ranking SDM
//! drops below the ordering algorithms' floor and keeps improving; running
//! on the Cyclon variant is as good as running on an idealized uniform
//! sampler; estimates converge toward the true normalized ranks.

use dslice::prelude::*;

fn config(seed: u64) -> SimConfig {
    SimConfig {
        n: 500,
        view_size: 10,
        partition: Partition::equal(10).unwrap(),
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn ranking_beats_the_ordering_floor() {
    // Fig. 6(a): run both to their long-term regime; the ordering SDM is
    // lower-bounded, the ranking SDM keeps shrinking below it.
    let ordering = Engine::new(config(21), ProtocolKind::ModJk)
        .unwrap()
        .run(400);
    let ranking = Engine::new(config(21), ProtocolKind::Ranking)
        .unwrap()
        .run(400);
    let floor = ordering.final_sdm().unwrap();
    let rank_final = ranking.final_sdm().unwrap();
    assert!(
        rank_final < floor,
        "ranking ({rank_final}) must end below the ordering floor ({floor})"
    );
}

#[test]
fn ranking_keeps_improving_over_time() {
    let record = Engine::new(config(22), ProtocolKind::Ranking)
        .unwrap()
        .run(400);
    let at = |c: usize| record.cycles[c - 1].sdm;
    assert!(at(400) < at(100), "{} !< {}", at(400), at(100));
    assert!(at(100) < at(20), "{} !< {}", at(100), at(20));
}

#[test]
fn cyclon_views_match_the_uniform_oracle() {
    // Fig. 6(b): the two substrates give very similar SDM trajectories.
    let views = Engine::new(config(23), ProtocolKind::Ranking)
        .unwrap()
        .run(300);
    let mut oracle_cfg = config(23);
    oracle_cfg.sampler = SamplerKind::UniformOracle;
    let oracle = Engine::new(oracle_cfg, ProtocolKind::Ranking)
        .unwrap()
        .run(300);

    // Compare the tails (averages over the last 50 cycles) — the regime the
    // paper's ±7% deviation figure describes. At this scale both tails are
    // tiny in absolute terms (SDM ≈ 20–35 over 500 nodes, i.e. a mean
    // per-node slice error of a few hundredths), so a relative band is all
    // noise; assert agreement in per-node slice units instead.
    let tail = |r: &RunRecord| -> f64 {
        let t: Vec<f64> = r.cycles[250..].iter().map(|c| c.sdm).collect();
        t.iter().sum::<f64>() / t.len() as f64
    };
    let v = tail(&views);
    let o = tail(&oracle);
    let per_node = (v - o).abs() / 500.0;
    assert!(
        per_node < 0.04,
        "Cyclon tail SDM {v:.1} vs oracle {o:.1}: {per_node:.3} slices/node apart"
    );
}

#[test]
fn estimates_converge_to_true_normalized_ranks() {
    let mut engine = Engine::new(config(24), ProtocolKind::Ranking).unwrap();
    engine.run(300);
    let snapshot = engine.snapshot();
    let n = snapshot.len();
    let alpha = dslice::core::rank::attribute_ranks(snapshot.iter().map(|&(id, a, _)| (id, a)));
    let mean_abs_err: f64 = snapshot
        .iter()
        .map(|(id, _, est)| {
            let truth = alpha[id] as f64 / n as f64;
            (est - truth).abs()
        })
        .sum::<f64>()
        / n as f64;
    assert!(
        mean_abs_err < 0.05,
        "mean |estimate − true rank| = {mean_abs_err:.3} too large after 300 cycles"
    );
}

#[test]
fn sliding_window_matches_plain_ranking_in_static_system() {
    // With no churn the window variant loses nothing (it just forgets
    // samples it doesn't need).
    let plain = Engine::new(config(25), ProtocolKind::Ranking)
        .unwrap()
        .run(200);
    let window = Engine::new(config(25), ProtocolKind::SlidingRanking { window: 2_000 })
        .unwrap()
        .run(200);
    let p = plain.final_sdm().unwrap();
    let w = window.final_sdm().unwrap();
    assert!(
        w < p * 2.0 + 20.0,
        "sliding window must stay comparable in the static case: {w} vs {p}"
    );
}

#[test]
fn boundary_nodes_receive_more_updates() {
    // The j1 policy must bias messages toward slice-boundary nodes
    // (Theorem 5.1's rationale). We measure sample counts per node and
    // check that nodes near a boundary absorbed at least as many samples on
    // average as mid-slice nodes.
    let mut engine = Engine::new(config(26), ProtocolKind::Ranking).unwrap();
    engine.run(150);
    let partition = engine.partition().clone();
    let snapshot = engine.snapshot();

    // Use the estimate as the rank proxy (it has converged enough) and the
    // update counts from the record: we re-derive "received messages" from
    // the estimator sample counts minus per-cycle view scans, which is not
    // directly exposed — so instead assert the *behavioral* consequence:
    // boundary nodes' estimates are at least as accurate as mid-slice ones
    // relative to the noise floor.
    let alpha = dslice::core::rank::attribute_ranks(snapshot.iter().map(|&(id, a, _)| (id, a)));
    let n = snapshot.len();
    let (mut boundary_err, mut boundary_cnt) = (0.0f64, 0usize);
    let (mut middle_err, mut middle_cnt) = (0.0f64, 0usize);
    for (id, _, est) in &snapshot {
        let truth = alpha[id] as f64 / n as f64;
        let err = (est - truth).abs();
        if partition.boundary_distance(truth) < 0.02 {
            boundary_err += err;
            boundary_cnt += 1;
        } else {
            middle_err += err;
            middle_cnt += 1;
        }
    }
    let boundary_avg = boundary_err / boundary_cnt.max(1) as f64;
    let middle_avg = middle_err / middle_cnt.max(1) as f64;
    assert!(
        boundary_avg < middle_avg * 3.0 + 0.05,
        "boundary nodes should not lag badly: {boundary_avg:.4} vs {middle_avg:.4}"
    );
}
