//! Large-N smoke tests, `#[ignore]`d so tier-1 stays fast.
//!
//! CI runs these in a dedicated release-mode job
//! (`cargo test --release -- --ignored`); they verify that the scale
//! architecture actually carries a 10⁵-node population: the run completes,
//! disorder decreases, and memory stays bounded by the peak population
//! (the slab's free list reuses slots under churn instead of growing).

use dslice::prelude::*;
use dslice::sim::churn::ChurnSchedule;

#[test]
#[ignore = "large-N smoke: run with --release -- --ignored"]
fn hundred_k_nodes_ten_cycles_converges() {
    let cfg = SimConfig {
        n: 100_000,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 0x5CA1E,
        shards: 4,
        metrics_every: 5,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    let before = engine.sdm();
    let record = engine.run(10);
    let after = engine.sdm();
    assert_eq!(record.cycles.len(), 10);
    assert_eq!(engine.population(), 100_000);
    assert!(
        after < before / 2.0,
        "SDM must at least halve over 10 cycles at 100k: {before} -> {after}"
    );
}

#[test]
#[ignore = "large-N smoke: run with --release -- --ignored"]
fn churning_hundred_k_run_keeps_memory_bounded() {
    let cfg = SimConfig {
        n: 100_000,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 0xB0B,
        shards: 4,
        metrics_every: 5,
        ..SimConfig::default()
    };
    // 1% of the population leaves and rejoins every cycle.
    let churn = UncorrelatedChurn::new(
        ChurnSchedule {
            rate: 0.01,
            period: 1,
            stop_after: None,
        },
        AttributeDistribution::default(),
    );
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(churn));
    let record = engine.run(10);
    let total_left: usize = record.cycles.iter().map(|c| c.left).sum();
    assert!(
        total_left >= 9_000,
        "churn must actually fire: {total_left}"
    );
    // Population stays at 100k (same-rate churn), and the slab reused the
    // freed slots: storage is bounded by peak population + one cycle's
    // churn, not by total identities ever created.
    assert_eq!(engine.population(), 100_000);
    let upper_bound = 100_000 + 2_000;
    assert!(
        engine.slot_count() <= upper_bound,
        "slab grew to {} slots (> {upper_bound}): free-list reuse is broken",
        engine.slot_count()
    );
}
