//! The standard normal distribution: `erf`, CDF, quantile, `Z_{α/2}`.
//!
//! Theorem 5.1 works with "the standard normal distribution function `Φ`"
//! and its inverse: `Z_{α/2} = Φ⁻¹(1 − α/2)`. The implementations here are
//! classic rational approximations — Abramowitz & Stegun 7.1.26 for `erf`
//! (|error| < 1.5·10⁻⁷) and Acklam's algorithm for the quantile (relative
//! error < 1.2·10⁻⁹) — accurate far beyond what the slicing experiments
//! resolve, without pulling in a stats dependency.

/// The error function `erf(x)`, Abramowitz & Stegun 7.1.26.
///
/// Absolute error below `1.5e-7` over the whole real line.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The standard normal CDF `Φ(x) = (1 + erf(x/√2)) / 2`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)` (Acklam).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0, 1), got {p}"
    );

    // Coefficients of Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail: symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley refinement against the CDF tightens the result.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The two-sided critical value `Z_{α/2} = Φ⁻¹(1 − α/2)` of Theorem 5.1.
///
/// `alpha` is the complement of the confidence coefficient: a 95% confidence
/// level is `alpha = 0.05` and yields the familiar `≈ 1.96`.
///
/// # Panics
/// Panics if `alpha` is outside `(0, 1)`.
pub fn z_alpha_2(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "confidence complement must lie in (0, 1), got {alpha}"
    );
    normal_quantile(1.0 - alpha / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 3e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 3e-4);
        assert!((normal_cdf(3.0) - 0.99865).abs() < 1e-4);
    }

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.841_344_7) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn z_values_match_textbook() {
        assert!((z_alpha_2(0.05) - 1.96).abs() < 1e-2);
        assert!((z_alpha_2(0.01) - 2.576).abs() < 1e-2);
        assert!((z_alpha_2(0.10) - 1.645).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "normal_quantile")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "confidence complement")]
    fn z_rejects_bad_alpha() {
        z_alpha_2(1.5);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
            if a < b {
                prop_assert!(normal_cdf(a) <= normal_cdf(b));
            }
        }

        #[test]
        fn quantile_inverts_cdf(p in 0.0005f64..0.9995) {
            let x = normal_quantile(p);
            prop_assert!((normal_cdf(x) - p).abs() < 1e-6,
                "Φ(Φ⁻¹({p})) = {}", normal_cdf(x));
        }

        #[test]
        fn erf_is_odd(x in -5.0f64..5.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }

        #[test]
        fn erf_is_bounded(x in -50.0f64..50.0) {
            let y = erf(x);
            prop_assert!((-1.0..=1.0).contains(&y));
        }
    }
}
