//! Theorem 5.1: how many samples does a node need to trust its slice?
//!
//! > Let `p` be the normalized rank of `i` and let `p̂` be its estimate. For
//! > node `i` to exactly estimate its slice with confidence coefficient
//! > `100(1−α)%`, the number of messages `i` must receive is
//! > `(Z_{α/2}·√(p̂(1−p̂)) / d)²`, where `d` is the distance between the rank
//! > estimate of `i` and the closest slice boundary.
//!
//! The theorem is the Wald large-sample normal test in the binomial case:
//! the rank estimate `p̂ = ℓ/g` has standard error `√(p̂(1−p̂)/k)`, and the
//! slice estimate is trustworthy once the whole confidence interval fits
//! inside the slice. It also explains the ranking algorithm's `j1` policy:
//! nodes near a boundary (small `d`) need quadratically more samples, so
//! they are preferentially fed.

use crate::normal::z_alpha_2;

/// The Wald `100(1−α)%` confidence interval for a proportion estimated as
/// `p_hat` from `k` samples: `p̂ ± Z_{α/2}·√(p̂(1−p̂)/k)`, clamped to
/// `[0, 1]`.
///
/// # Panics
/// Panics if `p_hat ∉ [0, 1]`, `k == 0`, or `alpha ∉ (0, 1)`.
pub fn wald_interval(p_hat: f64, k: usize, alpha: f64) -> (f64, f64) {
    assert!(
        (0.0..=1.0).contains(&p_hat),
        "estimate must lie in [0, 1], got {p_hat}"
    );
    assert!(k > 0, "need at least one sample");
    let z = z_alpha_2(alpha);
    let half_width = z * (p_hat * (1.0 - p_hat) / k as f64).sqrt();
    ((p_hat - half_width).max(0.0), (p_hat + half_width).min(1.0))
}

/// Theorem 5.1's sample count: the number of observations after which a node
/// whose rank estimate is `p_hat`, at distance `d` from the closest interior
/// slice boundary, pins its slice down with confidence `100(1−α)%`:
/// `k = ⌈(Z_{α/2}·√(p̂(1−p̂)) / d)²⌉`.
///
/// Returns 0 when `p̂(1−p̂) = 0` (a degenerate estimate pinned at an
/// endpoint has no sampling variance under the Wald model).
///
/// # Panics
/// Panics if `p_hat ∉ [0, 1]`, `d ≤ 0`, or `alpha ∉ (0, 1)`.
pub fn required_samples(p_hat: f64, d: f64, alpha: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p_hat),
        "estimate must lie in [0, 1], got {p_hat}"
    );
    assert!(d > 0.0, "boundary distance must be positive, got {d}");
    let z = z_alpha_2(alpha);
    let k = (z * (p_hat * (1.0 - p_hat)).sqrt() / d).powi(2);
    k.ceil() as u64
}

/// The full confidence report for one node: interval, boundary distance and
/// whether the slice estimate is already trustworthy at level `1 − α`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SliceConfidence {
    /// The Wald interval around the rank estimate.
    pub interval: (f64, f64),
    /// Samples the node has absorbed.
    pub samples: usize,
    /// Samples Theorem 5.1 requires for this `(p̂, d, α)`.
    pub required: u64,
    /// Whether the interval lies within `(l, u]` — the slice estimate is
    /// exact with the requested confidence.
    pub confident: bool,
}

impl SliceConfidence {
    /// Evaluates Theorem 5.1 for a node with rank estimate `p_hat` from
    /// `samples` observations, inside the slice `(l, u]`, at confidence
    /// `100(1−α)%`.
    ///
    /// # Panics
    /// Panics on the same domain violations as [`wald_interval`] /
    /// [`required_samples`], or if `p_hat` lies outside `(l, u]`.
    pub fn evaluate(p_hat: f64, samples: usize, l: f64, u: f64, alpha: f64) -> Self {
        assert!(
            l < p_hat && p_hat <= u,
            "estimate {p_hat} must lie inside its slice ({l}, {u}]"
        );
        let interval = wald_interval(p_hat, samples.max(1), alpha);
        let d = (p_hat - l).min(u - p_hat);
        let required = if d > 0.0 {
            required_samples(p_hat, d, alpha)
        } else {
            u64::MAX
        };
        // The paper's condition: p̂ − Zσ > l and p̂ + Zσ ≤ u.
        let confident = samples > 0 && interval.0 > l && interval.1 <= u;
        SliceConfidence {
            interval,
            samples,
            required,
            confident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn interval_width_shrinks_with_samples() {
        let (lo1, hi1) = wald_interval(0.5, 100, 0.05);
        let (lo2, hi2) = wald_interval(0.5, 10_000, 0.05);
        assert!(hi2 - lo2 < (hi1 - lo1) / 5.0);
        assert!(lo1 < 0.5 && 0.5 < hi1);
        assert!(lo2 < 0.5 && 0.5 < hi2);
    }

    #[test]
    fn interval_textbook_value() {
        // p̂ = 0.5, k = 100, 95%: half-width ≈ 1.96·0.05 = 0.098.
        let (lo, hi) = wald_interval(0.5, 100, 0.05);
        assert!((hi - lo - 0.196).abs() < 1e-3);
    }

    #[test]
    fn interval_clamps_to_unit_range() {
        let (lo, hi) = wald_interval(0.01, 5, 0.05);
        assert!(lo >= 0.0);
        let (lo2, hi2) = wald_interval(0.99, 5, 0.05);
        assert!(hi2 <= 1.0);
        assert!(lo < hi && lo2 < hi2);
    }

    #[test]
    fn required_samples_textbook_value() {
        // p̂ = 0.5, d = 0.005 (mid-slice of 100 equal slices), 95%:
        // k = (1.96·0.5/0.005)² ≈ 38 416 — the order of the paper's
        // "10⁴ messages" remark in §5.3.4.
        let k = required_samples(0.5, 0.005, 0.05);
        assert!((38_000..39_000).contains(&k), "k = {k}");
    }

    #[test]
    fn boundary_nodes_need_more_samples() {
        // Theorem's punchline: smaller d → more samples, quadratically.
        let far = required_samples(0.5, 0.05, 0.05);
        let near = required_samples(0.5, 0.005, 0.05);
        assert!(
            near >= far * 90 && near <= far * 110,
            "10x closer must need ~100x samples: {far} vs {near}"
        );
    }

    #[test]
    fn degenerate_estimates_need_no_samples() {
        assert_eq!(required_samples(0.0, 0.1, 0.05), 0);
        assert_eq!(required_samples(1.0, 0.1, 0.05), 0);
    }

    #[test]
    fn confidence_report() {
        // Node at p̂ = 0.55 inside (0.5, 0.6] with plenty of samples.
        let c = SliceConfidence::evaluate(0.55, 100_000, 0.5, 0.6, 0.05);
        assert!(c.confident);
        assert!(c.samples as u64 >= c.required);
        // Same node with few samples: not confident.
        let c = SliceConfidence::evaluate(0.55, 10, 0.5, 0.6, 0.05);
        assert!(!c.confident);
        assert!((c.samples as u64) < c.required);
    }

    #[test]
    #[should_panic(expected = "boundary distance")]
    fn rejects_zero_distance() {
        required_samples(0.5, 0.0, 0.05);
    }

    #[test]
    #[should_panic(expected = "inside its slice")]
    fn evaluate_rejects_estimate_outside_slice() {
        SliceConfidence::evaluate(0.7, 10, 0.5, 0.6, 0.05);
    }

    /// Monte-Carlo validation of the theorem: nodes sampling at the
    /// prescribed rate identify their slice correctly at least `1 − α` of
    /// the time (the normal approximation is conservative here).
    #[test]
    fn monte_carlo_validates_theorem() {
        let alpha = 0.05;
        // True rank p = 0.47 in a 10-slice partition: slice (0.4, 0.5],
        // boundary distance d = 0.03.
        let p = 0.47;
        let d: f64 = 0.03;
        let k = required_samples(p, d, alpha) as usize;
        let mut rng = StdRng::seed_from_u64(29);
        let trials = 1000;
        let mut correct = 0usize;
        for _ in 0..trials {
            let hits = (0..k).filter(|_| rng.gen::<f64>() < p).count();
            let p_hat = hits as f64 / k as f64;
            // Slice estimate from p̂: the (0.4, 0.5] slice iff 0.4 < p̂ ≤ 0.5.
            if 0.4 < p_hat && p_hat <= 0.5 {
                correct += 1;
            }
        }
        let rate = correct as f64 / trials as f64;
        assert!(
            rate >= 1.0 - alpha - 0.02,
            "correct-slice rate {rate} below confidence {}",
            1.0 - alpha
        );
    }

    proptest! {
        #[test]
        fn required_samples_monotone_in_distance(
            p_hat in 0.05f64..0.95,
            d1 in 0.001f64..0.2,
            d2 in 0.001f64..0.2,
        ) {
            if d1 < d2 {
                prop_assert!(
                    required_samples(p_hat, d1, 0.05) >= required_samples(p_hat, d2, 0.05)
                );
            }
        }

        #[test]
        fn interval_contains_estimate(
            p_hat in 0.0f64..=1.0,
            k in 1usize..10_000,
        ) {
            let (lo, hi) = wald_interval(p_hat, k, 0.05);
            prop_assert!(lo <= p_hat && p_hat <= hi);
        }

        #[test]
        fn tighter_confidence_needs_more_samples(
            p_hat in 0.05f64..0.95,
            d in 0.001f64..0.2,
        ) {
            let k95 = required_samples(p_hat, d, 0.05);
            let k99 = required_samples(p_hat, d, 0.01);
            prop_assert!(k99 >= k95);
        }
    }
}
