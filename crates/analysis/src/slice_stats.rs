//! §4.4: how inaccurate is slicing by uniform random values?
//!
//! > consider a slice `S_p` of length `p`. In a network of `n` nodes, the
//! > number of nodes that will fall into this slice is a random variable `X`
//! > with a binomial distribution with parameters `n` and `p`. The standard
//! > deviation of `X` is therefore `√(np(1−p))`. This means that the
//! > relative proportional expected difference from the mean can be
//! > approximated as `√((1−p)/(np))` […] it is simple to show that, in
//! > general, the probability of dividing `n` peers into two slices of the
//! > same size is less than `√(2/nπ)`.
//!
//! These are the facts that motivate the ranking algorithm: even a perfectly
//! ordered set of random values yields slice populations that are only
//! *approximately* proportional.

/// Moments of the binomial slice population `X ~ Binomial(n, p)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlicePopulation {
    /// Expected population `np`.
    pub mean: f64,
    /// Standard deviation `√(np(1−p))`.
    pub std_dev: f64,
    /// Relative proportional expected deviation `≈ √((1−p)/(np))`.
    pub relative_deviation: f64,
}

/// The §4.4 characterization for a slice of length `p` in a network of `n`.
///
/// # Panics
/// Panics unless `p ∈ (0, 1]` and `n ≥ 1`.
pub fn expected_slice_population(n: usize, p: f64) -> SlicePopulation {
    assert!(
        p > 0.0 && p <= 1.0,
        "slice length must lie in (0, 1], got {p}"
    );
    assert!(n >= 1, "population must be non-empty");
    let nf = n as f64;
    SlicePopulation {
        mean: nf * p,
        std_dev: (nf * p * (1.0 - p)).sqrt(),
        relative_deviation: ((1.0 - p) / (nf * p)).sqrt(),
    }
}

/// The relative proportional expected deviation `√((1−p)/(np))` alone —
/// "very large if `p` is small […] goes to infinity as `p` tends to zero".
pub fn relative_expected_deviation(n: usize, p: f64) -> f64 {
    expected_slice_population(n, p).relative_deviation
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)` via log-gamma (stable for large `n`).
fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// The binomial probability mass `Pr[X = k]` for `X ~ Binomial(n, p)`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// The exact probability that `n` uniform random values split into two
/// equal slices — `Pr[X = n/2]` for `X ~ Binomial(n, 1/2)` — together with
/// the paper's `√(2/(nπ))` upper bound. For odd `n` the probability is 0.
pub fn even_split_probability(n: usize) -> (f64, f64) {
    assert!(n >= 1, "population must be non-empty");
    let bound = (2.0 / (n as f64 * std::f64::consts::PI)).sqrt();
    if !n.is_multiple_of(2) {
        return (0.0, bound);
    }
    (binomial_pmf(n, n / 2, 0.5), bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn population_moments_match_binomial() {
        let s = expected_slice_population(10_000, 0.2);
        assert!((s.mean - 2000.0).abs() < 1e-9);
        assert!((s.std_dev - (10_000f64 * 0.2 * 0.8).sqrt()).abs() < 1e-9);
        assert!((s.relative_deviation - (0.8f64 / 2000.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn relative_deviation_explodes_for_small_p() {
        let tiny = relative_expected_deviation(10_000, 1e-4);
        let normal = relative_expected_deviation(10_000, 0.2);
        assert!(tiny > normal * 10.0, "tiny slices are proportionally noisy");
        // And a very large n compensates (paper's remark).
        let big_n = relative_expected_deviation(100_000_000, 1e-4);
        assert!(big_n < tiny / 50.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10); // 0! = 1
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10); // 4! = 24
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3628800.0f64.ln()).abs() < 1e-9); // 10!
    }

    #[test]
    fn pmf_small_cases_exact() {
        // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (k, &e) in expect.iter().enumerate() {
            assert!((binomial_pmf(4, k, 0.5) - e).abs() < 1e-12, "k = {k}");
        }
        assert_eq!(binomial_pmf(4, 5, 0.5), 0.0);
        assert_eq!(binomial_pmf(4, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(4, 4, 1.0), 1.0);
    }

    #[test]
    fn even_split_is_rare_and_below_bound() {
        for &n in &[10usize, 100, 1000, 10_000] {
            let (exact, bound) = even_split_probability(n);
            assert!(exact <= bound, "exact {exact} above bound {bound} at n={n}");
            // The bound is asymptotically tight: within 10% for large n.
            if n >= 1000 {
                assert!(exact > bound * 0.9);
            }
        }
        // Paper: "This value is very small even for moderate values of n."
        let (exact, _) = even_split_probability(10_000);
        assert!(exact < 0.01);
        // Odd populations can never split evenly.
        assert_eq!(even_split_probability(11).0, 0.0);
    }

    #[test]
    fn monte_carlo_even_split() {
        let n = 100usize;
        let (exact, _) = even_split_probability(n);
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 40_000;
        let hits = (0..trials)
            .filter(|_| (0..n).filter(|_| rng.gen::<bool>()).count() == n / 2)
            .count();
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - exact).abs() < 0.01,
            "empirical {rate} vs exact {exact}"
        );
    }

    proptest! {
        #[test]
        fn pmf_sums_to_one(n in 1usize..60, p in 0.01f64..0.99) {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        }

        #[test]
        fn pmf_mean_matches(n in 1usize..60, p in 0.01f64..0.99) {
            let mean: f64 = (0..=n).map(|k| k as f64 * binomial_pmf(n, k, p)).sum();
            prop_assert!((mean - n as f64 * p).abs() < 1e-6);
        }
    }
}
