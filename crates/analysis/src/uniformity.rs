//! Uniformity testing for the ordering algorithms' random values.
//!
//! The accuracy of JK/mod-JK slice assignment "fully depends on the
//! uniformity of the random value spread between 0 and 1" (§4.4), and §5
//! argues attribute-correlated churn skews that spread irrecoverably
//! ("eventually the distribution of random values will be skewed towards
//! high values"). This module provides the one-sample
//! **Kolmogorov–Smirnov** test against `U(0, 1]` so both claims are
//! checkable on live protocol state:
//!
//! * [`ks_statistic`] — the max distance `D_n` between the empirical CDF
//!   and the uniform CDF;
//! * [`ks_critical`] — the asymptotic critical value
//!   `c(α)·√(1/n)` with `c(α) = √(−ln(α/2)/2)`;
//! * [`ks_test`] — the verdict, plus an approximate p-value from the
//!   Kolmogorov distribution's series expansion.
//!
//! The churn integration tests use this to show the random-value multiset
//! of an ordering run *fails* uniformity after a correlated churn burst
//! while a fresh draw passes — the mechanism behind Fig. 6(c).

/// The one-sample KS statistic `D_n` of `values` against `U(0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty or contains values outside `[0, 1]`.
pub fn ks_statistic(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "KS statistic of an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(&x),
            "value {x} outside [0, 1] — not a normalized random value"
        );
        // CDF of U(0,1] at x is x; empirical CDF steps at (i+1)/n.
        let above = (i as f64 + 1.0) / n - x;
        let below = x - i as f64 / n;
        d = d.max(above).max(below);
    }
    d
}

/// The asymptotic critical value for significance level `alpha`:
/// reject uniformity when `D_n > ks_critical(alpha, n)`.
///
/// # Panics
///
/// Panics unless `0 < alpha < 1` and `n > 0`.
pub fn ks_critical(alpha: f64, n: usize) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    assert!(n > 0, "empty sample");
    ((-(alpha / 2.0).ln()) / 2.0).sqrt() / (n as f64).sqrt()
}

/// Approximate p-value of an observed statistic `d` at sample size `n`,
/// via the Kolmogorov distribution series
/// `Q(t) = 2·Σ_{k≥1} (−1)^{k−1}·exp(−2k²t²)` with the Stephens
/// finite-sample correction `t = d·(√n + 0.12 + 0.11/√n)`.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    assert!(n > 0, "empty sample");
    let sqrt_n = (n as f64).sqrt();
    let t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
    if t < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * t * t).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Result of a KS uniformity test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsOutcome {
    /// The observed statistic `D_n`.
    pub statistic: f64,
    /// The critical value at the requested level.
    pub critical: f64,
    /// Approximate p-value.
    pub p_value: f64,
    /// Whether uniformity is rejected at the requested level.
    pub rejected: bool,
}

/// Runs the full test of `values` against `U(0, 1]` at level `alpha`.
pub fn ks_test(values: &[f64], alpha: f64) -> KsOutcome {
    let statistic = ks_statistic(values);
    let critical = ks_critical(alpha, values.len());
    KsOutcome {
        statistic,
        critical,
        p_value: ks_p_value(statistic, values.len()),
        rejected: statistic > critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn statistic_of_perfect_grid_is_small() {
        // Midpoints i/n − 1/(2n): the best possible spread, D = 1/(2n).
        let n = 100;
        let values: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&values);
        assert!((d - 0.005).abs() < 1e-12, "grid D = {d}");
    }

    #[test]
    fn statistic_of_constant_sample_is_large() {
        let values = vec![0.5; 50];
        assert!(ks_statistic(&values) >= 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn critical_of_empty_sample_panics() {
        let _ = ks_critical(0.05, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_values_panic() {
        let _ = ks_statistic(&[0.5, 1.5]);
    }

    #[test]
    fn critical_value_matches_tables() {
        // Classic large-sample values: c(0.05) = 1.3581, c(0.01) = 1.6276.
        let n = 10_000;
        let sqrt_n = (n as f64).sqrt();
        assert!((ks_critical(0.05, n) * sqrt_n - 1.3581).abs() < 1e-3);
        assert!((ks_critical(0.01, n) * sqrt_n - 1.6276).abs() < 1e-3);
    }

    #[test]
    fn uniform_samples_pass_at_the_stated_rate() {
        // False-positive rate of the α = 0.05 test over many uniform draws
        // must be near 5%.
        let mut rng = StdRng::seed_from_u64(71);
        let trials = 400;
        let rejections = (0..trials)
            .filter(|_| {
                let values: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
                ks_test(&values, 0.05).rejected
            })
            .count();
        let rate = rejections as f64 / trials as f64;
        assert!(
            (0.01..=0.10).contains(&rate),
            "false-positive rate {rate} far from nominal 5%"
        );
    }

    #[test]
    fn skewed_samples_are_rejected() {
        // The §5 churn skew: values concentrated toward 1.
        let mut rng = StdRng::seed_from_u64(73);
        let values: Vec<f64> = (0..500).map(|_| rng.gen::<f64>().sqrt()).collect();
        let outcome = ks_test(&values, 0.01);
        assert!(
            outcome.rejected,
            "sqrt-skewed sample must fail: {outcome:?}"
        );
        assert!(outcome.p_value < 0.01);
    }

    #[test]
    fn p_value_is_monotone_in_the_statistic() {
        let n = 200;
        let p_small = ks_p_value(0.02, n);
        let p_big = ks_p_value(0.15, n);
        assert!(p_small > p_big);
        assert!(p_small > 0.5);
        assert!(p_big < 0.01);
    }

    #[test]
    fn p_value_near_critical_is_near_alpha() {
        let n = 1_000;
        let d = ks_critical(0.05, n);
        let p = ks_p_value(d, n);
        assert!(
            (p - 0.05).abs() < 0.02,
            "p-value at the 5% critical value is {p}"
        );
    }
}
