//! # dslice-analysis
//!
//! Executable versions of the paper's analytic results, plus the numeric
//! machinery (normal distribution, log-gamma, binomial) they need:
//!
//! * [`normal`] — `erf`, the standard normal CDF `Φ`, its inverse and the
//!   two-sided critical value `Z_{α/2}` used throughout §5.2.
//! * [`chernoff`] — **Lemma 4.1**: a slice of length `p` holds
//!   `[(1−β)np, (1+β)np]` of the `n` uniform random values with probability
//!   at least `1 − ε` as long as `p ≥ 3·ln(2/ε)/(β²n)`; with the underlying
//!   Chernoff tail bounds.
//! * [`slice_stats`] — the §4.4 characterization of slice-assignment
//!   inaccuracy: binomial slice populations, the relative expected deviation
//!   `√((1−p)/(np))`, and the `≈ √(2/(nπ))` probability that `n` random
//!   values split exactly evenly between two slices.
//! * [`theorem51`] — **Theorem 5.1**: the number of samples a node at
//!   estimated rank `p̂`, at distance `d` from the closest slice boundary,
//!   needs before its slice estimate is exact with confidence `1 − α`:
//!   `k ≥ (Z_{α/2}·√(p̂(1−p̂)) / d)²`; with the Wald interval it derives from.
//!
//! * [`uniformity`] — a one-sample Kolmogorov–Smirnov test against
//!   `U(0, 1]`, for checking the §4.4 uniformity assumption on live
//!   random-value multisets (and detecting the §5 churn-induced skew).
//!
//! Every result carries Monte-Carlo validation tests, and the
//! `lemma41`/`thm51` figure binaries in `dslice-bench` regenerate the
//! numeric experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod chernoff;
pub mod normal;
pub mod slice_stats;
pub mod theorem51;
pub mod uniformity;

pub use chernoff::{deviation_probability_bound, min_slice_length};
pub use normal::{erf, normal_cdf, normal_quantile, z_alpha_2};
pub use slice_stats::{
    even_split_probability, expected_slice_population, relative_expected_deviation,
};
pub use theorem51::{required_samples, wald_interval, SliceConfidence};
pub use uniformity::{ks_critical, ks_p_value, ks_statistic, ks_test, KsOutcome};
