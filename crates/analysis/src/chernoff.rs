//! Lemma 4.1: Chernoff bounds on slice populations.
//!
//! The ordering algorithms assign slices through the *positions of the
//! uniform random values*, so a slice of length `p` holds a
//! `Binomial(n, p)`-distributed number of nodes rather than exactly `np`.
//! Lemma 4.1 bounds the deviation:
//!
//! > For any `β ∈ (0, 1]`, a slice `S_p` of length `p ∈ (0, 1]` has a number
//! > of peers `X ∈ [(1−β)np, (1+β)np]` with probability at least `1 − ε` as
//! > long as `p ≥ 3/(β²n) · ln(2/ε)`.
//!
//! via the two Chernoff bounds
//! `Pr[X ≥ (1+β)np] ≤ exp(−β²np/3)` and `Pr[X ≤ (1−β)np] ≤ exp(−β²np/2)`.

/// The combined Chernoff bound of Lemma 4.1:
/// `Pr[|X − np| ≥ βnp] ≤ 2·exp(−β²np/3)` (capped at 1).
///
/// # Panics
/// Panics unless `β ∈ (0, 1]`, `p ∈ (0, 1]` and `n ≥ 1`.
pub fn deviation_probability_bound(beta: f64, n: usize, p: f64) -> f64 {
    assert!(
        beta > 0.0 && beta <= 1.0,
        "β must lie in (0, 1], got {beta}"
    );
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0, 1], got {p}");
    assert!(n >= 1, "population must be non-empty");
    let bound = 2.0 * (-beta * beta * n as f64 * p / 3.0).exp();
    bound.min(1.0)
}

/// The lemma's admissibility threshold: the smallest slice length `p` for
/// which the deviation `|X − np| ≤ βnp` holds with probability at least
/// `1 − ε` in a population of `n` nodes:
/// `p_min = 3·ln(2/ε) / (β²·n)`.
///
/// A value above 1 means no slice of that precision exists at this scale —
/// the population is simply too small.
///
/// # Panics
/// Panics unless `β ∈ (0, 1]`, `ε ∈ (0, 1)` and `n ≥ 1`.
pub fn min_slice_length(beta: f64, epsilon: f64, n: usize) -> f64 {
    assert!(
        beta > 0.0 && beta <= 1.0,
        "β must lie in (0, 1], got {beta}"
    );
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "ε must lie in (0, 1), got {epsilon}"
    );
    assert!(n >= 1, "population must be non-empty");
    3.0 * (2.0 / epsilon).ln() / (beta * beta * n as f64)
}

/// Convenience: does a slice of length `p` satisfy the lemma's premise for
/// `(β, ε, n)` — i.e. is the `1 − ε` guarantee in force?
pub fn lemma_applies(beta: f64, epsilon: f64, n: usize, p: f64) -> bool {
    p >= min_slice_length(beta, epsilon, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bound_shrinks_with_n_and_beta() {
        let loose = deviation_probability_bound(0.1, 1000, 0.1);
        let tighter_n = deviation_probability_bound(0.1, 10_000, 0.1);
        let tighter_beta = deviation_probability_bound(0.3, 1000, 0.1);
        assert!(tighter_n < loose);
        assert!(tighter_beta < loose);
    }

    #[test]
    fn bound_is_capped_at_one() {
        assert_eq!(deviation_probability_bound(0.01, 10, 0.01), 1.0);
    }

    #[test]
    fn threshold_matches_formula() {
        // β = 0.5, ε = 0.05, n = 10^4: p_min = 3·ln(40)/(0.25·10^4).
        let p = min_slice_length(0.5, 0.05, 10_000);
        let expect = 3.0 * (40.0f64).ln() / 2500.0;
        assert!((p - expect).abs() < 1e-12);
    }

    #[test]
    fn lemma_premise_check() {
        // 100 equal slices of 10^4 nodes: p = 0.01.
        assert!(lemma_applies(1.0, 0.05, 10_000, 0.01));
        // The same slice cannot promise β = 0.1 at ε = 0.05.
        assert!(!lemma_applies(0.1, 0.05, 10_000, 0.01));
    }

    #[test]
    #[should_panic(expected = "β must lie")]
    fn rejects_bad_beta() {
        min_slice_length(0.0, 0.05, 100);
    }

    #[test]
    #[should_panic(expected = "ε must lie")]
    fn rejects_bad_epsilon() {
        min_slice_length(0.5, 0.0, 100);
    }

    /// Monte-Carlo check of the lemma: when `p ≥ p_min(β, ε, n)`, the
    /// empirical deviation probability stays below ε.
    #[test]
    fn monte_carlo_validates_lemma() {
        let n = 2000usize;
        let beta = 0.5;
        let epsilon = 0.05;
        let p = min_slice_length(beta, epsilon, n).min(0.5);
        assert!(p < 0.5, "premise must be satisfiable at this scale");

        let mut rng = StdRng::seed_from_u64(41);
        let trials = 2000;
        let mut violations = 0usize;
        for _ in 0..trials {
            let x = (0..n).filter(|_| rng.gen::<f64>() < p).count() as f64;
            if (x - n as f64 * p).abs() >= beta * n as f64 * p {
                violations += 1;
            }
        }
        let rate = violations as f64 / trials as f64;
        assert!(
            rate <= epsilon,
            "empirical violation rate {rate} exceeds ε = {epsilon}"
        );
    }

    /// The Chernoff *bound* must upper-bound the empirical tail for a range
    /// of parameters.
    #[test]
    fn monte_carlo_validates_bound() {
        let mut rng = StdRng::seed_from_u64(43);
        for &(n, p, beta) in &[
            (500usize, 0.2f64, 0.3f64),
            (1000, 0.1, 0.5),
            (2000, 0.05, 0.8),
        ] {
            let bound = deviation_probability_bound(beta, n, p);
            let trials = 1500;
            let mut hits = 0usize;
            for _ in 0..trials {
                let x = (0..n).filter(|_| rng.gen::<f64>() < p).count() as f64;
                if (x - n as f64 * p).abs() >= beta * n as f64 * p {
                    hits += 1;
                }
            }
            let rate = hits as f64 / trials as f64;
            assert!(
                rate <= bound + 0.02,
                "empirical {rate} above bound {bound} for n={n} p={p} β={beta}"
            );
        }
    }
}
