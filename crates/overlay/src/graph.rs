//! Connectivity analysis of slice overlays.
//!
//! The paper's service definition requires each slice to be a *connected*
//! overlay network. These helpers measure whether a set of
//! [`SliceOverlay`](crate::SliceOverlay) tables actually delivers that:
//! connected components per slice (links treated as undirected — a link is
//! usable by an application in either direction), the size of each slice's
//! giant component, and the *precision* of the links (fraction pointing at
//! peers that are truly, by attribute rank, in the same slice).

use dslice_core::NodeId;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Undirected connected components of an adjacency list.
///
/// Nodes present only as link *targets* are treated as members too. Returns
/// components sorted by descending size, each sorted by id.
pub fn components(adjacency: &HashMap<NodeId, Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    // Symmetrize.
    let mut undirected: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    for (&u, targets) in adjacency {
        undirected.entry(u).or_default();
        for &v in targets {
            undirected.entry(u).or_default().insert(v);
            undirected.entry(v).or_default().insert(u);
        }
    }

    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut result: Vec<Vec<NodeId>> = Vec::new();
    let mut order: Vec<NodeId> = undirected.keys().copied().collect();
    order.sort_unstable();
    for start in order {
        if seen.contains(&start) {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            if let Some(neighbors) = undirected.get(&u) {
                for &v in neighbors {
                    if seen.insert(v) {
                        queue.push_back(v);
                    }
                }
            }
        }
        component.sort_unstable();
        result.push(component);
    }
    result.sort_by_key(|c| std::cmp::Reverse(c.len()));
    result
}

/// Connectivity of one slice's overlay graph.
#[derive(Clone, Debug, PartialEq)]
pub struct SliceConnectivity {
    /// Slice index.
    pub slice: usize,
    /// Members (nodes whose *true* slice this is).
    pub members: usize,
    /// Members with at least one overlay link.
    pub linked_members: usize,
    /// Number of connected components among the members.
    pub component_count: usize,
    /// Size of the largest component.
    pub giant_component: usize,
    /// Intra-slice links over total links from members (precision).
    pub link_precision: f64,
}

impl SliceConnectivity {
    /// Fraction of the slice's members inside the giant component.
    pub fn giant_fraction(&self) -> f64 {
        if self.members == 0 {
            1.0
        } else {
            self.giant_component as f64 / self.members as f64
        }
    }

    /// Whether the slice forms a single connected overlay.
    pub fn is_connected(&self) -> bool {
        self.members <= 1 || self.component_count == 1
    }
}

/// Connectivity of every slice, from ground truth plus overlay tables.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnectivityReport {
    /// Per-slice connectivity, indexed by slice.
    pub slices: Vec<SliceConnectivity>,
}

impl ConnectivityReport {
    /// Builds the report.
    ///
    /// * `true_slice` — each node's ground-truth slice (by attribute rank);
    /// * `links` — each node's current overlay neighbor list;
    /// * `slice_count` — number of slices in the partition.
    pub fn new(
        true_slice: &BTreeMap<NodeId, usize>,
        links: &HashMap<NodeId, Vec<NodeId>>,
        slice_count: usize,
    ) -> Self {
        let mut slices = Vec::with_capacity(slice_count);
        for s in 0..slice_count {
            let members: Vec<NodeId> = true_slice
                .iter()
                .filter(|&(_, &slice)| slice == s)
                .map(|(&id, _)| id)
                .collect();
            let member_set: HashSet<NodeId> = members.iter().copied().collect();

            // The slice's internal graph: only links between true members.
            let mut internal: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            let mut total_links = 0usize;
            let mut intra_links = 0usize;
            let mut linked_members = 0usize;
            for &m in &members {
                internal.entry(m).or_default();
                let Some(targets) = links.get(&m) else {
                    continue;
                };
                if !targets.is_empty() {
                    linked_members += 1;
                }
                for &t in targets {
                    total_links += 1;
                    if member_set.contains(&t) {
                        intra_links += 1;
                        internal.entry(m).or_default().push(t);
                    }
                }
            }

            let comps = components(&internal);
            slices.push(SliceConnectivity {
                slice: s,
                members: members.len(),
                linked_members,
                component_count: comps.len(),
                giant_component: comps.first().map_or(0, Vec::len),
                link_precision: if total_links == 0 {
                    1.0
                } else {
                    intra_links as f64 / total_links as f64
                },
            });
        }
        ConnectivityReport { slices }
    }

    /// Overall link precision across slices (links weighted equally is
    /// impossible without the raw counts, so this averages per-slice
    /// precisions over non-empty slices).
    pub fn mean_precision(&self) -> f64 {
        let non_empty: Vec<&SliceConnectivity> =
            self.slices.iter().filter(|s| s.members > 0).collect();
        if non_empty.is_empty() {
            return 1.0;
        }
        non_empty.iter().map(|s| s.link_precision).sum::<f64>() / non_empty.len() as f64
    }

    /// Smallest giant-component fraction over non-trivial slices.
    pub fn worst_giant_fraction(&self) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.members > 1)
            .map(SliceConnectivity::giant_fraction)
            .fold(1.0, f64::min)
    }

    /// Whether *every* slice is a single connected overlay.
    pub fn all_connected(&self) -> bool {
        self.slices.iter().all(SliceConnectivity::is_connected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn adj(edges: &[(u64, u64)]) -> HashMap<NodeId, Vec<NodeId>> {
        let mut map: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(u, v) in edges {
            map.entry(id(u)).or_default().push(id(v));
        }
        map
    }

    #[test]
    fn components_of_empty_graph() {
        assert!(components(&HashMap::new()).is_empty());
    }

    #[test]
    fn components_partition_the_graph() {
        // Two components: {1,2,3} via directed links, {4,5}.
        let graph = adj(&[(1, 2), (3, 2), (4, 5)]);
        let comps = components(&graph);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![id(1), id(2), id(3)]);
        assert_eq!(comps[1], vec![id(4), id(5)]);
    }

    #[test]
    fn directed_links_are_symmetrized() {
        // 2 never links back to 1, yet they form one component.
        let graph = adj(&[(1, 2)]);
        let comps = components(&graph);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![id(1), id(2)]);
    }

    #[test]
    fn isolated_node_is_its_own_component() {
        let mut graph = adj(&[(1, 2)]);
        graph.insert(id(9), Vec::new());
        let comps = components(&graph);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1], vec![id(9)]);
    }

    fn truth(pairs: &[(u64, usize)]) -> BTreeMap<NodeId, usize> {
        pairs.iter().map(|&(i, s)| (id(i), s)).collect()
    }

    #[test]
    fn report_on_fully_connected_slices() {
        let truth = truth(&[(1, 0), (2, 0), (3, 0), (4, 1), (5, 1)]);
        let links = adj(&[(1, 2), (2, 3), (4, 5)]);
        let report = ConnectivityReport::new(&truth, &links, 2);
        assert!(report.all_connected());
        assert_eq!(report.slices[0].giant_component, 3);
        assert_eq!(report.slices[1].giant_component, 2);
        assert_eq!(report.mean_precision(), 1.0);
        assert_eq!(report.worst_giant_fraction(), 1.0);
    }

    #[test]
    fn report_detects_fragmentation() {
        // Slice 0 = {1,2,3,4} but only 1–2 are linked: 3 components.
        let truth = truth(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let links = adj(&[(1, 2)]);
        let report = ConnectivityReport::new(&truth, &links, 1);
        let s = &report.slices[0];
        assert!(!s.is_connected());
        assert_eq!(s.component_count, 3);
        assert_eq!(s.giant_component, 2);
        assert_eq!(s.giant_fraction(), 0.5);
        assert_eq!(s.linked_members, 1);
    }

    #[test]
    fn report_measures_link_precision() {
        // Node 1 (slice 0) links to 2 (slice 0, correct) and 4 (slice 1,
        // wrong): precision 1/2 for slice 0.
        let truth = truth(&[(1, 0), (2, 0), (4, 1)]);
        let links = adj(&[(1, 2), (1, 4)]);
        let report = ConnectivityReport::new(&truth, &links, 2);
        assert_eq!(report.slices[0].link_precision, 0.5);
        // The cross-slice link does not connect slice 0 to slice 1's graph.
        assert_eq!(report.slices[0].giant_component, 2);
        assert_eq!(report.slices[1].giant_component, 1);
    }

    #[test]
    fn empty_slice_is_trivially_connected() {
        let truth = truth(&[(1, 0)]);
        let links = HashMap::new();
        let report = ConnectivityReport::new(&truth, &links, 2);
        assert!(report.slices[1].is_connected());
        assert_eq!(report.slices[1].members, 0);
        assert_eq!(report.slices[1].giant_fraction(), 1.0);
    }

    #[test]
    fn singleton_slice_is_connected() {
        let truth = truth(&[(1, 0)]);
        let report = ConnectivityReport::new(&truth, &HashMap::new(), 1);
        assert!(report.all_connected());
    }
}
