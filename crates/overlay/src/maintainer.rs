//! Per-node slice-overlay maintenance.
//!
//! A [`SliceOverlay`] is a bounded neighbor table holding peers the owner
//! currently believes to be in *its own slice*. It is fed once per cycle
//! with the owner's slice estimate and the `(peer, estimate)` pairs visible
//! in the owner's peer-sampling view; it performs no communication of its
//! own.
//!
//! Three rules keep the table honest under estimate drift and churn:
//!
//! 1. **Co-slice admission** — a candidate is admitted only if its published
//!    estimate maps to the owner's current slice.
//! 2. **Age-out** — entries not re-confirmed within `max_age` observations
//!    are dropped: a peer that stopped appearing with a co-slice estimate
//!    has moved slice, departed, or drifted.
//! 3. **Flush on slice change** — when the owner's own slice estimate
//!    changes, every link is dropped: links into the old slice are dead
//!    weight for an application allocated to the new one.

use dslice_core::{NodeId, Partition, SliceIndex};
use serde::{Deserialize, Serialize};

/// Overlay tuning parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Maximum number of intra-slice neighbors to keep.
    pub capacity: usize,
    /// Observations after which an unconfirmed neighbor is dropped.
    pub max_age: u32,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            capacity: 10,
            max_age: 20,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct OverlayNeighbor {
    id: NodeId,
    age: u32,
}

/// One node's slice-overlay state.
#[derive(Debug, Clone)]
pub struct SliceOverlay {
    owner: NodeId,
    cfg: OverlayConfig,
    slice: Option<SliceIndex>,
    neighbors: Vec<OverlayNeighbor>,
    flushes: u64,
}

impl SliceOverlay {
    /// Creates an empty overlay for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.capacity` is zero (an overlay that can hold no
    /// neighbor can never connect anything).
    pub fn new(owner: NodeId, cfg: OverlayConfig) -> Self {
        assert!(cfg.capacity > 0, "overlay capacity must be positive");
        SliceOverlay {
            owner,
            cfg,
            slice: None,
            neighbors: Vec::with_capacity(cfg.capacity),
            flushes: 0,
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The slice this overlay currently serves, if the owner has one.
    pub fn slice(&self) -> Option<SliceIndex> {
        self.slice
    }

    /// Current intra-slice neighbors.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors.iter().map(|n| n.id)
    }

    /// Number of current neighbors.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the overlay holds no neighbors.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// How many times the table was flushed by a slice change — a measure
    /// of estimate instability the churn tests track.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// One maintenance round.
    ///
    /// `my_estimate` is the owner's current normalized-rank estimate;
    /// `candidates` are the `(peer, published estimate)` pairs currently
    /// visible in the owner's peer-sampling view. Self-pairs are ignored.
    pub fn observe<I>(&mut self, my_estimate: f64, partition: &Partition, candidates: I)
    where
        I: IntoIterator<Item = (NodeId, f64)>,
    {
        let my_slice = partition.slice_of(my_estimate);
        if self.slice != Some(my_slice) {
            if self.slice.is_some() {
                self.flushes += 1;
            }
            self.slice = Some(my_slice);
            self.neighbors.clear();
        }

        for n in &mut self.neighbors {
            n.age += 1;
        }

        for (id, estimate) in candidates {
            if id == self.owner {
                continue;
            }
            if partition.slice_of(estimate) != my_slice {
                // A known neighbor now publishing a foreign estimate is
                // evicted immediately rather than waiting for age-out.
                if let Some(pos) = self.neighbors.iter().position(|n| n.id == id) {
                    self.neighbors.swap_remove(pos);
                }
                continue;
            }
            match self.neighbors.iter_mut().find(|n| n.id == id) {
                Some(existing) => existing.age = 0,
                None => {
                    if self.neighbors.len() >= self.cfg.capacity {
                        self.evict_oldest();
                    }
                    self.neighbors.push(OverlayNeighbor { id, age: 0 });
                }
            }
        }

        self.neighbors.retain(|n| n.age <= self.cfg.max_age);
    }

    /// Drops neighbors that are no longer alive (churn cleanup).
    pub fn remove_dead(&mut self, is_alive: &dyn Fn(NodeId) -> bool) {
        self.neighbors.retain(|n| is_alive(n.id));
    }

    fn evict_oldest(&mut self) {
        if let Some((idx, _)) = self
            .neighbors
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.age.cmp(&b.age).then_with(|| a.id.cmp(&b.id)))
        {
            self.neighbors.swap_remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn overlay(capacity: usize, max_age: u32) -> SliceOverlay {
        SliceOverlay::new(id(0), OverlayConfig { capacity, max_age })
    }

    fn two_slices() -> Partition {
        Partition::equal(2).unwrap()
    }

    #[test]
    fn admits_only_co_slice_candidates() {
        let part = two_slices();
        let mut ov = overlay(8, 10);
        // Owner estimate 0.8 → upper slice. Candidates span both slices.
        ov.observe(0.8, &part, vec![(id(1), 0.9), (id(2), 0.2), (id(3), 0.6)]);
        let neighbors: Vec<NodeId> = ov.neighbors().collect();
        assert!(neighbors.contains(&id(1)));
        assert!(neighbors.contains(&id(3)));
        assert!(!neighbors.contains(&id(2)), "0.2 is the lower slice");
        assert_eq!(ov.slice().unwrap().as_usize(), 1);
    }

    #[test]
    fn ignores_self_pairs() {
        let part = two_slices();
        let mut ov = overlay(8, 10);
        ov.observe(0.8, &part, vec![(id(0), 0.8)]);
        assert!(ov.is_empty());
    }

    #[test]
    fn flushes_on_slice_change() {
        let part = two_slices();
        let mut ov = overlay(8, 10);
        ov.observe(0.8, &part, vec![(id(1), 0.9)]);
        assert_eq!(ov.len(), 1);
        assert_eq!(ov.flushes(), 0);
        // Estimate drifts into the lower slice: table must flush.
        ov.observe(0.3, &part, vec![]);
        assert!(ov.is_empty());
        assert_eq!(ov.flushes(), 1);
        assert_eq!(ov.slice().unwrap().as_usize(), 0);
    }

    #[test]
    fn first_observation_is_not_a_flush() {
        let part = two_slices();
        let mut ov = overlay(8, 10);
        ov.observe(0.8, &part, vec![]);
        assert_eq!(ov.flushes(), 0);
    }

    #[test]
    fn reconfirmation_resets_age_and_unconfirmed_age_out() {
        let part = two_slices();
        let mut ov = overlay(8, 2);
        ov.observe(0.8, &part, vec![(id(1), 0.9), (id(2), 0.95)]);
        // Keep confirming 1, never 2.
        for _ in 0..3 {
            ov.observe(0.8, &part, vec![(id(1), 0.9)]);
        }
        let neighbors: Vec<NodeId> = ov.neighbors().collect();
        assert!(neighbors.contains(&id(1)), "confirmed neighbor kept");
        assert!(!neighbors.contains(&id(2)), "unconfirmed neighbor aged out");
    }

    #[test]
    fn neighbor_moving_slice_is_evicted_immediately() {
        let part = two_slices();
        let mut ov = overlay(8, 10);
        ov.observe(0.8, &part, vec![(id(1), 0.9)]);
        assert_eq!(ov.len(), 1);
        // Node 1 now publishes a lower-slice estimate.
        ov.observe(0.8, &part, vec![(id(1), 0.1)]);
        assert!(ov.is_empty());
    }

    #[test]
    fn capacity_is_respected_with_oldest_evicted() {
        let part = two_slices();
        let mut ov = overlay(2, 10);
        ov.observe(0.8, &part, vec![(id(1), 0.9)]);
        ov.observe(0.8, &part, vec![(id(2), 0.9)]);
        // Table full with 1 (age 1) and 2 (age 0); adding 3 evicts 1.
        ov.observe(0.8, &part, vec![(id(3), 0.9)]);
        let neighbors: Vec<NodeId> = ov.neighbors().collect();
        assert_eq!(neighbors.len(), 2);
        assert!(!neighbors.contains(&id(1)), "oldest evicted");
        assert!(neighbors.contains(&id(2)));
        assert!(neighbors.contains(&id(3)));
    }

    #[test]
    fn remove_dead_prunes_departed() {
        let part = two_slices();
        let mut ov = overlay(8, 10);
        ov.observe(0.8, &part, vec![(id(1), 0.9), (id(2), 0.95)]);
        ov.remove_dead(&|n| n == id(2));
        let neighbors: Vec<NodeId> = ov.neighbors().collect();
        assert_eq!(neighbors, vec![id(2)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = overlay(0, 10);
    }
}
