//! # dslice-overlay
//!
//! Slice-connected overlay maintenance — the service layer the paper's
//! definition of slicing promises:
//!
//! > The slicing service enables peers in a large-scale unstructured network
//! > to self-organize into a partitioning, where partitions (slices) are
//! > **connected overlay networks** that represent a given percentage of
//! > some resource. Such slices can be allocated to specific applications
//! > later on. (§1.1)
//!
//! The slicing protocols of `dslice-algorithms` give every node a *slice
//! estimate*; this crate turns co-slice estimates into *links*. Each node
//! runs a [`SliceOverlay`]: it watches the stream of `(peer, estimate)`
//! pairs its peer-sampling view already delivers, keeps a bounded set of
//! neighbors it believes share its slice, ages them out as estimates drift,
//! and flushes itself when its own slice changes. No extra messages are
//! required — the overlay is a pure consumer of the gossip the slicing
//! protocol already pays for.
//!
//! [`graph`] provides the evaluation side: connected components, intra-slice
//! link precision, and per-slice connectivity reports used by the tests and
//! the `slice_overlay` example to verify that every slice indeed converges
//! to (and stays) a connected overlay, including under churn.
//!
//! ## Example
//!
//! ```
//! use dslice_core::{NodeId, Partition};
//! use dslice_overlay::{OverlayConfig, SliceOverlay};
//!
//! let partition = Partition::equal(2).unwrap();
//! let mut overlay = SliceOverlay::new(NodeId::new(1), OverlayConfig::default());
//!
//! // One maintenance round: my estimate 0.9 (upper slice); two candidates
//! // from my gossip view, one co-slice, one not.
//! overlay.observe(0.9, &partition, vec![
//!     (NodeId::new(2), 0.8),  // upper slice → admitted
//!     (NodeId::new(3), 0.2),  // lower slice → ignored
//! ]);
//! assert_eq!(overlay.neighbors().collect::<Vec<_>>(), vec![NodeId::new(2)]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod maintainer;

pub use graph::{components, ConnectivityReport, SliceConnectivity};
pub use maintainer::{OverlayConfig, SliceOverlay};
