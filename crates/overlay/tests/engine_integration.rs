//! End-to-end: slicing protocol + peer sampling + overlay maintenance.
//!
//! Runs the ranking protocol in the cycle simulator, feeds every node's view
//! stream into a [`SliceOverlay`], and verifies the paper's service-level
//! property: each slice converges to a *connected* overlay network with
//! high link precision — and recovers after churn.

use dslice_core::{NodeId, Partition};
use dslice_overlay::{ConnectivityReport, OverlayConfig, SliceOverlay};
use dslice_sim::{ChurnSchedule, CorrelatedChurn, Engine, ProtocolKind, SimConfig};
use std::collections::{BTreeMap, HashMap};

/// Drives `engine` for `cycles`, maintaining one overlay per live node.
fn run_with_overlays(
    engine: &mut Engine,
    overlays: &mut HashMap<NodeId, SliceOverlay>,
    cfg: OverlayConfig,
    cycles: usize,
) {
    for _ in 0..cycles {
        engine.step();

        // Estimates of every live node, for candidate lookup.
        let estimates: HashMap<NodeId, f64> = engine
            .snapshot()
            .into_iter()
            .map(|(id, _, est)| (id, est))
            .collect();

        // Churn cleanup: drop overlays of departed nodes, create for joiners.
        overlays.retain(|id, _| estimates.contains_key(id));
        for ov in overlays.values_mut() {
            ov.remove_dead(&|id| estimates.contains_key(&id));
        }

        let partition = engine.partition().clone();
        for (owner, neighbor_ids) in engine.view_snapshot() {
            let my_estimate = estimates[&owner];
            let candidates: Vec<(NodeId, f64)> = neighbor_ids
                .into_iter()
                .filter_map(|id| estimates.get(&id).map(|&e| (id, e)))
                .collect();
            overlays
                .entry(owner)
                .or_insert_with(|| SliceOverlay::new(owner, cfg))
                .observe(my_estimate, &partition, candidates);
        }
    }
}

fn report(engine: &Engine, overlays: &HashMap<NodeId, SliceOverlay>) -> ConnectivityReport {
    let snapshot = engine.snapshot();
    let truth_idx = dslice_core::rank::true_slices(
        snapshot.iter().map(|&(id, a, _)| (id, a)),
        engine.partition(),
    );
    let truth: BTreeMap<NodeId, usize> = truth_idx
        .into_iter()
        .map(|(id, s)| (id, s.as_usize()))
        .collect();
    let links: HashMap<NodeId, Vec<NodeId>> = overlays
        .iter()
        .map(|(&id, ov)| (id, ov.neighbors().collect()))
        .collect();
    ConnectivityReport::new(&truth, &links, engine.partition().len())
}

#[test]
fn slices_become_connected_overlays() {
    let slices = 4;
    let cfg = SimConfig {
        n: 400,
        view_size: 12,
        partition: Partition::equal(slices).unwrap(),
        seed: 31,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    let mut overlays = HashMap::new();
    let ov_cfg = OverlayConfig {
        capacity: 10,
        max_age: 15,
    };
    run_with_overlays(&mut engine, &mut overlays, ov_cfg, 120);

    let report = report(&engine, &overlays);
    assert!(
        report.worst_giant_fraction() > 0.9,
        "some slice fragmented: {:?}",
        report
            .slices
            .iter()
            .map(|s| (s.slice, s.giant_fraction()))
            .collect::<Vec<_>>()
    );
    assert!(
        report.mean_precision() > 0.8,
        "too many cross-slice links: precision {:.3}",
        report.mean_precision()
    );
    // Every node participates.
    let linked: usize = report.slices.iter().map(|s| s.linked_members).sum();
    assert!(
        linked >= 400 * 95 / 100,
        "only {linked}/400 nodes hold overlay links"
    );
}

#[test]
fn overlays_recover_after_correlated_churn_burst() {
    let cfg = SimConfig {
        n: 300,
        view_size: 12,
        partition: Partition::equal(3).unwrap(),
        seed: 33,
        ..SimConfig::default()
    };
    let schedule = ChurnSchedule {
        rate: 0.01,
        period: 1,
        stop_after: Some(80), // burst during the first 80 cycles
    };
    // Sliding-window ranking: the variant §5.3.4 introduces precisely so
    // rank estimates recover from attribute-correlated churn.
    let mut engine = Engine::new(cfg, ProtocolKind::SlidingRanking { window: 400 })
        .unwrap()
        .with_churn(Box::new(CorrelatedChurn::new(schedule, 1.0)));
    let mut overlays = HashMap::new();
    let ov_cfg = OverlayConfig {
        capacity: 10,
        max_age: 12,
    };

    // Converge, churn burst, then recovery window.
    run_with_overlays(&mut engine, &mut overlays, ov_cfg, 200);

    let report = report(&engine, &overlays);
    assert!(
        report.worst_giant_fraction() > 0.85,
        "post-churn fragmentation: {:?}",
        report
            .slices
            .iter()
            .map(|s| (s.slice, s.giant_fraction()))
            .collect::<Vec<_>>()
    );
    // No overlay may reference a departed node.
    let alive: HashMap<NodeId, ()> = engine
        .snapshot()
        .into_iter()
        .map(|(id, _, _)| (id, ()))
        .collect();
    for (owner, ov) in &overlays {
        assert!(alive.contains_key(owner));
        for n in ov.neighbors() {
            assert!(alive.contains_key(&n), "{owner} links departed node {n}");
        }
    }
}

#[test]
fn slice_changes_flush_tables() {
    // Under attribute-correlated churn, boundary nodes change slice and must
    // flush; the flush counter provides visibility.
    let cfg = SimConfig {
        n: 200,
        view_size: 10,
        partition: Partition::equal(4).unwrap(),
        seed: 35,
        ..SimConfig::default()
    };
    let schedule = ChurnSchedule {
        rate: 0.02,
        period: 1,
        stop_after: Some(50),
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking)
        .unwrap()
        .with_churn(Box::new(CorrelatedChurn::new(schedule, 1.0)));
    let mut overlays = HashMap::new();
    run_with_overlays(&mut engine, &mut overlays, OverlayConfig::default(), 100);
    let total_flushes: u64 = overlays.values().map(SliceOverlay::flushes).sum();
    assert!(
        total_flushes > 0,
        "correlated churn shifts ranks; some node must have changed slice"
    );
}
