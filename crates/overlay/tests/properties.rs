//! Property tests: `SliceOverlay` invariants under arbitrary observation
//! streams, and `components` graph laws.

use dslice_core::{NodeId, Partition};
use dslice_overlay::{components, OverlayConfig, SliceOverlay};
use proptest::prelude::*;
use std::collections::HashMap;

/// An arbitrary observation: the owner's estimate plus up to 8 candidates.
fn observation() -> impl Strategy<Value = (f64, Vec<(u64, f64)>)> {
    (
        0.001f64..=1.0,
        proptest::collection::vec((0u64..32, 0.001f64..=1.0), 0..8),
    )
}

proptest! {
    /// Structural invariants hold after any sequence of observations:
    /// bounded size, no self-pointer, and every neighbor admitted co-slice.
    #[test]
    fn overlay_invariants_under_random_streams(
        capacity in 1usize..6,
        max_age in 0u32..8,
        slices in 2usize..6,
        stream in proptest::collection::vec(observation(), 1..40),
    ) {
        let owner = NodeId::new(0);
        let partition = Partition::equal(slices).unwrap();
        let mut ov = SliceOverlay::new(owner, OverlayConfig { capacity, max_age });
        for (estimate, candidates) in stream {
            let cands: Vec<(NodeId, f64)> = candidates
                .iter()
                .map(|&(id, e)| (NodeId::new(id), e))
                .collect();
            ov.observe(estimate, &partition, cands);

            prop_assert!(ov.len() <= capacity, "capacity violated");
            let my_slice = ov.slice().unwrap();
            prop_assert_eq!(my_slice, partition.slice_of(estimate));
            let neighbors: Vec<NodeId> = ov.neighbors().collect();
            prop_assert!(!neighbors.contains(&owner), "self-pointer");
            // Distinct ids.
            let mut ids = neighbors.clone();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), neighbors.len(), "duplicate neighbor");
        }
    }

    /// remove_dead is exactly a filter: keeps the alive, drops the rest,
    /// changes nothing else.
    #[test]
    fn remove_dead_is_a_filter(
        candidates in proptest::collection::vec((1u64..32, 0.55f64..=1.0), 0..12),
        alive_mask in 0u32..,
    ) {
        let partition = Partition::equal(2).unwrap();
        let mut ov = SliceOverlay::new(
            NodeId::new(0),
            OverlayConfig { capacity: 16, max_age: 10 },
        );
        let cands: Vec<(NodeId, f64)> = candidates
            .iter()
            .map(|&(id, e)| (NodeId::new(id), e))
            .collect();
        ov.observe(0.9, &partition, cands);
        let before: Vec<NodeId> = ov.neighbors().collect();
        let is_alive = |id: NodeId| (alive_mask >> (id.as_u64() % 32)) & 1 == 1;
        ov.remove_dead(&is_alive);
        let after: Vec<NodeId> = ov.neighbors().collect();
        let expected: Vec<NodeId> = before.iter().copied().filter(|&id| is_alive(id)).collect();
        prop_assert_eq!(after, expected);
    }

    /// Components partition the node set: disjoint, covering, and each
    /// component's nodes are mutually reachable while distinct components
    /// share no edge.
    #[test]
    fn components_partition_nodes(
        edges in proptest::collection::vec((0u64..24, 0u64..24), 0..60),
    ) {
        let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(u, v) in &edges {
            adjacency.entry(NodeId::new(u)).or_default().push(NodeId::new(v));
        }
        let comps = components(&adjacency);

        // Disjoint cover of every mentioned node.
        let mut seen: Vec<NodeId> = comps.iter().flatten().copied().collect();
        let total = seen.len();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), total, "components overlap");
        let mut mentioned: Vec<NodeId> = adjacency
            .iter()
            .flat_map(|(&u, vs)| std::iter::once(u).chain(vs.iter().copied()))
            .collect();
        mentioned.sort_unstable();
        mentioned.dedup();
        prop_assert_eq!(seen, mentioned, "components miss nodes");

        // No cross-component edge (undirected reading).
        let comp_of: HashMap<NodeId, usize> = comps
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.iter().map(move |&n| (n, i)))
            .collect();
        for &(u, v) in &edges {
            prop_assert_eq!(
                comp_of[&NodeId::new(u)],
                comp_of[&NodeId::new(v)],
                "edge {}-{} crosses components", u, v
            );
        }

        // Sorted by descending size.
        for w in comps.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
    }
}
