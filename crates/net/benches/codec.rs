//! Wire-codec throughput: encode/decode cost for the three message shapes
//! that dominate traffic (swap proposals, attribute updates, view
//! exchanges).

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dslice_core::{Attribute, NodeId, ProtocolMsg, ViewEntry};
use dslice_net::{decode_frame, encode_frame, WireMsg};

fn swap_msg() -> WireMsg {
    WireMsg {
        reply_to: "127.0.0.1:40771".into(),
        msg: ProtocolMsg::SwapReq {
            from: NodeId::new(123),
            r: 0.4217,
            a: Attribute::new(98_765.432_1).unwrap(),
        },
    }
}

fn update_msg() -> WireMsg {
    WireMsg {
        reply_to: "127.0.0.1:40771".into(),
        msg: ProtocolMsg::Update {
            from: NodeId::new(123),
            a: Attribute::new(98_765.432_1).unwrap(),
        },
    }
}

fn view_msg(entries: usize) -> WireMsg {
    WireMsg {
        reply_to: "127.0.0.1:40771".into(),
        msg: ProtocolMsg::ViewReq {
            from: NodeId::new(123),
            entries: (0..entries)
                .map(|i| {
                    ViewEntry::with_age(
                        NodeId::new(i as u64),
                        i as u32,
                        Attribute::new(i as f64 * 1.7).unwrap(),
                        (i as f64 + 1.0) / (entries as f64 + 1.0),
                    )
                })
                .collect(),
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let cases = [
        ("swap_req", swap_msg()),
        ("update", update_msg()),
        ("view_20", view_msg(20)),
        ("view_100", view_msg(100)),
    ];
    for (name, msg) in &cases {
        let frame = encode_frame(msg).unwrap();
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", name), msg, |b, msg| {
            b.iter(|| encode_frame(msg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("decode", name), &frame, |b, frame| {
            b.iter(|| {
                let mut buf = BytesMut::from(&frame[..]);
                decode_frame(&mut buf).unwrap().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
