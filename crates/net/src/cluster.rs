//! A localhost cluster harness.
//!
//! [`LocalCluster`] spins up `n` [`NodeRuntime`] instances
//! on loopback, seeds every view with random bootstrap neighbors (the
//! out-of-band introduction every deployed gossip system needs), lets the
//! protocols run in real time, and harvests the slice assignments into a
//! [`ClusterReport`] whose SDM is directly comparable with the simulator's.

use crate::codec::{write_frame, WireMsg};
use crate::node::{Directory, NodeConfig, NodeHandle, NodeRuntime, NodeSnapshot};
use dslice_algorithms::ProtocolKind;
use dslice_core::{metrics, rank, Attribute, NodeId, Partition, ProtocolMsg, ViewEntry};
use dslice_gossip::SamplerKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::Mutex;

/// Configuration of a local cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Attribute values, one per node (`n` = length).
    pub attributes: Vec<Attribute>,
    /// The global slice partition.
    pub partition: Partition,
    /// Which protocol every node runs.
    pub protocol: ProtocolKind,
    /// Peer-sampling substrate.
    pub sampler: SamplerKind,
    /// Wire-level fault injection applied at every node.
    pub faults: crate::node::FaultPlan,
    /// View size `c`.
    pub view_size: usize,
    /// Gossip period.
    pub period: Duration,
    /// How many random bootstrap neighbors each node is introduced to.
    pub bootstrap_degree: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// A sensible small-cluster default around the given attributes.
    pub fn new(attributes: Vec<Attribute>, partition: Partition, protocol: ProtocolKind) -> Self {
        ClusterConfig {
            attributes,
            partition,
            protocol,
            sampler: SamplerKind::Cyclon,
            faults: crate::node::FaultPlan::none(),
            view_size: 8,
            period: Duration::from_millis(20),
            bootstrap_degree: 4,
            seed: 0xD51CE,
        }
    }
}

/// The harvested outcome of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Final state of every node.
    pub nodes: Vec<NodeSnapshot>,
    /// The partition the run used.
    pub partition: Partition,
}

impl ClusterReport {
    /// The slice disorder measure over the final estimates.
    pub fn sdm(&self) -> f64 {
        let population: Vec<(NodeId, Attribute, f64)> = self
            .nodes
            .iter()
            .map(|s| (s.id, s.attribute, s.estimate))
            .collect();
        metrics::sdm(&self.partition, &population)
    }

    /// Fraction of nodes whose believed slice equals their true slice.
    pub fn accuracy(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        let truth = rank::true_slices(
            self.nodes.iter().map(|s| (s.id, s.attribute)),
            &self.partition,
        );
        let correct = self
            .nodes
            .iter()
            .filter(|s| self.partition.slice_of(s.estimate) == truth[&s.id])
            .count();
        correct as f64 / self.nodes.len() as f64
    }

    /// Per-node assignment: `(id, attribute, estimate, believed slice)`.
    pub fn assignments(&self) -> Vec<(NodeId, Attribute, f64, usize)> {
        self.nodes
            .iter()
            .map(|s| {
                (
                    s.id,
                    s.attribute,
                    s.estimate,
                    self.partition.slice_of(s.estimate).as_usize(),
                )
            })
            .collect()
    }
}

/// A running local cluster.
#[derive(Debug)]
pub struct LocalCluster {
    handles: Vec<NodeHandle>,
    directory: Directory,
    partition: Partition,
    /// Next identity for [`join_node`](Self::join_node); never reused.
    next_id: u64,
}

impl LocalCluster {
    /// Spawns the cluster and performs the bootstrap introductions.
    pub async fn spawn(cfg: ClusterConfig) -> std::io::Result<LocalCluster> {
        assert!(
            !cfg.attributes.is_empty(),
            "cluster needs at least one node"
        );
        assert!(cfg.view_size >= 1, "view size must be at least 1");
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let mut handles = Vec::with_capacity(cfg.attributes.len());

        for (i, &attribute) in cfg.attributes.iter().enumerate() {
            let node_cfg = NodeConfig {
                id: NodeId::new(i as u64),
                attribute,
                partition: cfg.partition.clone(),
                protocol: cfg.protocol,
                sampler: cfg.sampler,
                view_size: cfg.view_size,
                period: cfg.period,
                seed: cfg.seed.wrapping_add(i as u64),
                faults: cfg.faults,
            };
            handles.push(NodeRuntime::spawn(node_cfg, directory.clone()).await?);
        }

        let cluster = LocalCluster {
            handles,
            directory,
            partition: cfg.partition.clone(),
            next_id: cfg.attributes.len() as u64,
        };
        cluster.bootstrap(&cfg).await;
        Ok(cluster)
    }

    /// Introduces every node to `bootstrap_degree` random peers by sending
    /// it a `ViewAck` carrying their descriptors (the discovery handshake).
    async fn bootstrap(&self, cfg: &ClusterConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB007);
        let n = self.handles.len();
        let addresses: HashMap<NodeId, std::net::SocketAddr> = self.directory.lock().await.clone();

        for (i, handle) in self.handles.iter().enumerate() {
            let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            others.shuffle(&mut rng);
            let entries: Vec<ViewEntry> = others
                .into_iter()
                .take(cfg.bootstrap_degree)
                .map(|j| {
                    ViewEntry::new(
                        self.handles[j].id,
                        cfg.attributes[j],
                        rng.gen_range(0.0..1.0f64).max(f64::MIN_POSITIVE),
                    )
                })
                .collect();
            if entries.is_empty() {
                continue;
            }
            let intro = WireMsg {
                // The introduction comes "from" the first bootstrap peer so
                // the receiver can reply to a real node.
                reply_to: addresses[&entries[0].id].to_string(),
                msg: ProtocolMsg::ViewAck {
                    from: entries[0].id,
                    entries,
                },
            };
            if let Ok(mut stream) = TcpStream::connect(handle.addr).await {
                let _ = write_frame(&mut stream, &intro).await;
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the cluster is empty (never true after `spawn`).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Live snapshots of all nodes.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.handles.iter().map(|h| h.snapshot()).collect()
    }

    /// The SDM of the current live snapshots.
    pub fn live_sdm(&self) -> f64 {
        let population: Vec<(NodeId, Attribute, f64)> = self
            .snapshots()
            .into_iter()
            .map(|s| (s.id, s.attribute, s.estimate))
            .collect();
        metrics::sdm(&self.partition, &population)
    }

    /// Lets the cluster run for the given wall-clock duration.
    pub async fn run_for(&self, duration: Duration) {
        tokio::time::sleep(duration).await;
    }

    /// Dynamic membership: spawns one additional node mid-run and introduces
    /// it to `bootstrap_degree` random live peers. Returns its id.
    ///
    /// This is the network-runtime counterpart of the simulator's churn
    /// joiner path — fresh identity, fresh protocol state, bootstrapped view.
    pub async fn join_node(
        &mut self,
        cfg: &ClusterConfig,
        attribute: Attribute,
    ) -> std::io::Result<NodeId> {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let node_cfg = NodeConfig {
            id,
            attribute,
            partition: self.partition.clone(),
            protocol: cfg.protocol,
            sampler: cfg.sampler,
            view_size: cfg.view_size,
            period: cfg.period,
            seed: cfg.seed.wrapping_add(id.as_u64()).wrapping_mul(0x9E37),
            faults: cfg.faults,
        };
        let handle = NodeRuntime::spawn(node_cfg, self.directory.clone()).await?;

        // Introduce the newcomer to a few live peers.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ id.as_u64());
        let peers: Vec<(NodeId, Attribute, std::net::SocketAddr)> = {
            let dir = self.directory.lock().await;
            self.handles
                .iter()
                .filter_map(|h| {
                    dir.get(&h.id)
                        .map(|addr| (h.id, h.snapshot().attribute, *addr))
                })
                .collect()
        };
        let mut sample = peers;
        sample.shuffle(&mut rng);
        sample.truncate(cfg.bootstrap_degree);
        if let Some(first) = sample.first() {
            let entries: Vec<ViewEntry> = sample
                .iter()
                .map(|(pid, pattr, _)| ViewEntry::new(*pid, *pattr, 0.5))
                .collect();
            let intro = WireMsg {
                reply_to: first.2.to_string(),
                msg: ProtocolMsg::ViewAck {
                    from: first.0,
                    entries,
                },
            };
            if let Ok(mut stream) = TcpStream::connect(handle.addr).await {
                let _ = write_frame(&mut stream, &intro).await;
            }
        }
        self.handles.push(handle);
        Ok(id)
    }

    /// Dynamic membership: kills the node with the given id (abrupt
    /// departure — peers discover it through failed connections, which
    /// gossip tolerates as message loss). Returns its final snapshot, or
    /// `None` if the id is unknown.
    pub async fn kill_node(&mut self, id: NodeId) -> Option<NodeSnapshot> {
        let idx = self.handles.iter().position(|h| h.id == id)?;
        let handle = self.handles.swap_remove(idx);
        self.directory.lock().await.remove(&id);
        Some(handle.shutdown().await)
    }

    /// Ids of the currently live nodes.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.handles.iter().map(|h| h.id).collect()
    }

    /// Shuts every node down and harvests the final report.
    pub async fn shutdown(self) -> ClusterReport {
        let mut nodes = Vec::with_capacity(self.handles.len());
        for handle in self.handles {
            nodes.push(handle.shutdown().await);
        }
        ClusterReport {
            nodes,
            partition: self.partition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(values: &[f64]) -> Vec<Attribute> {
        values.iter().map(|&v| Attribute::new(v).unwrap()).collect()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn small_ranking_cluster_converges() {
        let values: Vec<f64> = (0..16).map(|i| i as f64 * 10.0).collect();
        let cfg = ClusterConfig {
            period: Duration::from_millis(10),
            bootstrap_degree: 5,
            ..ClusterConfig::new(
                attrs(&values),
                Partition::equal(2).unwrap(),
                ProtocolKind::Ranking,
            )
        };
        let cluster = LocalCluster::spawn(cfg).await.unwrap();
        assert_eq!(cluster.len(), 16);
        cluster.run_for(Duration::from_millis(900)).await;
        let report = cluster.shutdown().await;
        // With 2 slices and well-spread attributes, most nodes must know
        // their half after ~90 periods.
        let acc = report.accuracy();
        assert!(
            acc >= 0.75,
            "accuracy {acc} too low; sdm = {}",
            report.sdm()
        );
        // Everyone ticked.
        for s in &report.nodes {
            assert!(s.ticks > 10, "node {} only ticked {}", s.id, s.ticks);
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn ordering_cluster_runs_and_reports() {
        let values: Vec<f64> = (0..12).map(|i| (i * 7 % 12) as f64).collect();
        let cfg = ClusterConfig {
            period: Duration::from_millis(10),
            bootstrap_degree: 4,
            ..ClusterConfig::new(
                attrs(&values),
                Partition::equal(3).unwrap(),
                ProtocolKind::ModJk,
            )
        };
        let cluster = LocalCluster::spawn(cfg).await.unwrap();
        let sdm_start = cluster.live_sdm();
        cluster.run_for(Duration::from_millis(800)).await;
        let report = cluster.shutdown().await;
        let sdm_end = report.sdm();
        // The ordering protocol must not leave the system more disordered
        // than a random assignment; typically it improves markedly.
        assert!(
            sdm_end <= sdm_start,
            "SDM should not grow: {sdm_start} -> {sdm_end}"
        );
        assert_eq!(report.assignments().len(), 12);
    }
}
