//! A supervised localhost cluster harness.
//!
//! [`LocalCluster`] spins up `n` [`NodeRuntime`] instances on loopback,
//! seeds every view with random bootstrap neighbors (the out-of-band
//! introduction every deployed gossip system needs), lets the protocols run
//! in real time, and harvests the slice assignments into a
//! [`ClusterReport`] whose SDM is directly comparable with the simulator's.
//!
//! Unlike a plain join-at-the-end harness, the cluster *supervises* its
//! nodes: [`run_for`](LocalCluster::run_for) replays the configured
//! [`ChaosPlan`] (crashes, restarts, refusal/stall windows), reaps every
//! task exit into a structured [`NodeExitRecord`] — a panicking node never
//! takes the harness down — and restarts crashed nodes under the
//! [`RestartPolicy`] with capped backoff. Exit records and per-node
//! retry/timeout/eviction counters are folded into the report so
//! degradation under faults is observable, not silent.

use crate::chaos::{ChaosAction, ChaosEvent, ChaosPlan};
use crate::codec::{write_frame, WireMsg};
use crate::node::{
    AcceptGate, Directory, NodeConfig, NodeExit, NodeHandle, NodeRuntime, NodeSnapshot,
};
use crate::retry::RetryPolicy;
use crate::supervisor::{NodeExitKind, NodeExitRecord, RestartPolicy};
use dslice_algorithms::ProtocolKind;
use dslice_core::{metrics, rank, Attribute, NodeId, Partition, ProtocolMsg, ViewEntry};
use dslice_gossip::SamplerKind;
use dslice_obs::{labeled, FlightRecorder, Registry, TraceConfig, TraceKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::TcpStream;
use tokio::sync::Mutex;

/// Configuration of a local cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Attribute values, one per node (`n` = length).
    pub attributes: Vec<Attribute>,
    /// The global slice partition.
    pub partition: Partition,
    /// Which protocol every node runs.
    pub protocol: ProtocolKind,
    /// Peer-sampling substrate.
    pub sampler: SamplerKind,
    /// Wire-level fault injection applied at every node.
    pub faults: crate::node::FaultPlan,
    /// View size `c`.
    pub view_size: usize,
    /// Gossip period.
    pub period: Duration,
    /// How many random bootstrap neighbors each node is introduced to.
    pub bootstrap_degree: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Outbound timeout/retry policy; `None` derives one from `period`
    /// via [`RetryPolicy::for_period`].
    pub retry: Option<RetryPolicy>,
    /// Process-level fault schedule replayed during
    /// [`run_for`](LocalCluster::run_for).
    pub chaos: ChaosPlan,
    /// When the supervisor restarts crashed nodes.
    pub restart: RestartPolicy,
    /// Fault-injection hook: the node at this index panics after completing
    /// this many ticks (initial spawn only; a supervised restart clears it).
    pub die_after_ticks: Option<(usize, u64)>,
}

impl ClusterConfig {
    /// A sensible small-cluster default around the given attributes.
    pub fn new(attributes: Vec<Attribute>, partition: Partition, protocol: ProtocolKind) -> Self {
        ClusterConfig {
            attributes,
            partition,
            protocol,
            sampler: SamplerKind::Cyclon,
            faults: crate::node::FaultPlan::none(),
            view_size: 8,
            period: Duration::from_millis(20),
            bootstrap_degree: 4,
            seed: 0xD51CE,
            retry: None,
            chaos: ChaosPlan::new(),
            restart: RestartPolicy::default(),
            die_after_ticks: None,
        }
    }
}

/// Aggregate fault-handling counters for a run: network counters summed
/// over the nodes alive at shutdown, plus supervision counts from the exit
/// records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTotals {
    /// Delivery retries across surviving nodes.
    pub retries: u64,
    /// Connect/write timeouts across surviving nodes.
    pub timeouts: u64,
    /// Messages undelivered after all attempts.
    pub send_failures: u64,
    /// Dead-peer evictions performed.
    pub evictions: u64,
    /// Messages dropped by wire-level fault injection.
    pub dropped: u64,
    /// Messages shed because a link queue was full.
    pub queue_drops: u64,
    /// Node tasks that panicked.
    pub crashes: u64,
    /// Node tasks killed by the chaos plan.
    pub chaos_kills: u64,
    /// Restarts performed (by policy or by plan).
    pub restarts: u64,
    /// Deepest outbound link queue observed by any node (max-folded, not
    /// summed: it is a high-water mark, not a volume).
    pub peak_queue_depth: u64,
}

/// The harvested outcome of a cluster run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Final state of every node alive at shutdown.
    pub nodes: Vec<NodeSnapshot>,
    /// The partition the run used.
    pub partition: Partition,
    /// Every reaped exit, in reap order.
    pub exits: Vec<NodeExitRecord>,
    /// Aggregate fault-handling counters.
    pub totals: ClusterTotals,
}

impl ClusterReport {
    /// The slice disorder measure over the final estimates.
    pub fn sdm(&self) -> f64 {
        let population: Vec<(NodeId, Attribute, f64)> = self
            .nodes
            .iter()
            .map(|s| (s.id, s.attribute, s.estimate))
            .collect();
        metrics::sdm(&self.partition, &population)
    }

    /// Fraction of nodes whose believed slice equals their true slice.
    pub fn accuracy(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        let truth = rank::true_slices(
            self.nodes.iter().map(|s| (s.id, s.attribute)),
            &self.partition,
        );
        let correct = self
            .nodes
            .iter()
            .filter(|s| self.partition.slice_of(s.estimate) == truth[&s.id])
            .count();
        correct as f64 / self.nodes.len() as f64
    }

    /// Per-node assignment: `(id, attribute, estimate, believed slice)`.
    pub fn assignments(&self) -> Vec<(NodeId, Attribute, f64, usize)> {
        self.nodes
            .iter()
            .map(|s| {
                (
                    s.id,
                    s.attribute,
                    s.estimate,
                    self.partition.slice_of(s.estimate).as_usize(),
                )
            })
            .collect()
    }
}

/// Where a supervised node slot currently stands.
#[derive(Debug)]
enum SlotState {
    /// Alive, handle attached.
    Running(NodeHandle),
    /// Crashed; the supervisor restarts it at `due`.
    Backoff {
        /// When the restart fires.
        due: Instant,
    },
    /// Dead with no scheduled restart (chaos kill, exhausted restarts, or
    /// a mid-run clean exit). A scripted `Restart` event can revive it.
    Down,
    /// Permanently departed ([`LocalCluster::kill_node`]); never revived.
    Retired,
}

/// One supervised node: identity, lifecycle state, restart bookkeeping.
#[derive(Debug)]
struct Slot {
    id: NodeId,
    attribute: Attribute,
    state: SlotState,
    /// Restarts performed so far (policy and scripted).
    restarts: u32,
    /// Spawn generation, folded into the respawn seed so a restarted node
    /// does not replay its previous random choices.
    generation: u64,
    /// When a refusal/stall window ends and the gate reopens.
    gate_restore: Option<Instant>,
    /// Last snapshot observed when the node was reaped.
    last: NodeSnapshot,
}

/// A live metrics stream: the scraped registry is appended to `path` as one
/// JSON object per line, every `every`.
#[derive(Debug)]
struct MetricsStream {
    path: std::path::PathBuf,
    every: Duration,
    due: Instant,
}

/// A running, supervised local cluster.
#[derive(Debug)]
pub struct LocalCluster {
    cfg: ClusterConfig,
    retry: RetryPolicy,
    slots: Vec<Slot>,
    directory: Directory,
    partition: Partition,
    /// Next identity for [`join_node`](Self::join_node); never reused.
    next_id: u64,
    exits: Vec<NodeExitRecord>,
    /// Chaos schedule (sorted) and how much of it has fired.
    schedule: Vec<ChaosEvent>,
    fired: usize,
    started: Instant,
    /// Flight recorder for supervision-level events (chaos, exits, fault
    /// counter deltas). Strictly observational.
    recorder: Option<FlightRecorder>,
    /// Last fault counters seen per node, so the recorder logs deltas
    /// instead of repeating totals: `[retries, timeouts, send_failures,
    /// evictions, queue_drops]`.
    trace_seen: HashMap<NodeId, [u64; 5]>,
    /// Live metrics streaming, serviced by [`run_for`](Self::run_for).
    stream: Option<MetricsStream>,
}

impl LocalCluster {
    /// Spawns the cluster and performs the bootstrap introductions.
    pub async fn spawn(cfg: ClusterConfig) -> io::Result<LocalCluster> {
        assert!(
            !cfg.attributes.is_empty(),
            "cluster needs at least one node"
        );
        assert!(cfg.view_size >= 1, "view size must be at least 1");
        cfg.faults.validate()?;
        cfg.chaos.validate()?;
        cfg.restart.validate()?;
        let retry = cfg
            .retry
            .unwrap_or_else(|| RetryPolicy::for_period(cfg.period));
        retry.validate()?;

        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let mut slots = Vec::with_capacity(cfg.attributes.len());

        for (i, &attribute) in cfg.attributes.iter().enumerate() {
            let node_cfg = NodeConfig {
                id: NodeId::new(i as u64),
                attribute,
                partition: cfg.partition.clone(),
                protocol: cfg.protocol,
                sampler: cfg.sampler,
                view_size: cfg.view_size,
                period: cfg.period,
                seed: cfg.seed.wrapping_add(i as u64),
                faults: cfg.faults,
                retry,
                die_after_ticks: cfg
                    .die_after_ticks
                    .and_then(|(idx, ticks)| (idx == i).then_some(ticks)),
            };
            let handle = NodeRuntime::spawn(node_cfg, directory.clone()).await?;
            let last = handle.snapshot();
            slots.push(Slot {
                id: handle.id,
                attribute,
                state: SlotState::Running(handle),
                restarts: 0,
                generation: 0,
                gate_restore: None,
                last,
            });
        }

        let schedule = cfg.chaos.schedule();
        let cluster = LocalCluster {
            partition: cfg.partition.clone(),
            next_id: cfg.attributes.len() as u64,
            retry,
            slots,
            directory,
            exits: Vec::new(),
            schedule,
            fired: 0,
            started: Instant::now(),
            recorder: None,
            trace_seen: HashMap::new(),
            stream: None,
            cfg,
        };
        cluster.bootstrap().await;
        Ok(cluster)
    }

    /// Introduces every node to `bootstrap_degree` random peers by sending
    /// it a `ViewAck` carrying their descriptors (the discovery handshake).
    async fn bootstrap(&self) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xB007);
        let n = self.slots.len();
        let addresses: HashMap<NodeId, SocketAddr> = self.directory.lock().await.clone();

        for (i, slot) in self.slots.iter().enumerate() {
            let SlotState::Running(handle) = &slot.state else {
                continue;
            };
            let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            others.shuffle(&mut rng);
            let entries: Vec<ViewEntry> = others
                .into_iter()
                .take(self.cfg.bootstrap_degree)
                .map(|j| {
                    ViewEntry::new(
                        self.slots[j].id,
                        self.cfg.attributes[j],
                        rng.gen_range(0.0..1.0f64).max(f64::MIN_POSITIVE),
                    )
                })
                .collect();
            if entries.is_empty() {
                continue;
            }
            let intro = WireMsg {
                // The introduction comes "from" the first bootstrap peer so
                // the receiver can reply to a real node.
                reply_to: addresses[&entries[0].id].to_string(),
                msg: ProtocolMsg::ViewAck {
                    from: entries[0].id,
                    entries,
                },
            };
            if let Ok(mut stream) = TcpStream::connect(handle.addr).await {
                let _ = write_frame(&mut stream, &intro).await;
            }
        }
    }

    /// Number of currently live nodes.
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Running(_)))
            .count()
    }

    /// Whether no node is currently live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live snapshots of the currently running nodes.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.slots
            .iter()
            .filter_map(|s| match &s.state {
                SlotState::Running(h) => Some(h.snapshot()),
                _ => None,
            })
            .collect()
    }

    /// The SDM of the current live snapshots.
    pub fn live_sdm(&self) -> f64 {
        let population: Vec<(NodeId, Attribute, f64)> = self
            .snapshots()
            .into_iter()
            .map(|s| (s.id, s.attribute, s.estimate))
            .collect();
        metrics::sdm(&self.partition, &population)
    }

    /// Exit records reaped so far.
    pub fn exits(&self) -> &[NodeExitRecord] {
        &self.exits
    }

    /// Attaches a flight recorder: chaos actions, reaped exits and per-node
    /// fault-counter deltas are recorded as instants (the event `cycle` is
    /// the cluster's elapsed-ms clock). Strictly observational — attaching
    /// a recorder never changes what the cluster does.
    pub fn set_tracer(&mut self, cfg: TraceConfig) {
        self.recorder = cfg.enabled.then(|| FlightRecorder::new(cfg));
    }

    /// Detaches and returns the flight recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<FlightRecorder> {
        self.recorder.take()
    }

    /// Streams live metrics while [`run_for`](Self::run_for) runs: the
    /// scraped registry is appended to `path` as one compact JSON object
    /// per line, every `every`.
    pub fn stream_metrics(&mut self, path: impl Into<std::path::PathBuf>, every: Duration) {
        self.stream = Some(MetricsStream {
            path: path.into(),
            every,
            due: Instant::now(),
        });
    }

    /// Scrapes the live cluster into a metrics [`Registry`] under the
    /// `dslice_net_*` namespace: per-node labeled gauges plus aggregate
    /// counters folded over the live snapshots and exit records.
    pub fn scrape(&self) -> Registry {
        let mut reg = Registry::new();
        let snapshots = self.snapshots();
        reg.gauge_set(
            "dslice_net_nodes_live",
            "Nodes currently running.",
            snapshots.len() as f64,
        );
        reg.gauge_set(
            "dslice_net_uptime_ms",
            "Cluster wall-clock uptime in milliseconds.",
            self.elapsed_ms() as f64,
        );
        reg.gauge_set(
            "dslice_net_sdm",
            "Slice disorder measure over the live estimates.",
            self.live_sdm(),
        );

        let mut sums = [0u64; 7];
        let mut peak = 0u64;
        for s in &snapshots {
            let node = s.id.as_u64();
            reg.gauge_set(
                &labeled("dslice_net_node_estimate", "node", node),
                "Current rank estimate.",
                s.estimate,
            );
            reg.gauge_set(
                &labeled("dslice_net_node_ticks", "node", node),
                "Gossip ticks executed.",
                s.ticks as f64,
            );
            reg.gauge_set(
                &labeled("dslice_net_node_uptime_ms", "node", node),
                "Wall-clock ms since this node instance started.",
                s.uptime_ms as f64,
            );
            reg.gauge_set(
                &labeled("dslice_net_node_peak_queue_depth", "node", node),
                "Deepest outbound link queue this node has seen.",
                s.peak_queue_depth as f64,
            );
            let parts = [
                s.retries,
                s.timeouts,
                s.send_failures,
                s.evictions,
                s.queue_drops,
                s.dropped,
                s.ticks,
            ];
            for (sum, v) in sums.iter_mut().zip(parts) {
                *sum += v;
            }
            peak = peak.max(s.peak_queue_depth);
        }
        let aggregates = [
            (
                "dslice_net_retries_total",
                "Delivery retries across live nodes.",
            ),
            (
                "dslice_net_timeouts_total",
                "Connect/write timeouts across live nodes.",
            ),
            (
                "dslice_net_send_failures_total",
                "Messages undelivered after all attempts.",
            ),
            (
                "dslice_net_evictions_total",
                "Dead-peer evictions performed.",
            ),
            (
                "dslice_net_queue_drops_total",
                "Messages shed because a link queue was full.",
            ),
            (
                "dslice_net_fault_dropped_total",
                "Messages dropped by wire-level fault injection.",
            ),
            ("dslice_net_ticks_total", "Gossip ticks across live nodes."),
        ];
        for ((name, help), v) in aggregates.iter().zip(sums) {
            reg.counter_add(name, help, v);
        }
        reg.gauge_set(
            "dslice_net_peak_queue_depth",
            "Deepest outbound link queue across live nodes.",
            peak as f64,
        );

        let (mut crashes, mut kills, mut restarts) = (0u64, 0u64, 0u64);
        for record in &self.exits {
            match record.kind {
                NodeExitKind::Crashed { .. } => crashes += 1,
                NodeExitKind::KilledByChaos => kills += 1,
                NodeExitKind::Clean => {}
            }
            if record.restarted {
                restarts += 1;
            }
        }
        reg.counter_add(
            "dslice_net_crashes_total",
            "Node tasks that panicked.",
            crashes,
        );
        reg.counter_add(
            "dslice_net_chaos_kills_total",
            "Node tasks killed by the chaos plan.",
            kills,
        );
        reg.counter_add(
            "dslice_net_restarts_total",
            "Supervised restarts performed.",
            restarts,
        );
        reg
    }

    /// Records the fault-counter deltas of one live snapshot as instants.
    fn trace_counters(&mut self, snap: &NodeSnapshot) {
        const KINDS: [TraceKind; 5] = [
            TraceKind::NetRetry,
            TraceKind::NetTimeout,
            TraceKind::NetSendFailure,
            TraceKind::NetEviction,
            TraceKind::NetQueueDrop,
        ];
        let at_ms = self.started.elapsed().as_millis() as u64;
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        let seen = self.trace_seen.entry(snap.id).or_default();
        let now = [
            snap.retries,
            snap.timeouts,
            snap.send_failures,
            snap.evictions,
            snap.queue_drops,
        ];
        for ((kind, cur), prev) in KINDS.iter().zip(now).zip(seen.iter_mut()) {
            if cur > *prev {
                rec.instant(*kind, at_ms, Some(snap.id.as_u64()), cur - *prev, 0);
            }
            *prev = cur;
        }
    }

    /// Records one reaped exit as an instant (`a`: 0 clean, 1 crashed,
    /// 2 killed).
    fn trace_exit(&mut self, id: NodeId, kind: &NodeExitKind, at_ms: u64) {
        let code = match kind {
            NodeExitKind::Clean => 0,
            NodeExitKind::Crashed { .. } => 1,
            NodeExitKind::KilledByChaos => 2,
        };
        if let Some(rec) = self.recorder.as_mut() {
            rec.instant(TraceKind::NetExit, at_ms, Some(id.as_u64()), code, 0);
        }
    }

    fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn exit_kind(exit: &NodeExit) -> NodeExitKind {
        match exit {
            NodeExit::Clean(_) => NodeExitKind::Clean,
            NodeExit::Crashed { reason, .. } => NodeExitKind::Crashed {
                reason: reason.clone(),
            },
            NodeExit::Killed { .. } => NodeExitKind::KilledByChaos,
        }
    }

    /// Marks the most recent exit record of `id` as leading to a restart.
    fn mark_restarted(&mut self, id: NodeId) {
        if let Some(record) = self.exits.iter_mut().rev().find(|r| r.id == id) {
            record.restarted = true;
        }
    }

    /// Respawns the node in `idx` with the same id and attribute, a fresh
    /// empty view, and a generation-decorrelated seed, then re-introduces
    /// it to live peers.
    async fn respawn_slot(&mut self, idx: usize) -> io::Result<()> {
        self.slots[idx].generation += 1;
        let slot = &self.slots[idx];
        let seed = self
            .cfg
            .seed
            .wrapping_add(slot.id.as_u64())
            .wrapping_add(slot.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let node_cfg = NodeConfig {
            id: slot.id,
            attribute: slot.attribute,
            partition: self.partition.clone(),
            protocol: self.cfg.protocol,
            sampler: self.cfg.sampler,
            view_size: self.cfg.view_size,
            period: self.cfg.period,
            seed,
            faults: self.cfg.faults,
            retry: self.retry,
            die_after_ticks: None,
        };
        let handle = NodeRuntime::spawn(node_cfg, self.directory.clone()).await?;
        self.introduce(&handle, seed).await;
        self.slots[idx].state = SlotState::Running(handle);
        self.slots[idx].gate_restore = None;
        Ok(())
    }

    /// Introduces `handle` to up to `bootstrap_degree` random live peers.
    async fn introduce(&self, handle: &NodeHandle, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB007);
        let mut peers: Vec<(NodeId, Attribute, SocketAddr)> = {
            let dir = self.directory.lock().await;
            self.slots
                .iter()
                .filter(|s| s.id != handle.id && matches!(s.state, SlotState::Running(_)))
                .filter_map(|s| dir.get(&s.id).map(|addr| (s.id, s.attribute, *addr)))
                .collect()
        };
        peers.shuffle(&mut rng);
        peers.truncate(self.cfg.bootstrap_degree);
        let Some(first) = peers.first() else { return };
        let entries: Vec<ViewEntry> = peers
            .iter()
            .map(|(pid, pattr, _)| ViewEntry::new(*pid, *pattr, 0.5))
            .collect();
        let intro = WireMsg {
            reply_to: first.2.to_string(),
            msg: ProtocolMsg::ViewAck {
                from: first.0,
                entries,
            },
        };
        if let Ok(mut stream) = TcpStream::connect(handle.addr).await {
            let _ = write_frame(&mut stream, &intro).await;
        }
    }

    /// Applies one due chaos event.
    async fn apply_chaos(&mut self, event: ChaosEvent, now: Instant) {
        let Some(idx) = self.slots.iter().position(|s| s.id == event.node) else {
            return;
        };
        let action_code = match event.action {
            ChaosAction::Crash => 0,
            ChaosAction::Restart => 1,
            ChaosAction::Refuse { .. } => 2,
            ChaosAction::Stall { .. } => 3,
        };
        let at_ms = self.elapsed_ms();
        if let Some(rec) = self.recorder.as_mut() {
            rec.instant(
                TraceKind::NetChaos,
                at_ms,
                Some(event.node.as_u64()),
                action_code,
                0,
            );
        }
        match event.action {
            ChaosAction::Crash => {
                if !matches!(self.slots[idx].state, SlotState::Running(_)) {
                    return;
                }
                let SlotState::Running(handle) =
                    std::mem::replace(&mut self.slots[idx].state, SlotState::Down)
                else {
                    unreachable!("checked Running above");
                };
                handle.crash();
                let exit = handle.reap().await;
                self.slots[idx].last = exit.last_snapshot();
                let at_ms = self.elapsed_ms();
                self.trace_exit(event.node, &NodeExitKind::KilledByChaos, at_ms);
                self.exits.push(NodeExitRecord {
                    id: event.node,
                    kind: NodeExitKind::KilledByChaos,
                    at_ms,
                    restarted: false,
                });
            }
            ChaosAction::Restart => {
                if matches!(
                    self.slots[idx].state,
                    SlotState::Down | SlotState::Backoff { .. }
                ) {
                    self.slots[idx].restarts += 1;
                    if self.respawn_slot(idx).await.is_ok() {
                        self.mark_restarted(event.node);
                    }
                }
            }
            ChaosAction::Refuse { window } => {
                if let SlotState::Running(handle) = &self.slots[idx].state {
                    handle.set_accept_gate(AcceptGate::Refuse);
                    self.slots[idx].gate_restore = Some(now + window);
                }
            }
            ChaosAction::Stall { window } => {
                if let SlotState::Running(handle) = &self.slots[idx].state {
                    handle.set_accept_gate(AcceptGate::Stall);
                    self.slots[idx].gate_restore = Some(now + window);
                }
            }
        }
    }

    /// One supervision pass: reopen elapsed gates, reap finished tasks,
    /// restart crashed nodes whose backoff has elapsed.
    async fn supervise(&mut self, now: Instant) {
        for idx in 0..self.slots.len() {
            // Trace fault-counter deltas off the live snapshot (cheap: a
            // watch-channel read; skipped entirely when untraced).
            if self.recorder.is_some() {
                let snap = match &self.slots[idx].state {
                    SlotState::Running(h) => Some(h.snapshot()),
                    _ => None,
                };
                if let Some(snap) = snap {
                    self.trace_counters(&snap);
                }
            }

            // Reopen gates whose chaos window has elapsed.
            if self.slots[idx].gate_restore.is_some_and(|t| t <= now) {
                if let SlotState::Running(handle) = &self.slots[idx].state {
                    handle.set_accept_gate(AcceptGate::Open);
                }
                self.slots[idx].gate_restore = None;
            }

            // Reap tasks that exited on their own (panic or stray abort).
            let finished =
                matches!(&self.slots[idx].state, SlotState::Running(h) if h.is_finished());
            if finished {
                let SlotState::Running(handle) =
                    std::mem::replace(&mut self.slots[idx].state, SlotState::Down)
                else {
                    unreachable!("checked Running above");
                };
                let exit = handle.reap().await;
                self.slots[idx].last = exit.last_snapshot();
                let at_ms = self.elapsed_ms();
                let kind = Self::exit_kind(&exit);
                self.trace_exit(self.slots[idx].id, &kind, at_ms);
                self.exits.push(NodeExitRecord {
                    id: self.slots[idx].id,
                    kind,
                    at_ms,
                    restarted: false,
                });
                if matches!(exit, NodeExit::Crashed { .. })
                    && self.cfg.restart.auto_restart
                    && self.slots[idx].restarts < self.cfg.restart.max_restarts
                {
                    let pause = self.cfg.restart.backoff(self.slots[idx].restarts);
                    self.slots[idx].state = SlotState::Backoff { due: now + pause };
                }
            }

            // Fire due restarts.
            if matches!(self.slots[idx].state, SlotState::Backoff { due } if due <= now) {
                self.slots[idx].restarts += 1;
                let id = self.slots[idx].id;
                if self.respawn_slot(idx).await.is_ok() {
                    self.mark_restarted(id);
                } else {
                    self.slots[idx].state = SlotState::Down;
                }
            }
        }
    }

    /// Lets the cluster run for the given wall-clock duration under
    /// supervision: due chaos events fire, finished tasks are reaped, and
    /// crashed nodes restart per policy. Steps at roughly half the gossip
    /// period.
    pub async fn run_for(&mut self, duration: Duration) {
        let deadline = Instant::now() + duration;
        let step = (self.cfg.period / 2).clamp(Duration::from_millis(2), Duration::from_millis(20));
        loop {
            let now = Instant::now();
            let elapsed = now - self.started;
            while self.fired < self.schedule.len() && self.schedule[self.fired].at <= elapsed {
                let event = self.schedule[self.fired].clone();
                self.fired += 1;
                self.apply_chaos(event, now).await;
            }
            self.supervise(now).await;
            let now = Instant::now();
            if self.stream.as_ref().is_some_and(|s| now >= s.due) {
                let line = self.scrape().to_json_line();
                let stream = self.stream.as_mut().expect("checked above");
                stream.due = now + stream.every;
                use std::io::Write;
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&stream.path)
                {
                    let _ = writeln!(file, "{line}");
                }
            }
            if now >= deadline {
                return;
            }
            tokio::time::sleep(step.min(deadline - now)).await;
        }
    }

    /// Dynamic membership: spawns one additional node mid-run and
    /// introduces it to `bootstrap_degree` random live peers. Returns its
    /// id.
    ///
    /// This is the network-runtime counterpart of the simulator's churn
    /// joiner path — fresh identity, fresh protocol state, bootstrapped
    /// view.
    pub async fn join_node(&mut self, attribute: Attribute) -> io::Result<NodeId> {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let seed = self.cfg.seed.wrapping_add(id.as_u64()).wrapping_mul(0x9E37);
        let node_cfg = NodeConfig {
            id,
            attribute,
            partition: self.partition.clone(),
            protocol: self.cfg.protocol,
            sampler: self.cfg.sampler,
            view_size: self.cfg.view_size,
            period: self.cfg.period,
            seed,
            faults: self.cfg.faults,
            retry: self.retry,
            die_after_ticks: None,
        };
        let handle = NodeRuntime::spawn(node_cfg, self.directory.clone()).await?;
        self.introduce(&handle, seed).await;
        let last = handle.snapshot();
        self.slots.push(Slot {
            id,
            attribute,
            state: SlotState::Running(handle),
            restarts: 0,
            generation: 0,
            gate_restore: None,
            last,
        });
        Ok(id)
    }

    /// Dynamic membership: permanently removes the node with the given id
    /// (departure — peers discover it through failed connections, which
    /// the link layer turns into strikes and eviction). Returns its final
    /// snapshot, or `None` if the id is not currently live.
    pub async fn kill_node(&mut self, id: NodeId) -> Option<NodeSnapshot> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.id == id && matches!(s.state, SlotState::Running(_)))?;
        let SlotState::Running(handle) =
            std::mem::replace(&mut self.slots[idx].state, SlotState::Retired)
        else {
            unreachable!("checked Running above");
        };
        self.directory.lock().await.remove(&id);
        let exit = handle.stop().await;
        self.slots[idx].last = exit.last_snapshot();
        let at_ms = self.elapsed_ms();
        self.exits.push(NodeExitRecord {
            id,
            kind: Self::exit_kind(&exit),
            at_ms,
            restarted: false,
        });
        Some(exit.last_snapshot())
    }

    /// Ids of the currently live nodes.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Running(_)))
            .map(|s| s.id)
            .collect()
    }

    /// Shuts every live node down and harvests the final report. A node
    /// that panics at the very end is reported as an exit record, never a
    /// harness panic.
    pub async fn shutdown(self) -> ClusterReport {
        let mut nodes = Vec::new();
        let mut exits = self.exits;
        let started = self.started;
        for slot in self.slots {
            let SlotState::Running(handle) = slot.state else {
                continue;
            };
            let exit = handle.stop().await;
            match &exit {
                NodeExit::Clean(snapshot) => nodes.push(*snapshot),
                other => {
                    exits.push(NodeExitRecord {
                        id: slot.id,
                        kind: Self::exit_kind(other),
                        at_ms: started.elapsed().as_millis() as u64,
                        restarted: false,
                    });
                    nodes.push(other.last_snapshot());
                }
            }
        }

        let mut totals = ClusterTotals::default();
        for snapshot in &nodes {
            totals.retries += snapshot.retries;
            totals.timeouts += snapshot.timeouts;
            totals.send_failures += snapshot.send_failures;
            totals.evictions += snapshot.evictions;
            totals.dropped += snapshot.dropped;
            totals.queue_drops += snapshot.queue_drops;
            totals.peak_queue_depth = totals.peak_queue_depth.max(snapshot.peak_queue_depth);
        }
        for record in &exits {
            match record.kind {
                NodeExitKind::Crashed { .. } => totals.crashes += 1,
                NodeExitKind::KilledByChaos => totals.chaos_kills += 1,
                NodeExitKind::Clean => {}
            }
            if record.restarted {
                totals.restarts += 1;
            }
        }

        ClusterReport {
            nodes,
            partition: self.partition,
            exits,
            totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(values: &[f64]) -> Vec<Attribute> {
        values.iter().map(|&v| Attribute::new(v).unwrap()).collect()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn small_ranking_cluster_converges() {
        let values: Vec<f64> = (0..16).map(|i| i as f64 * 10.0).collect();
        let cfg = ClusterConfig {
            period: Duration::from_millis(10),
            bootstrap_degree: 5,
            ..ClusterConfig::new(
                attrs(&values),
                Partition::equal(2).unwrap(),
                ProtocolKind::Ranking,
            )
        };
        let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
        assert_eq!(cluster.len(), 16);
        cluster.run_for(Duration::from_millis(900)).await;
        let report = cluster.shutdown().await;
        // With 2 slices and well-spread attributes, most nodes must know
        // their half after ~90 periods.
        let acc = report.accuracy();
        assert!(
            acc >= 0.75,
            "accuracy {acc} too low; sdm = {}",
            report.sdm()
        );
        // Everyone ticked; nothing crashed.
        for s in &report.nodes {
            assert!(s.ticks > 10, "node {} only ticked {}", s.id, s.ticks);
        }
        assert!(report.exits.is_empty(), "exits: {:?}", report.exits);
        assert_eq!(report.totals.crashes, 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn ordering_cluster_runs_and_reports() {
        let values: Vec<f64> = (0..12).map(|i| (i * 7 % 12) as f64).collect();
        let cfg = ClusterConfig {
            period: Duration::from_millis(10),
            bootstrap_degree: 4,
            ..ClusterConfig::new(
                attrs(&values),
                Partition::equal(3).unwrap(),
                ProtocolKind::ModJk,
            )
        };
        let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
        let sdm_start = cluster.live_sdm();
        cluster.run_for(Duration::from_millis(800)).await;
        let report = cluster.shutdown().await;
        let sdm_end = report.sdm();
        // The ordering protocol must not leave the system more disordered
        // than a random assignment; typically it improves markedly.
        assert!(
            sdm_end <= sdm_start,
            "SDM should not grow: {sdm_start} -> {sdm_end}"
        );
        assert_eq!(report.assignments().len(), 12);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn scrape_streams_and_traces_without_disturbing_the_run() {
        let values: Vec<f64> = (0..8).map(|i| i as f64 * 5.0).collect();
        let cfg = ClusterConfig {
            period: Duration::from_millis(10),
            chaos: ChaosPlan::new().at_ms(60).crash(NodeId::new(3)),
            ..ClusterConfig::new(
                attrs(&values),
                Partition::equal(2).unwrap(),
                ProtocolKind::Ranking,
            )
        };
        let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
        cluster.set_tracer(dslice_obs::TraceConfig::on());
        let dir = std::env::temp_dir().join(format!("dslice-net-stream-{}", std::process::id()));
        let stream_path = dir.join("metrics.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(&stream_path);
        cluster.stream_metrics(&stream_path, Duration::from_millis(30));
        cluster.run_for(Duration::from_millis(250)).await;

        // The scrape carries per-node labeled series and aggregates.
        let reg = cluster.scrape();
        assert_eq!(reg.gauge("dslice_net_nodes_live"), Some(7.0));
        let prom = reg.to_prometheus();
        assert!(dslice_obs::validate_prometheus(&prom).unwrap() > 10);
        assert!(prom.contains("dslice_net_node_ticks{node=\"0\"}"));
        assert!(prom.contains("dslice_net_chaos_kills_total 1"));

        // The metrics stream wrote at least one valid JSON line.
        let streamed = std::fs::read_to_string(&stream_path).unwrap();
        let lines: Vec<&str> = streamed.lines().collect();
        assert!(!lines.is_empty(), "stream file must have lines");
        for line in &lines {
            serde_json::from_str::<serde_json::Value>(line).unwrap();
        }

        // The recorder saw the chaos kill and its exit.
        let recorder = cluster.take_recorder().unwrap();
        let kinds: Vec<_> = recorder.events().map(|e| e.kind).collect();
        assert!(kinds.contains(&dslice_obs::TraceKind::NetChaos));
        assert!(kinds.contains(&dslice_obs::TraceKind::NetExit));

        let report = cluster.shutdown().await;
        assert_eq!(report.totals.chaos_kills, 1);
        // Snapshots carry the new fields: every survivor has been up for
        // most of the run and pushed at least one message through a link.
        for s in &report.nodes {
            assert!(s.uptime_ms >= 100, "node {} uptime {}ms", s.id, s.uptime_ms);
        }
        assert!(report.totals.peak_queue_depth >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn report_serializes_to_json() {
        let cfg = ClusterConfig {
            period: Duration::from_millis(10),
            ..ClusterConfig::new(
                attrs(&[1.0, 2.0, 3.0, 4.0]),
                Partition::equal(2).unwrap(),
                ProtocolKind::Ranking,
            )
        };
        let mut cluster = LocalCluster::spawn(cfg).await.unwrap();
        cluster.run_for(Duration::from_millis(50)).await;
        let report = cluster.shutdown().await;
        let json = serde_json::to_string(&report).unwrap();
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes.len(), report.nodes.len());
        assert_eq!(back.totals, report.totals);
    }
}
