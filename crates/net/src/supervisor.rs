//! Supervision types: exit classification and restart policy.
//!
//! The cluster harness never lets a node failure propagate: every task exit
//! is reaped into a [`NodeExitRecord`] (clean, crashed, or killed by chaos)
//! and, for crashes, the node is restarted under a [`RestartPolicy`] with
//! capped exponential backoff. The records are folded into the final
//! [`ClusterReport`](crate::cluster::ClusterReport), so degradation is
//! observable instead of silent — the harness-level counterpart of the
//! paper's assumption that slicing must keep working while nodes come and
//! go.

use dslice_core::NodeId;
use serde::{Deserialize, Serialize};
use std::io;
use std::time::Duration;

/// How a supervised node task ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeExitKind {
    /// Graceful shutdown (harness stop or scripted departure).
    Clean,
    /// The node task panicked.
    Crashed {
        /// The panic message.
        reason: String,
    },
    /// The node was killed by a [`ChaosPlan`](crate::chaos::ChaosPlan)
    /// crash event (or an explicit harness abort).
    KilledByChaos,
}

/// One reaped exit, as recorded by the cluster supervision loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeExitRecord {
    /// The node that exited.
    pub id: NodeId,
    /// How it exited.
    pub kind: NodeExitKind,
    /// Milliseconds since the cluster was spawned.
    pub at_ms: u64,
    /// Whether the node was subsequently restarted (by policy or by a
    /// scripted chaos restart).
    pub restarted: bool,
}

/// When and how often the supervisor restarts a crashed node.
///
/// Only *crashes* (panics) are auto-restarted: chaos kills stay down until
/// the plan's own `Restart` event, and clean exits are final.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Whether crashed nodes are restarted at all.
    pub auto_restart: bool,
    /// Restarts allowed per node before it is left down for good.
    pub max_restarts: u32,
    /// Backoff before restart `k` starts at `backoff_base * 2^k` …
    pub backoff_base: Duration,
    /// … and is capped here.
    pub backoff_cap: Duration,
}

impl RestartPolicy {
    /// Never restart: every exit is final.
    pub fn never() -> Self {
        RestartPolicy {
            auto_restart: false,
            max_restarts: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// Rejects policies whose backoff base exceeds its cap.
    pub fn validate(&self) -> io::Result<()> {
        if self.auto_restart && self.backoff_base > self.backoff_cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "RestartPolicy backoff_base exceeds backoff_cap",
            ));
        }
        Ok(())
    }

    /// The pause before a node's restart, given how many restarts it has
    /// already had: exponential in the count, capped.
    pub fn backoff(&self, prior_restarts: u32) -> Duration {
        let exp = prior_restarts.min(16);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap)
    }
}

impl Default for RestartPolicy {
    /// Restart crashed nodes up to 5 times, backing off 50 ms → 500 ms.
    fn default() -> Self {
        RestartPolicy {
            auto_restart: true,
            max_restarts: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let policy = RestartPolicy::default();
        assert_eq!(policy.backoff(0), Duration::from_millis(50));
        assert_eq!(policy.backoff(1), Duration::from_millis(100));
        assert_eq!(policy.backoff(2), Duration::from_millis(200));
        assert_eq!(policy.backoff(4), Duration::from_millis(500), "capped");
        assert_eq!(policy.backoff(30), Duration::from_millis(500), "capped");
    }

    #[test]
    fn never_policy_is_valid_and_inert() {
        let policy = RestartPolicy::never();
        assert!(policy.validate().is_ok());
        assert!(!policy.auto_restart);
        assert_eq!(policy.backoff(3), Duration::ZERO);
    }

    #[test]
    fn validate_rejects_inverted_backoff() {
        let policy = RestartPolicy {
            backoff_base: Duration::from_secs(10),
            backoff_cap: Duration::from_millis(1),
            ..RestartPolicy::default()
        };
        assert!(policy.validate().is_err());
    }

    #[test]
    fn exit_records_serialize_for_the_report_artifact() {
        let record = NodeExitRecord {
            id: NodeId::new(7),
            kind: NodeExitKind::Crashed {
                reason: "boom".into(),
            },
            at_ms: 1234,
            restarted: true,
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: NodeExitRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
