//! The wire format: length-prefixed JSON frames.
//!
//! Each frame is a 4-byte big-endian payload length followed by the JSON
//! serialization of a [`WireMsg`]. JSON (rather than a binary format) keeps
//! the frames debuggable with `tcpdump`/`nc` during development; the
//! protocols exchange a handful of small messages per node per period, so
//! encoding cost is irrelevant next to the network round trip.
//!
//! Frames are capped at [`MAX_FRAME_LEN`] to bound memory on malformed or
//! hostile input.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dslice_core::ProtocolMsg;
use serde::{Deserialize, Serialize};
use std::io;
use tokio::io::{AsyncReadExt, AsyncWriteExt};

/// Upper bound on an encoded frame payload (1 MiB); a view exchange with a
/// few hundred entries fits in a few tens of kilobytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// The envelope actually shipped: the protocol message plus the sender's
/// listen port, so the receiver can reply without a directory lookup.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireMsg {
    /// The sender's listening address, as text (e.g. `127.0.0.1:4077`).
    pub reply_to: String,
    /// The protocol payload.
    pub msg: ProtocolMsg,
}

/// Encodes a message into a length-prefixed frame.
pub fn encode_frame(msg: &WireMsg) -> io::Result<Bytes> {
    let payload =
        serde_json::to_vec(msg).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame too large: {} bytes", payload.len()),
        ));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    Ok(buf.freeze())
}

/// Decodes one frame from `buf` if a complete one is available, advancing
/// the buffer past it. Returns `Ok(None)` when more bytes are needed.
pub fn decode_frame(buf: &mut BytesMut) -> io::Result<Option<WireMsg>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let payload = buf.split_to(len);
    let msg = serde_json::from_slice(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(msg))
}

/// Reads exactly one frame from an async stream.
pub async fn read_frame<R: AsyncReadExt + Unpin>(reader: &mut R) -> io::Result<WireMsg> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf).await?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).await?;
    serde_json::from_slice(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Reads exactly one frame, giving up (with `ErrorKind::TimedOut`) if it
/// does not complete within `limit`.
///
/// Connection readers use this so a peer that connects and then stalls —
/// deliberately, under chaos injection, or because it died mid-frame —
/// cannot pin a reader task forever.
pub async fn read_frame_timeout<R: AsyncReadExt + Unpin>(
    reader: &mut R,
    limit: std::time::Duration,
) -> io::Result<WireMsg> {
    match tokio::time::timeout(limit, read_frame(reader)).await {
        Ok(result) => result,
        Err(elapsed) => Err(elapsed.into()),
    }
}

/// Writes one frame to an async stream.
pub async fn write_frame<W: AsyncWriteExt + Unpin>(
    writer: &mut W,
    msg: &WireMsg,
) -> io::Result<()> {
    let frame = encode_frame(msg)?;
    writer.write_all(&frame).await?;
    writer.flush().await
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::{Attribute, NodeId, ViewEntry};
    use proptest::prelude::*;

    fn sample_msg() -> WireMsg {
        WireMsg {
            reply_to: "127.0.0.1:9000".into(),
            msg: ProtocolMsg::SwapReq {
                from: NodeId::new(3),
                r: 0.25,
                a: Attribute::new(17.5).unwrap(),
            },
        }
    }

    #[test]
    fn roundtrip_simple() {
        let msg = sample_msg();
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert!(buf.is_empty(), "frame fully consumed");
    }

    #[test]
    fn roundtrip_view_exchange() {
        let entries: Vec<ViewEntry> = (0..50)
            .map(|i| {
                ViewEntry::with_age(
                    NodeId::new(i),
                    i as u32,
                    Attribute::new(i as f64).unwrap(),
                    (i as f64 + 1.0) / 100.0,
                )
            })
            .collect();
        let msg = WireMsg {
            reply_to: "127.0.0.1:1".into(),
            msg: ProtocolMsg::ViewReq {
                from: NodeId::new(9),
                entries,
            },
        };
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), msg);
    }

    #[test]
    fn partial_frames_wait_for_more() {
        let frame = encode_frame(&sample_msg()).unwrap();
        // Feed the frame byte by byte: no spurious decode, exactly one at end.
        let mut buf = BytesMut::new();
        let mut decoded = 0;
        for &b in frame.iter() {
            buf.put_u8(b);
            if decode_frame(&mut buf).unwrap().is_some() {
                decoded += 1;
            }
        }
        assert_eq!(decoded, 1);
    }

    #[test]
    fn two_frames_in_one_buffer() {
        let frame = encode_frame(&sample_msg()).unwrap();
        let mut buf = BytesMut::new();
        buf.put_slice(&frame);
        buf.put_slice(&frame);
        assert!(decode_frame(&mut buf).unwrap().is_some());
        assert!(decode_frame(&mut buf).unwrap().is_some());
        assert!(decode_frame(&mut buf).unwrap().is_none());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAX_FRAME_LEN as u32 + 1);
        buf.put_slice(&[0u8; 16]);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(4);
        buf.put_slice(b"!!!!");
        assert!(decode_frame(&mut buf).is_err());
    }

    #[tokio::test]
    async fn async_roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        let msg = sample_msg();
        write_frame(&mut a, &msg).await.unwrap();
        let got = read_frame(&mut b).await.unwrap();
        assert_eq!(got, msg);
    }

    #[tokio::test]
    async fn read_frame_timeout_fires_on_a_silent_peer() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        // Nothing is ever written to `a`: the read must give up.
        let err = read_frame_timeout(&mut b, std::time::Duration::from_millis(20))
            .await
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // A prompt frame still goes through untouched.
        let msg = sample_msg();
        write_frame(&mut a, &msg).await.unwrap();
        let got = read_frame_timeout(&mut b, std::time::Duration::from_secs(5))
            .await
            .unwrap();
        assert_eq!(got, msg);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_update(
            from in 0u64..1000,
            a in -1e6f64..1e6,
            port in 1u16..u16::MAX,
        ) {
            let msg = WireMsg {
                reply_to: format!("127.0.0.1:{port}"),
                msg: ProtocolMsg::Update {
                    from: NodeId::new(from),
                    a: Attribute::new(a).unwrap(),
                },
            };
            let frame = encode_frame(&msg).unwrap();
            let mut buf = BytesMut::from(&frame[..]);
            prop_assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), msg);
        }
    }
}
