//! # dslice-net
//!
//! A real (asynchronous, message-passing) runtime for the slicing protocols.
//!
//! The cycle simulator (`dslice-sim`) reproduces the paper's PeerSim
//! methodology; this crate closes the loop by running the *same protocol
//! implementations* — through the same
//! [`SliceProtocol`](dslice_core::protocol::SliceProtocol) interface — over
//! actual sockets with tokio:
//!
//! * [`codec`] — a length-prefixed JSON wire format for
//!   [`ProtocolMsg`](dslice_core::ProtocolMsg) (4-byte big-endian length,
//!   then the serde payload).
//! * [`node`] — [`node::NodeRuntime`]: one tokio task per node
//!   owning its protocol state, its peer sampler and a TCP listener; a
//!   periodic tick drives the membership shuffle and the protocol's active
//!   thread, mirroring Figs. 2/3/5.
//! * [`cluster`] — [`cluster::LocalCluster`]: spins up `n`
//!   nodes on loopback, bootstraps their views, lets them gossip for a
//!   while, and harvests the slice assignments — the integration-level
//!   proof that the protocols work outside the simulator.
//!
//! Messages here genuinely overlap (there is no atomic exchange), so this
//! runtime exercises the §4.5.2 staleness paths for real: what the simulator
//! injects artificially, the network does on its own.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod codec;
pub mod node;

pub use cluster::{ClusterConfig, ClusterReport, LocalCluster};
pub use codec::{decode_frame, encode_frame, read_frame, write_frame, WireMsg};
pub use node::{FaultPlan, NodeConfig, NodeHandle, NodeRuntime};
