//! # dslice-net
//!
//! A real (asynchronous, message-passing) runtime for the slicing protocols.
//!
//! The cycle simulator (`dslice-sim`) reproduces the paper's PeerSim
//! methodology; this crate closes the loop by running the *same protocol
//! implementations* — through the same
//! [`SliceProtocol`](dslice_core::protocol::SliceProtocol) interface — over
//! actual sockets with tokio:
//!
//! * [`codec`] — a length-prefixed JSON wire format for
//!   [`ProtocolMsg`](dslice_core::ProtocolMsg) (4-byte big-endian length,
//!   then the serde payload).
//! * [`node`] — [`node::NodeRuntime`]: one tokio task per node
//!   owning its protocol state, its peer sampler and a TCP listener; a
//!   periodic tick drives the membership shuffle and the protocol's active
//!   thread, mirroring Figs. 2/3/5.
//! * [`cluster`] — [`cluster::LocalCluster`]: spins up `n`
//!   nodes on loopback, bootstraps their views, lets them gossip for a
//!   while, and harvests the slice assignments — the integration-level
//!   proof that the protocols work outside the simulator.
//! * [`retry`] — [`retry::RetryPolicy`]: connect/write timeouts, bounded
//!   retries with deterministic exponential backoff, and strike-based
//!   dead-peer eviction for the outbound path.
//! * [`chaos`] — [`chaos::ChaosPlan`]: a scriptable schedule of process
//!   faults (crashes, restarts, listener refusal/stall windows) replayed
//!   by the cluster harness.
//! * [`supervisor`] — exit classification ([`supervisor::NodeExitRecord`])
//!   and the [`supervisor::RestartPolicy`] under which crashed nodes are
//!   revived with capped backoff.
//!
//! Messages here genuinely overlap (there is no atomic exchange), so this
//! runtime exercises the §4.5.2 staleness paths for real: what the simulator
//! injects artificially, the network does on its own. The chaos layer goes
//! further and injects what the paper assumes as ambient: crash/recovery
//! churn and refused connections, survived without stalling any gossip
//! period.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod cluster;
pub mod codec;
pub mod node;
pub mod retry;
pub mod supervisor;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan};
pub use cluster::{ClusterConfig, ClusterReport, ClusterTotals, LocalCluster};
pub use codec::{decode_frame, encode_frame, read_frame, read_frame_timeout, write_frame, WireMsg};
pub use node::{AcceptGate, FaultPlan, NodeConfig, NodeExit, NodeHandle, NodeRuntime};
pub use retry::RetryPolicy;
pub use supervisor::{NodeExitKind, NodeExitRecord, RestartPolicy};
