//! Scriptable process-level fault injection for cluster runs.
//!
//! [`FaultPlan`](crate::node::FaultPlan) perturbs the *wire* (loss, delay);
//! a [`ChaosPlan`] perturbs the *processes*: timed node crashes, restarts,
//! listener refusal windows and connection stalls, replayed by the cluster
//! supervision loop during [`run_for`](crate::cluster::LocalCluster::run_for).
//! Event times are offsets from the moment the cluster was spawned, and
//! each event fires at most once — a plan reads like a script, the
//! socket-level analogue of the scenario DSL's timed churn and fault
//! clauses on the simulator side.
//!
//! ```
//! use dslice_net::chaos::ChaosPlan;
//! use dslice_core::NodeId;
//!
//! let plan = ChaosPlan::new()
//!     .at_ms(500)
//!     .crash(NodeId::new(3))
//!     .crash(NodeId::new(4))
//!     .at_ms(1500)
//!     .restart(NodeId::new(3))
//!     .restart(NodeId::new(4))
//!     .at_ms(2000)
//!     .refuse_for_ms(NodeId::new(0), 300);
//! assert_eq!(plan.len(), 5);
//! assert!(plan.validate().is_ok());
//! ```

use dslice_core::NodeId;
use std::io;
use std::time::Duration;

/// One process-level fault to inject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Abort the node task and close its listener — a process crash.
    Crash,
    /// Respawn a crashed/downed node: same id and attribute, fresh empty
    /// view, re-bootstrapped via introduction to live peers.
    Restart,
    /// Close the node's listener for the window: inbound connects are
    /// refused, then the same address is rebound.
    Refuse {
        /// How long the listener stays closed.
        window: Duration,
    },
    /// Accept inbound connections but never read them for the window; the
    /// held connections are reset when the window ends.
    Stall {
        /// How long accepted connections are held unread.
        window: Duration,
    },
}

/// A [`ChaosAction`] aimed at a node at a point in run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Offset from the moment the cluster was spawned.
    pub at: Duration,
    /// The target node.
    pub node: NodeId,
    /// What happens to it.
    pub action: ChaosAction,
}

/// A time-stamped schedule of process faults, built fluently: [`at_ms`]
/// moves the cursor, the action methods append events at the cursor.
///
/// [`at_ms`]: ChaosPlan::at_ms
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    cursor: Duration,
}

impl ChaosPlan {
    /// An empty plan with the cursor at time zero.
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Moves the cursor to `ms` milliseconds after cluster spawn. The
    /// cursor may move backwards; the schedule is replayed in time order
    /// regardless of build order.
    pub fn at_ms(mut self, ms: u64) -> Self {
        self.cursor = Duration::from_millis(ms);
        self
    }

    /// Crashes `node` at the cursor.
    pub fn crash(mut self, node: NodeId) -> Self {
        self.events.push(ChaosEvent {
            at: self.cursor,
            node,
            action: ChaosAction::Crash,
        });
        self
    }

    /// Restarts `node` at the cursor.
    pub fn restart(mut self, node: NodeId) -> Self {
        self.events.push(ChaosEvent {
            at: self.cursor,
            node,
            action: ChaosAction::Restart,
        });
        self
    }

    /// Refuses inbound connections on `node` for `window_ms` starting at
    /// the cursor.
    pub fn refuse_for_ms(mut self, node: NodeId, window_ms: u64) -> Self {
        self.events.push(ChaosEvent {
            at: self.cursor,
            node,
            action: ChaosAction::Refuse {
                window: Duration::from_millis(window_ms),
            },
        });
        self
    }

    /// Stalls (accepts but never reads) inbound connections on `node` for
    /// `window_ms` starting at the cursor.
    pub fn stall_for_ms(mut self, node: NodeId, window_ms: u64) -> Self {
        self.events.push(ChaosEvent {
            at: self.cursor,
            node,
            action: ChaosAction::Stall {
                window: Duration::from_millis(window_ms),
            },
        });
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rejects degenerate plans: zero-length refusal/stall windows, and a
    /// restart of a node the plan never crashed (which would be a no-op and
    /// almost certainly a scripting mistake).
    pub fn validate(&self) -> io::Result<()> {
        let invalid = |what: String| Err(io::Error::new(io::ErrorKind::InvalidInput, what));
        for event in &self.events {
            match &event.action {
                ChaosAction::Refuse { window } | ChaosAction::Stall { window } => {
                    if window.is_zero() {
                        return invalid(format!(
                            "chaos window for node {} at {:?} must be positive",
                            event.node, event.at
                        ));
                    }
                }
                ChaosAction::Restart => {
                    let crashed_before = self.events.iter().any(|e| {
                        e.node == event.node && e.action == ChaosAction::Crash && e.at <= event.at
                    });
                    if !crashed_before {
                        return invalid(format!(
                            "restart of node {} at {:?} without a prior crash",
                            event.node, event.at
                        ));
                    }
                }
                ChaosAction::Crash => {}
            }
        }
        Ok(())
    }

    /// The events in replay order (stable sort by time, so same-time events
    /// fire in build order).
    pub fn schedule(&self) -> Vec<ChaosEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_stamps_events_at_the_cursor() {
        let plan = ChaosPlan::new()
            .at_ms(100)
            .crash(NodeId::new(1))
            .at_ms(300)
            .restart(NodeId::new(1))
            .stall_for_ms(NodeId::new(2), 50);
        assert_eq!(plan.len(), 3);
        let schedule = plan.schedule();
        assert_eq!(schedule[0].at, Duration::from_millis(100));
        assert_eq!(schedule[0].action, ChaosAction::Crash);
        assert_eq!(schedule[2].node, NodeId::new(2));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn schedule_is_replayed_in_time_order_regardless_of_build_order() {
        let plan = ChaosPlan::new()
            .at_ms(900)
            .crash(NodeId::new(5))
            .at_ms(100)
            .crash(NodeId::new(6));
        let schedule = plan.schedule();
        assert_eq!(schedule[0].node, NodeId::new(6));
        assert_eq!(schedule[1].node, NodeId::new(5));
    }

    #[test]
    fn validate_rejects_zero_windows_and_orphan_restarts() {
        let zero_window = ChaosPlan::new().refuse_for_ms(NodeId::new(1), 0);
        assert!(zero_window.validate().is_err());

        let orphan_restart = ChaosPlan::new().at_ms(100).restart(NodeId::new(1));
        assert!(orphan_restart.validate().is_err());

        let paired = ChaosPlan::new()
            .at_ms(50)
            .crash(NodeId::new(1))
            .at_ms(150)
            .restart(NodeId::new(1));
        assert!(paired.validate().is_ok());
    }

    #[test]
    fn empty_plan_is_valid() {
        let plan = ChaosPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
    }
}
