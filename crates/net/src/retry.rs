//! Timeout/retry/backoff policy for the outbound socket path.
//!
//! The paper's setting is a *dynamic* network: peers crash, restart and
//! refuse connections all the time, and a slicing node must treat that as
//! routine. [`RetryPolicy`] bounds how long a node is willing to wait on any
//! one peer (connect/write timeouts), how often it retries a failed
//! delivery (bounded attempts with exponential backoff), and when it gives
//! up on the peer entirely (consecutive-failure strikes that trigger a
//! dead-peer verdict — eviction from the view and the directory).
//!
//! Backoff jitter is **deterministic**: it is drawn from the same SplitMix64
//! stream discipline the simulator uses (`dslice-sim`'s per-node streams),
//! keyed by `(seed, peer, attempt)`. Two runs with the same seeds back off
//! on the same schedule, which keeps chaos runs reproducible.

use std::io;
use std::time::Duration;

/// One SplitMix64 step: advance the Weyl sequence, then mix. Mirrors the
/// simulator's stream generator so both runtimes share one RNG discipline
/// (`dslice-net` deliberately does not depend on `dslice-sim`).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a key tuple into one SplitMix64 state (same shape as the sim's
/// `NodeRng::for_node`, with domain-separating multipliers).
fn mix_key(seed: u64, peer: u64, attempt: u64) -> u64 {
    let mut s = seed;
    let mut state = splitmix64(&mut s);
    s ^= peer.wrapping_mul(0xA076_1D64_78BD_642F);
    state ^= splitmix64(&mut s);
    s ^= attempt.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    state ^= splitmix64(&mut s);
    state
}

/// How the outbound path treats a peer that does not answer promptly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Budget for establishing a connection to the peer.
    pub connect_timeout: Duration,
    /// Budget for writing one frame once connected.
    pub write_timeout: Duration,
    /// Delivery attempts per message (first try included).
    pub attempts: u32,
    /// Backoff before retry `k` starts at `backoff_base * 2^(k-1)` …
    pub backoff_base: Duration,
    /// … and is capped here (before jitter).
    pub backoff_cap: Duration,
    /// Consecutive failed *messages* to a peer before it is declared dead
    /// and evicted from the view and the directory.
    pub strike_limit: u32,
}

impl RetryPolicy {
    /// Derives a policy from the gossip period: generous enough that a
    /// healthy peer always answers in time, tight enough that a dead peer
    /// costs at most a couple of periods before eviction.
    pub fn for_period(period: Duration) -> Self {
        let period = period.max(Duration::from_millis(1));
        RetryPolicy {
            connect_timeout: period,
            write_timeout: period,
            attempts: 3,
            backoff_base: period / 4,
            backoff_cap: period * 2,
            strike_limit: 3,
        }
    }

    /// Rejects nonsensical policies (zero timeouts/attempts/strikes, or a
    /// backoff base above its cap).
    pub fn validate(&self) -> io::Result<()> {
        let invalid = |what: &str| {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid RetryPolicy: {what}"),
            ))
        };
        if self.connect_timeout.is_zero() {
            return invalid("connect_timeout must be positive");
        }
        if self.write_timeout.is_zero() {
            return invalid("write_timeout must be positive");
        }
        if self.attempts == 0 {
            return invalid("attempts must be at least 1");
        }
        if self.strike_limit == 0 {
            return invalid("strike_limit must be at least 1");
        }
        if self.backoff_base > self.backoff_cap {
            return invalid("backoff_base exceeds backoff_cap");
        }
        Ok(())
    }

    /// The pause before retry `attempt` (1-based: attempt 1 is the first
    /// *retry*). Exponential in the attempt number, capped, then scaled by
    /// a deterministic jitter factor in `[0.5, 1.5)` keyed by
    /// `(seed, peer, attempt)`.
    pub fn backoff(&self, seed: u64, peer: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap);
        let draw = mix_key(seed, peer, u64::from(attempt));
        // 53-bit uniform in [0,1), shifted to [0.5, 1.5).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(0.5 + unit)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::for_period(Duration::from_millis(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_period_scales_with_the_gossip_period() {
        let p = RetryPolicy::for_period(Duration::from_millis(40));
        assert_eq!(p.connect_timeout, Duration::from_millis(40));
        assert_eq!(p.backoff_base, Duration::from_millis(10));
        assert_eq!(p.backoff_cap, Duration::from_millis(80));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_policies() {
        let good = RetryPolicy::default();
        assert!(good.validate().is_ok());
        let zero_attempts = RetryPolicy {
            attempts: 0,
            ..good
        };
        assert!(zero_attempts.validate().is_err());
        let zero_strikes = RetryPolicy {
            strike_limit: 0,
            ..good
        };
        assert!(zero_strikes.validate().is_err());
        let inverted = RetryPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(10),
            ..good
        };
        assert!(inverted.validate().is_err());
        let zero_timeout = RetryPolicy {
            connect_timeout: Duration::ZERO,
            ..good
        };
        assert!(zero_timeout.validate().is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::for_period(Duration::from_millis(20));
        let a = p.backoff(42, 7, 1);
        let b = p.backoff(42, 7, 1);
        assert_eq!(a, b, "same key, same backoff");
        assert_ne!(
            p.backoff(42, 7, 1),
            p.backoff(42, 8, 1),
            "different peers jitter differently"
        );
        for attempt in 1..=8 {
            let d = p.backoff(1, 2, attempt);
            // Cap is 2 * period = 40ms; jitter at most 1.5x.
            assert!(d <= p.backoff_cap.mul_f64(1.5), "attempt {attempt}: {d:?}");
            assert!(d >= p.backoff_base.mul_f64(0.5), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn backoff_grows_exponentially_before_the_cap() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(10),
            ..RetryPolicy::default()
        };
        // Strip jitter by comparing lower bounds: attempt k's floor is
        // base * 2^(k-1) * 0.5, which doubles per attempt.
        assert!(p.backoff(0, 0, 3) >= Duration::from_millis(20));
        assert!(p.backoff(0, 0, 5) >= Duration::from_millis(80));
    }
}
