//! One protocol node as a tokio task.
//!
//! A [`NodeRuntime`] owns exactly what a paper node owns: its protocol state
//! (Fig. 2 / Fig. 5), its view via a peer sampler (Fig. 3), and a periodic
//! timer (`period_i` of the pseudocode). Every `period` it runs the
//! membership shuffle — sending a real `ViewReq` instead of the simulator's
//! atomic exchange — and then the protocol's active thread; incoming frames
//! drive the passive threads.
//!
//! ## Addressing
//!
//! View entries identify peers by [`NodeId`]; the mapping to socket
//! addresses lives in a shared [`Directory`] that the cluster harness
//! pre-populates (a stand-in for the out-of-band bootstrap/discovery any
//! deployed gossip system relies on). Messages also carry a `reply_to`
//! address so responses never need the directory.

use crate::codec::{read_frame, write_frame, WireMsg};
use dslice_algorithms::ProtocolKind;
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{Attribute, NodeId, Partition, ProtocolMsg, ViewEntry};
use dslice_gossip::{build_sampler, PeerSampler, SamplerKind};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, watch, Mutex};
use tokio::task::JoinHandle;

/// Wire-level fault injection: probabilistic loss and added delay applied to
/// every outgoing message. The TCP substrate is reliable per connection;
/// these knobs re-introduce the datagram-like behaviour the protocols are
/// designed for, so the simulator's `loss_rate` / `LatencyModel` findings
/// can be checked over real sockets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability that an outgoing message is silently dropped.
    pub loss: f64,
    /// Extra delay drawn uniformly from this range before the message is
    /// written to the wire.
    pub delay: Option<(Duration, Duration)>,
}

impl FaultPlan {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform loss at probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan {
            loss: p,
            delay: None,
        }
    }

    /// Uniform extra delay in `[min, max]`.
    pub fn delayed(min: Duration, max: Duration) -> Self {
        FaultPlan {
            loss: 0.0,
            delay: Some((min, max)),
        }
    }
}

/// Shared id → address book (the discovery substrate).
pub type Directory = Arc<Mutex<HashMap<NodeId, SocketAddr>>>;

/// Static configuration of one network node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's identity.
    pub id: NodeId,
    /// This node's attribute value.
    pub attribute: Attribute,
    /// The global slice partition.
    pub partition: Partition,
    /// Which protocol to run.
    pub protocol: ProtocolKind,
    /// Peer-sampling substrate (Cyclon by default).
    pub sampler: SamplerKind,
    /// View size `c`.
    pub view_size: usize,
    /// The gossip period (`period_i` of Figs. 2/5).
    pub period: Duration,
    /// Per-node RNG seed.
    pub seed: u64,
    /// Wire-level fault injection applied to outgoing messages.
    pub faults: FaultPlan,
}

/// A live snapshot of a node, published on every tick.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// The node's id.
    pub id: NodeId,
    /// The node's attribute.
    pub attribute: Attribute,
    /// The current rank estimate.
    pub estimate: f64,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Outgoing messages dropped by the fault plan.
    pub dropped: u64,
}

/// Handle to a spawned node: live snapshots, shutdown, final state.
#[derive(Debug)]
pub struct NodeHandle {
    /// The node's id.
    pub id: NodeId,
    /// The address the node listens on.
    pub addr: SocketAddr,
    snapshot_rx: watch::Receiver<NodeSnapshot>,
    shutdown_tx: watch::Sender<bool>,
    join: JoinHandle<NodeSnapshot>,
}

impl NodeHandle {
    /// The most recent published snapshot.
    pub fn snapshot(&self) -> NodeSnapshot {
        *self.snapshot_rx.borrow()
    }

    /// Signals shutdown and waits for the final state.
    pub async fn shutdown(self) -> NodeSnapshot {
        let _ = self.shutdown_tx.send(true);
        self.join.await.expect("node task panicked")
    }
}

/// The node runtime: protocol + sampler + listener, driven by one task.
pub struct NodeRuntime {
    cfg: NodeConfig,
    proto: Box<dyn SliceProtocol>,
    sampler: Box<dyn PeerSampler>,
    directory: Directory,
    rng: StdRng,
    my_addr: SocketAddr,
    ticks: u64,
    dropped: u64,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.cfg.id)
            .field("addr", &self.my_addr)
            .field("ticks", &self.ticks)
            .finish()
    }
}

/// The [`Context`] for network nodes: collects sends; the runtime ships them
/// after the callback returns.
struct NetCtx<'a> {
    rng: &'a mut StdRng,
    out: &'a mut Vec<(NodeId, ProtocolMsg)>,
}

impl Context for NetCtx<'_> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        self.out.push((to, msg));
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }

    fn record(&mut self, _event: Event) {
        // Network nodes do not aggregate fleet statistics locally; the
        // cluster harness derives quality measures from snapshots.
    }
}

impl NodeRuntime {
    /// Binds a listener, registers with the directory, and spawns the node
    /// task. Returns a handle for monitoring and shutdown.
    pub async fn spawn(cfg: NodeConfig, directory: Directory) -> std::io::Result<NodeHandle> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        let my_addr = listener.local_addr()?;
        directory.lock().await.insert(cfg.id, my_addr);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let proto = cfg
            .protocol
            .build(cfg.id, cfg.attribute, &cfg.partition, &mut rng);
        let sampler = build_sampler(cfg.sampler, cfg.id, cfg.view_size)
            .expect("view_size validated by caller");

        let snapshot = NodeSnapshot {
            id: cfg.id,
            attribute: cfg.attribute,
            estimate: proto.estimate(),
            ticks: 0,
            dropped: 0,
        };
        let (snapshot_tx, snapshot_rx) = watch::channel(snapshot);
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let (inbox_tx, inbox_rx) = mpsc::channel::<WireMsg>(256);

        // Accept loop: one lightweight task per connection, frames go to the
        // node's inbox.
        let accept_shutdown = shutdown_rx.clone();
        tokio::spawn(Self::accept_loop(listener, inbox_tx, accept_shutdown));

        let runtime = NodeRuntime {
            cfg: cfg.clone(),
            proto,
            sampler,
            directory,
            rng,
            my_addr,
            ticks: 0,
            dropped: 0,
        };
        let join = tokio::spawn(runtime.run(inbox_rx, snapshot_tx, shutdown_rx));

        Ok(NodeHandle {
            id: cfg.id,
            addr: my_addr,
            snapshot_rx,
            shutdown_tx,
            join,
        })
    }

    async fn accept_loop(
        listener: TcpListener,
        inbox: mpsc::Sender<WireMsg>,
        mut shutdown: watch::Receiver<bool>,
    ) {
        loop {
            tokio::select! {
                accepted = listener.accept() => {
                    let Ok((stream, _)) = accepted else { continue };
                    let inbox = inbox.clone();
                    tokio::spawn(async move {
                        let mut stream = stream;
                        // Read frames until the peer closes; one connection
                        // may carry several frames.
                        while let Ok(msg) = read_frame(&mut stream).await {
                            if inbox.send(msg).await.is_err() {
                                break;
                            }
                        }
                    });
                }
                _ = shutdown.changed() => {
                    if *shutdown.borrow() {
                        return;
                    }
                }
            }
        }
    }

    /// The main node loop: ticks drive the active threads, inbox messages
    /// drive the passive threads.
    async fn run(
        mut self,
        mut inbox: mpsc::Receiver<WireMsg>,
        snapshot_tx: watch::Sender<NodeSnapshot>,
        mut shutdown: watch::Receiver<bool>,
    ) -> NodeSnapshot {
        let mut ticker = tokio::time::interval(self.cfg.period);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        loop {
            tokio::select! {
                _ = ticker.tick() => {
                    self.on_tick().await;
                    self.ticks += 1;
                    let _ = snapshot_tx.send(self.snapshot());
                }
                Some(wire) = inbox.recv() => {
                    self.on_wire(wire).await;
                    let _ = snapshot_tx.send(self.snapshot());
                }
                _ = shutdown.changed() => {
                    if *shutdown.borrow() {
                        return self.snapshot();
                    }
                }
            }
        }
    }

    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.cfg.id,
            attribute: self.cfg.attribute,
            estimate: self.proto.estimate(),
            ticks: self.ticks,
            dropped: self.dropped,
        }
    }

    fn self_entry(&self) -> ViewEntry {
        ViewEntry::new(
            self.cfg.id,
            self.cfg.attribute,
            self.proto.published_value(),
        )
    }

    /// One period: membership shuffle, then the protocol active thread.
    async fn on_tick(&mut self) {
        // Membership (Fig. 3, active side): the reply arrives asynchronously.
        let self_entry = self.self_entry();
        if let Some(req) = self.sampler.initiate(self_entry, &mut self.rng) {
            let msg = ProtocolMsg::ViewReq {
                from: self.cfg.id,
                entries: req.entries,
            };
            self.ship(req.partner, msg).await;
        }

        // Protocol active thread (Fig. 2 / Fig. 5).
        let mut out = Vec::new();
        {
            let mut ctx = NetCtx {
                rng: &mut self.rng,
                out: &mut out,
            };
            self.proto.on_active(self.sampler.view(), &mut ctx);
        }
        for (to, msg) in out {
            self.ship(to, msg).await;
        }
    }

    /// Dispatches one incoming frame.
    async fn on_wire(&mut self, wire: WireMsg) {
        // Learn the sender's address opportunistically.
        if let Ok(addr) = wire.reply_to.parse::<SocketAddr>() {
            self.directory.lock().await.insert(wire.msg.from(), addr);
        }
        match wire.msg {
            ProtocolMsg::ViewReq { from, entries } => {
                let self_entry = self.self_entry();
                let reply = self.sampler.handle_request(self_entry, from, &entries);
                self.ship(
                    from,
                    ProtocolMsg::ViewAck {
                        from: self.cfg.id,
                        entries: reply,
                    },
                )
                .await;
            }
            ProtocolMsg::ViewAck { from, entries } => {
                self.sampler.handle_reply(from, &entries);
            }
            other => {
                let mut out = Vec::new();
                {
                    let mut ctx = NetCtx {
                        rng: &mut self.rng,
                        out: &mut out,
                    };
                    self.proto.on_message(self.sampler.view(), other, &mut ctx);
                }
                for (to, msg) in out {
                    self.ship(to, msg).await;
                }
            }
        }
    }

    /// Ships one message: resolve the address, connect, write the frame.
    /// Failures (departed peer, refused connection) are dropped silently,
    /// exactly like a lost datagram — gossip tolerates loss by design.
    async fn ship(&mut self, to: NodeId, msg: ProtocolMsg) {
        // Fault injection: loss first, then delay.
        use rand::Rng;
        if self.cfg.faults.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.faults.loss {
            self.dropped += 1;
            return;
        }
        let delay = self.cfg.faults.delay.map(|(min, max)| {
            if max > min {
                min + (max - min).mul_f64(self.rng.gen::<f64>())
            } else {
                min
            }
        });
        let addr = { self.directory.lock().await.get(&to).copied() };
        let Some(addr) = addr else { return };
        let wire = WireMsg {
            reply_to: self.my_addr.to_string(),
            msg,
        };
        // Fire-and-forget: don't let a slow peer stall the node loop.
        tokio::spawn(async move {
            if let Some(delay) = delay {
                tokio::time::sleep(delay).await;
            }
            if let Ok(mut stream) = TcpStream::connect(addr).await {
                let _ = write_frame(&mut stream, &wire).await;
            }
        });
    }

    /// Seeds the sampler view (used before spawning in custom setups).
    pub fn bootstrap(&mut self, entries: &[ViewEntry]) {
        self.sampler.bootstrap(entries);
    }
}

/// Bootstraps a handle-less runtime for direct driving in tests.
#[doc(hidden)]
pub async fn bind_probe_listener() -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind("127.0.0.1:0").await?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn config(id: u64, a: f64, period_ms: u64) -> NodeConfig {
        NodeConfig {
            id: NodeId::new(id),
            attribute: attr(a),
            partition: Partition::equal(2).unwrap(),
            protocol: ProtocolKind::Ranking,
            sampler: SamplerKind::Cyclon,
            view_size: 8,
            period: Duration::from_millis(period_ms),
            seed: id,
            faults: FaultPlan::none(),
        }
    }

    #[tokio::test]
    async fn node_spawns_registers_and_shuts_down() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let handle = NodeRuntime::spawn(config(1, 5.0, 10), directory.clone())
            .await
            .unwrap();
        assert!(directory.lock().await.contains_key(&NodeId::new(1)));
        assert_eq!(handle.id, NodeId::new(1));
        let snap = handle.shutdown().await;
        assert_eq!(snap.id, NodeId::new(1));
        assert_eq!(snap.attribute, attr(5.0));
    }

    #[tokio::test]
    async fn two_nodes_exchange_updates() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let h1 = NodeRuntime::spawn(config(1, 10.0, 5), directory.clone())
            .await
            .unwrap();
        let h2 = NodeRuntime::spawn(config(2, 20.0, 5), directory.clone())
            .await
            .unwrap();

        // Manually introduce node 2 to node 1 by sending it a view entry
        // through the wire: a ViewReq from node 2's identity.
        let addr1 = { directory.lock().await[&NodeId::new(1)] };
        let addr2 = { directory.lock().await[&NodeId::new(2)] };
        let mut stream = TcpStream::connect(addr1).await.unwrap();
        let intro = WireMsg {
            reply_to: addr2.to_string(),
            msg: ProtocolMsg::ViewReq {
                from: NodeId::new(2),
                entries: vec![ViewEntry::new(NodeId::new(2), attr(20.0), 0.5)],
            },
        };
        write_frame(&mut stream, &intro).await.unwrap();
        drop(stream);

        // Give them a few periods to gossip.
        tokio::time::sleep(Duration::from_millis(120)).await;

        let s1 = h1.shutdown().await;
        let s2 = h2.shutdown().await;
        // Node 1 (attribute 10) saw node 2's larger attribute: its estimate
        // must have dropped below 1/2 territory eventually; at minimum both
        // made progress (ticks advanced).
        assert!(s1.ticks > 3, "node 1 ticked: {}", s1.ticks);
        assert!(s2.ticks > 3, "node 2 ticked: {}", s2.ticks);
        // Ranking with samples: node 1's estimate reflects lower rank than
        // node 2's.
        assert!(
            s1.estimate <= s2.estimate + 0.5,
            "estimates diverged nonsensically: {} vs {}",
            s1.estimate,
            s2.estimate
        );
    }
}
