//! One protocol node as a tokio task.
//!
//! A [`NodeRuntime`] owns exactly what a paper node owns: its protocol state
//! (Fig. 2 / Fig. 5), its view via a peer sampler (Fig. 3), and a periodic
//! timer (`period_i` of the pseudocode). Every `period` it runs the
//! membership shuffle — sending a real `ViewReq` instead of the simulator's
//! atomic exchange — and then the protocol's active thread; incoming frames
//! drive the passive threads.
//!
//! ## Addressing
//!
//! View entries identify peers by [`NodeId`]; the mapping to socket
//! addresses lives in a shared [`Directory`] that the cluster harness
//! pre-populates (a stand-in for the out-of-band bootstrap/discovery any
//! deployed gossip system relies on). Messages also carry a `reply_to`
//! address so responses never need the directory.
//!
//! ## Fault tolerance
//!
//! The paper's setting is dynamic — peers crash, restart and refuse
//! connections — so the outbound path is built to survive it. Every send is
//! handed to a short-lived per-peer **link task** through a bounded channel
//! (`NodeRuntime::ship` never awaits the network), and the link task
//! applies the [`RetryPolicy`]: connect/write timeouts, bounded retries
//! with deterministic exponential backoff, and consecutive-failure strikes.
//! A peer that keeps failing is reported back to the node loop as a
//! dead-peer verdict and evicted from the sampler view and the directory.
//! The gossip timer therefore never stalls on a slow or dead peer; at worst
//! a message is dropped, which gossip tolerates by design.

use crate::codec::{read_frame_timeout, write_frame, WireMsg};
use crate::retry::RetryPolicy;
use dslice_algorithms::ProtocolKind;
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{Attribute, NodeId, Partition, ProtocolMsg, ViewEntry};
use dslice_gossip::{build_sampler, PeerSampler, SamplerKind};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc::TrySendError;
use tokio::sync::{mpsc, watch, Mutex};
use tokio::task::JoinHandle;

/// Wire-level fault injection: probabilistic loss and added delay applied to
/// every outgoing message. The TCP substrate is reliable per connection;
/// these knobs re-introduce the datagram-like behaviour the protocols are
/// designed for, so the simulator's `loss_rate` / `LatencyModel` findings
/// can be checked over real sockets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability that an outgoing message is silently dropped.
    pub loss: f64,
    /// Extra delay drawn uniformly from this range before the message is
    /// written to the wire.
    pub delay: Option<(Duration, Duration)>,
}

impl FaultPlan {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform loss at probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan {
            loss: p,
            delay: None,
        }
    }

    /// Uniform extra delay in `[min, max]`.
    pub fn delayed(min: Duration, max: Duration) -> Self {
        FaultPlan {
            loss: 0.0,
            delay: Some((min, max)),
        }
    }

    /// Rejects plans with a loss probability outside `[0, 1]` or an
    /// inverted delay range — mirroring the `LatencyModel::Uniform`
    /// validation on the simulator side.
    pub fn validate(&self) -> io::Result<()> {
        if !self.loss.is_finite() || !(0.0..=1.0).contains(&self.loss) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("FaultPlan loss must be in [0, 1], got {}", self.loss),
            ));
        }
        if let Some((min, max)) = self.delay {
            if min > max {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("FaultPlan delay range inverted: {min:?} > {max:?}"),
                ));
            }
        }
        Ok(())
    }
}

/// Shared id → address book (the discovery substrate).
pub type Directory = Arc<Mutex<HashMap<NodeId, SocketAddr>>>;

/// Static configuration of one network node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's identity.
    pub id: NodeId,
    /// This node's attribute value.
    pub attribute: Attribute,
    /// The global slice partition.
    pub partition: Partition,
    /// Which protocol to run.
    pub protocol: ProtocolKind,
    /// Peer-sampling substrate (Cyclon by default).
    pub sampler: SamplerKind,
    /// View size `c`.
    pub view_size: usize,
    /// The gossip period (`period_i` of Figs. 2/5).
    pub period: Duration,
    /// Per-node RNG seed.
    pub seed: u64,
    /// Wire-level fault injection applied to outgoing messages.
    pub faults: FaultPlan,
    /// Timeout/retry/eviction policy for outbound sends.
    pub retry: RetryPolicy,
    /// Fault-injection hook: panic after completing this many ticks, so
    /// crash classification and supervised restart can be exercised
    /// deterministically. `None` (the default) never fires.
    pub die_after_ticks: Option<u64>,
}

/// A live snapshot of a node, published on every tick.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// The node's id.
    pub id: NodeId,
    /// The node's attribute.
    pub attribute: Attribute,
    /// The current rank estimate.
    pub estimate: f64,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Outgoing messages dropped by the fault plan.
    pub dropped: u64,
    /// Delivery retries performed by link tasks.
    pub retries: u64,
    /// Connect/write attempts that hit their timeout.
    pub timeouts: u64,
    /// Messages undelivered after all attempts.
    pub send_failures: u64,
    /// Peers evicted after a dead-peer verdict.
    pub evictions: u64,
    /// Messages dropped because a link queue was full.
    pub queue_drops: u64,
    /// Wall-clock milliseconds since this runtime instance started (a
    /// restarted node starts again from zero).
    pub uptime_ms: u64,
    /// The deepest any outbound link queue has ever been, in messages —
    /// the early-warning signal that a peer is falling behind before
    /// `queue_drops` starts counting.
    pub peak_queue_depth: u64,
}

/// How a node task ended, as observed by whoever reaps the handle.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeExit {
    /// Graceful shutdown; carries the final state.
    Clean(NodeSnapshot),
    /// The node task panicked; carries the last published snapshot.
    Crashed {
        /// The panic message.
        reason: String,
        /// The last snapshot published before the crash.
        last: NodeSnapshot,
    },
    /// The node task was aborted (chaos kill or harness abort).
    Killed {
        /// The last snapshot published before the kill.
        last: NodeSnapshot,
    },
}

impl NodeExit {
    /// The best available final snapshot, whatever the exit kind.
    pub fn last_snapshot(&self) -> NodeSnapshot {
        match self {
            NodeExit::Clean(snap) => *snap,
            NodeExit::Crashed { last, .. } | NodeExit::Killed { last } => *last,
        }
    }
}

/// What the listener does with inbound connections; driven by chaos plans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AcceptGate {
    /// Accept and read normally (the default).
    #[default]
    Open,
    /// Close the listening socket: connects fail fast with "refused".
    Refuse,
    /// Accept connections but never read them; they are reset (dropped)
    /// when the gate changes.
    Stall,
}

/// Handle to a spawned node: live snapshots, shutdown, final state.
#[derive(Debug)]
pub struct NodeHandle {
    /// The node's id.
    pub id: NodeId,
    /// The address the node listens on.
    pub addr: SocketAddr,
    snapshot_rx: watch::Receiver<NodeSnapshot>,
    shutdown_tx: watch::Sender<bool>,
    gate_tx: watch::Sender<AcceptGate>,
    join: JoinHandle<NodeSnapshot>,
}

impl NodeHandle {
    /// The most recent published snapshot.
    pub fn snapshot(&self) -> NodeSnapshot {
        *self.snapshot_rx.borrow()
    }

    /// Whether the node task has exited (cleanly, by panic, or by kill).
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Changes what the node's listener does with inbound connections.
    pub fn set_accept_gate(&self, gate: AcceptGate) {
        let _ = self.gate_tx.send(gate);
    }

    /// Crashes the node abruptly: the task is aborted (its future — inbox,
    /// links, connections — is dropped on the spot) and the listener is
    /// closed. Peers discover the death through failed sends, exactly as
    /// with a real process crash. Reap the handle with [`NodeHandle::reap`].
    pub fn crash(&self) {
        self.join.abort();
        let _ = self.shutdown_tx.send(true);
    }

    /// Signals graceful shutdown and reaps the exit.
    pub async fn stop(self) -> NodeExit {
        let _ = self.shutdown_tx.send(true);
        self.reap().await
    }

    /// Waits for the task to end and classifies the exit. A panicked node
    /// surfaces as [`NodeExit::Crashed`] — it never propagates into the
    /// caller.
    pub async fn reap(self) -> NodeExit {
        let last = *self.snapshot_rx.borrow();
        match self.join.await {
            Ok(snapshot) => NodeExit::Clean(snapshot),
            Err(e) if e.is_cancelled() => NodeExit::Killed { last },
            Err(e) => NodeExit::Crashed {
                reason: e.to_string(),
                last,
            },
        }
    }
}

/// Counters shared between the node loop and its link tasks.
#[derive(Debug, Default)]
struct NetCounters {
    retries: AtomicU64,
    timeouts: AtomicU64,
    send_failures: AtomicU64,
}

/// One queued outbound message.
struct Outbound {
    wire: WireMsg,
    /// Fault-injected extra latency, applied by the link task.
    delay: Option<Duration>,
}

/// A dead-peer verdict from a link task: `strike_limit` consecutive
/// messages to `peer` failed every delivery attempt.
struct DeadVerdict {
    peer: NodeId,
    /// The address the failures were observed against (`None` if the peer
    /// had already vanished from the directory). Eviction only removes the
    /// directory entry if it still maps here, so a restarted peer's fresh
    /// registration is never clobbered by a stale verdict.
    addr: Option<SocketAddr>,
}

/// Capacity of a per-peer link queue. Gossip sends a handful of messages
/// per peer per period; a full queue means the peer is badly behind and
/// dropping (counted) is the right call.
const LINK_QUEUE: usize = 16;

/// Everything a link task needs to deliver to one peer.
struct Link {
    peer: NodeId,
    directory: Directory,
    policy: RetryPolicy,
    seed: u64,
    counters: Arc<NetCounters>,
    strikes: Arc<AtomicU32>,
    /// Messages currently queued on this link; the node increments on
    /// enqueue, the link task decrements per dequeue.
    depth: Arc<AtomicU64>,
    verdict: mpsc::Sender<DeadVerdict>,
}

impl Link {
    /// Drains the queue and exits. Link tasks are deliberately short-lived
    /// — one OS thread each under the vendored executor — so they deliver
    /// the burst in hand and get off the scheduler; the node respawns the
    /// link on the next send. (A message enqueued in the instant between
    /// the final empty check and the receiver drop is lost; gossip treats
    /// that as one more lost datagram.)
    async fn run(self, mut rx: mpsc::Receiver<Outbound>) {
        let mut conn: Option<TcpStream> = None;
        while let Some(out) = rx.try_recv() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            match self.deliver(&out, &mut conn).await {
                Ok(()) => {
                    self.strikes.store(0, Ordering::Release);
                }
                Err(addr) => {
                    self.counters.send_failures.fetch_add(1, Ordering::Relaxed);
                    let strikes = self.strikes.fetch_add(1, Ordering::AcqRel) + 1;
                    if strikes >= self.policy.strike_limit {
                        let _ = self.verdict.try_send(DeadVerdict {
                            peer: self.peer,
                            addr,
                        });
                        return;
                    }
                }
            }
        }
    }

    /// Delivers one message under the retry policy. The peer's address is
    /// re-resolved from the directory on every attempt so a peer that
    /// restarted on a new port is picked up mid-message. On failure,
    /// returns the last address tried.
    async fn deliver(
        &self,
        out: &Outbound,
        conn: &mut Option<TcpStream>,
    ) -> Result<(), Option<SocketAddr>> {
        if let Some(delay) = out.delay {
            tokio::time::sleep(delay).await;
        }
        let mut last_addr = None;
        for attempt in 0..self.policy.attempts {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                let pause = self.policy.backoff(self.seed, self.peer.as_u64(), attempt);
                tokio::time::sleep(pause).await;
            }
            let addr = { self.directory.lock().await.get(&self.peer).copied() };
            let Some(addr) = addr else {
                // Unregistered peer: no address to retry against.
                return Err(last_addr);
            };
            if last_addr != Some(addr) {
                // The peer moved (restart on a new port): drop the stale
                // connection.
                *conn = None;
            }
            last_addr = Some(addr);
            if conn.is_none() {
                match tokio::time::timeout(self.policy.connect_timeout, TcpStream::connect(addr))
                    .await
                {
                    Ok(Ok(stream)) => *conn = Some(stream),
                    Ok(Err(_refused)) => continue,
                    Err(_elapsed) => {
                        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            let stream = conn.as_mut().expect("connection established above");
            match tokio::time::timeout(self.policy.write_timeout, write_frame(stream, &out.wire))
                .await
            {
                Ok(Ok(())) => return Ok(()),
                Ok(Err(_broken)) => *conn = None,
                Err(_elapsed) => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    *conn = None;
                }
            }
        }
        Err(last_addr)
    }
}

/// The node runtime: protocol + sampler + listener, driven by one task.
pub struct NodeRuntime {
    cfg: NodeConfig,
    proto: Box<dyn SliceProtocol>,
    sampler: Box<dyn PeerSampler>,
    directory: Directory,
    rng: StdRng,
    my_addr: SocketAddr,
    started: std::time::Instant,
    ticks: u64,
    dropped: u64,
    queue_drops: u64,
    evictions: u64,
    peak_queue_depth: u64,
    links: HashMap<NodeId, (mpsc::Sender<Outbound>, Arc<AtomicU64>)>,
    strikes: HashMap<NodeId, Arc<AtomicU32>>,
    counters: Arc<NetCounters>,
    verdict_tx: mpsc::Sender<DeadVerdict>,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.cfg.id)
            .field("addr", &self.my_addr)
            .field("ticks", &self.ticks)
            .finish()
    }
}

/// The [`Context`] for network nodes: collects sends; the runtime ships them
/// after the callback returns.
struct NetCtx<'a> {
    rng: &'a mut StdRng,
    out: &'a mut Vec<(NodeId, ProtocolMsg)>,
}

impl Context for NetCtx<'_> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        self.out.push((to, msg));
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }

    fn record(&mut self, _event: Event) {
        // Network nodes do not aggregate fleet statistics locally; the
        // cluster harness derives quality measures from snapshots.
    }
}

impl NodeRuntime {
    /// Binds a listener, registers with the directory, and spawns the node
    /// task. Returns a handle for monitoring, fault injection and shutdown.
    pub async fn spawn(cfg: NodeConfig, directory: Directory) -> io::Result<NodeHandle> {
        cfg.faults.validate()?;
        cfg.retry.validate()?;
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        let my_addr = listener.local_addr()?;
        directory.lock().await.insert(cfg.id, my_addr);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let proto = cfg
            .protocol
            .build(cfg.id, cfg.attribute, &cfg.partition, &mut rng);
        let sampler = build_sampler(cfg.sampler, cfg.id, cfg.view_size)
            .expect("view_size validated by caller");

        let snapshot = NodeSnapshot {
            id: cfg.id,
            attribute: cfg.attribute,
            estimate: proto.estimate(),
            ticks: 0,
            dropped: 0,
            retries: 0,
            timeouts: 0,
            send_failures: 0,
            evictions: 0,
            queue_drops: 0,
            uptime_ms: 0,
            peak_queue_depth: 0,
        };
        let (snapshot_tx, snapshot_rx) = watch::channel(snapshot);
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let (gate_tx, gate_rx) = watch::channel(AcceptGate::Open);
        let (inbox_tx, inbox_rx) = mpsc::channel::<WireMsg>(256);
        let (verdict_tx, verdict_rx) = mpsc::channel::<DeadVerdict>(64);

        // Accept loop: one lightweight task per connection, frames go to
        // the node's inbox. Reads are deadline-bounded so stalled peers
        // cannot pin reader tasks.
        let read_timeout = (cfg.period * 10).max(Duration::from_millis(200));
        tokio::spawn(Self::accept_loop(
            listener,
            inbox_tx,
            gate_rx,
            shutdown_rx.clone(),
            read_timeout,
        ));

        let runtime = NodeRuntime {
            cfg: cfg.clone(),
            proto,
            sampler,
            directory,
            rng,
            my_addr,
            started: std::time::Instant::now(),
            ticks: 0,
            dropped: 0,
            queue_drops: 0,
            evictions: 0,
            peak_queue_depth: 0,
            links: HashMap::new(),
            strikes: HashMap::new(),
            counters: Arc::new(NetCounters::default()),
            verdict_tx,
        };
        let join = tokio::spawn(runtime.run(inbox_rx, verdict_rx, snapshot_tx, shutdown_rx));

        Ok(NodeHandle {
            id: cfg.id,
            addr: my_addr,
            snapshot_rx,
            shutdown_tx,
            gate_tx,
            join,
        })
    }

    async fn accept_loop(
        listener: TcpListener,
        inbox: mpsc::Sender<WireMsg>,
        mut gate: watch::Receiver<AcceptGate>,
        mut shutdown: watch::Receiver<bool>,
        read_timeout: Duration,
    ) {
        let addr = listener.local_addr().ok();
        let mut listener = Some(listener);
        // Connections accepted while stalled: held unread, reset (dropped)
        // when the gate changes.
        let mut stalled: Vec<TcpStream> = Vec::new();
        loop {
            if *shutdown.borrow() {
                return;
            }
            let mode = *gate.borrow();
            if mode != AcceptGate::Stall {
                stalled.clear();
            }
            if mode == AcceptGate::Refuse {
                // Close the socket so connects fail fast instead of queueing.
                drop(listener.take());
                tokio::select! {
                    _ = gate.changed() => {}
                    _ = shutdown.changed() => {}
                }
                continue;
            }
            if listener.is_none() {
                // Coming out of a refusal window: rebind the same address.
                let Some(addr) = addr else { return };
                match TcpListener::bind(addr).await {
                    Ok(l) => listener = Some(l),
                    Err(_in_use) => {
                        tokio::time::sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                }
            }
            let bound = listener.as_ref().expect("listener bound above");
            tokio::select! {
                accepted = bound.accept() => {
                    let Ok((stream, _)) = accepted else { continue };
                    if mode == AcceptGate::Stall {
                        stalled.push(stream);
                        continue;
                    }
                    let inbox = inbox.clone();
                    tokio::spawn(async move {
                        let mut stream = stream;
                        // Read frames until the peer closes or stalls out;
                        // one connection may carry several frames.
                        while let Ok(msg) = read_frame_timeout(&mut stream, read_timeout).await {
                            if inbox.send(msg).await.is_err() {
                                break;
                            }
                        }
                    });
                }
                _ = gate.changed() => {}
                _ = shutdown.changed() => {}
            }
        }
    }

    /// The main node loop: ticks drive the active threads, inbox messages
    /// drive the passive threads, verdicts evict dead peers.
    async fn run(
        mut self,
        mut inbox: mpsc::Receiver<WireMsg>,
        mut verdicts: mpsc::Receiver<DeadVerdict>,
        snapshot_tx: watch::Sender<NodeSnapshot>,
        mut shutdown: watch::Receiver<bool>,
    ) -> NodeSnapshot {
        let mut ticker = tokio::time::interval(self.cfg.period);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        loop {
            tokio::select! {
                _ = ticker.tick() => {
                    self.on_tick();
                    self.ticks += 1;
                    let _ = snapshot_tx.send(self.snapshot());
                }
                Some(wire) = inbox.recv() => {
                    self.on_wire(wire).await;
                    let _ = snapshot_tx.send(self.snapshot());
                }
                Some(verdict) = verdicts.recv() => {
                    self.on_dead_peer(verdict).await;
                    let _ = snapshot_tx.send(self.snapshot());
                }
                _ = shutdown.changed() => {
                    if *shutdown.borrow() {
                        return self.snapshot();
                    }
                }
            }
        }
    }

    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.cfg.id,
            attribute: self.cfg.attribute,
            estimate: self.proto.estimate(),
            ticks: self.ticks,
            dropped: self.dropped,
            retries: self.counters.retries.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            send_failures: self.counters.send_failures.load(Ordering::Relaxed),
            evictions: self.evictions,
            queue_drops: self.queue_drops,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            peak_queue_depth: self.peak_queue_depth,
        }
    }

    fn self_entry(&self) -> ViewEntry {
        ViewEntry::new(
            self.cfg.id,
            self.cfg.attribute,
            self.proto.published_value(),
        )
    }

    /// One period: membership shuffle, then the protocol active thread.
    /// Entirely synchronous — sends only enqueue onto link channels — so
    /// the gossip timer can never be stalled by a slow peer.
    fn on_tick(&mut self) {
        if self.cfg.die_after_ticks.is_some_and(|d| self.ticks >= d) {
            panic!(
                "fault injection: node {} dying after {} ticks",
                self.cfg.id, self.ticks
            );
        }

        // Membership (Fig. 3, active side): the reply arrives asynchronously.
        let self_entry = self.self_entry();
        if let Some(req) = self.sampler.initiate(self_entry, &mut self.rng) {
            let msg = ProtocolMsg::ViewReq {
                from: self.cfg.id,
                entries: req.entries,
            };
            self.ship(req.partner, msg);
        }

        // Protocol active thread (Fig. 2 / Fig. 5).
        let mut out = Vec::new();
        {
            let mut ctx = NetCtx {
                rng: &mut self.rng,
                out: &mut out,
            };
            self.proto.on_active(self.sampler.view(), &mut ctx);
        }
        for (to, msg) in out {
            self.ship(to, msg);
        }
    }

    /// Dispatches one incoming frame.
    async fn on_wire(&mut self, wire: WireMsg) {
        // Learn the sender's address opportunistically.
        if let Ok(addr) = wire.reply_to.parse::<SocketAddr>() {
            self.directory.lock().await.insert(wire.msg.from(), addr);
        }
        match wire.msg {
            ProtocolMsg::ViewReq { from, entries } => {
                let self_entry = self.self_entry();
                let reply = self.sampler.handle_request(self_entry, from, &entries);
                self.ship(
                    from,
                    ProtocolMsg::ViewAck {
                        from: self.cfg.id,
                        entries: reply,
                    },
                );
            }
            ProtocolMsg::ViewAck { from, entries } => {
                self.sampler.handle_reply(from, &entries);
            }
            other => {
                let mut out = Vec::new();
                {
                    let mut ctx = NetCtx {
                        rng: &mut self.rng,
                        out: &mut out,
                    };
                    self.proto.on_message(self.sampler.view(), other, &mut ctx);
                }
                for (to, msg) in out {
                    self.ship(to, msg);
                }
            }
        }
    }

    /// Evicts a peer the link layer declared dead: out of the sampler view,
    /// out of the link table, and out of the directory — but only if its
    /// directory entry still points at the address that failed, so a peer
    /// that restarted elsewhere in the meantime keeps its registration.
    async fn on_dead_peer(&mut self, verdict: DeadVerdict) {
        let dead = verdict.peer;
        self.sampler.remove_dead(&|id| id != dead);
        self.links.remove(&dead);
        self.strikes.remove(&dead);
        if let Some(addr) = verdict.addr {
            let mut dir = self.directory.lock().await;
            if dir.get(&dead) == Some(&addr) {
                dir.remove(&dead);
            }
        }
        self.evictions += 1;
    }

    /// Ships one message: fault injection, then a non-blocking enqueue onto
    /// the peer's link. Never awaits the network.
    fn ship(&mut self, to: NodeId, msg: ProtocolMsg) {
        // Fault injection: loss first, then delay.
        use rand::Rng;
        if self.cfg.faults.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.faults.loss {
            self.dropped += 1;
            return;
        }
        let delay = self.cfg.faults.delay.map(|(min, max)| {
            if max > min {
                min + (max - min).mul_f64(self.rng.gen::<f64>())
            } else {
                min
            }
        });
        let wire = WireMsg {
            reply_to: self.my_addr.to_string(),
            msg,
        };
        self.enqueue(to, Outbound { wire, delay });
    }

    /// Hands a message to the peer's link task, spawning or respawning the
    /// link as needed.
    fn enqueue(&mut self, to: NodeId, out: Outbound) {
        if let Some((tx, depth)) = self.links.get(&to) {
            match tx.try_send(out) {
                Ok(()) => {
                    let d = depth.fetch_add(1, Ordering::AcqRel) + 1;
                    self.peak_queue_depth = self.peak_queue_depth.max(d);
                    return;
                }
                Err(TrySendError::Full(_)) => {
                    // The peer is badly behind; shed load like a lost
                    // datagram rather than blocking the node loop.
                    self.queue_drops += 1;
                    return;
                }
                Err(TrySendError::Closed(out)) => {
                    // The drain-and-exit link task finished; respawn it.
                    self.links.remove(&to);
                    self.spawn_link(to, out);
                    return;
                }
            }
        }
        self.spawn_link(to, out);
    }

    /// Creates a fresh link channel, enqueues `out` (a fresh channel always
    /// has room), and spawns the link task to drain it.
    fn spawn_link(&mut self, to: NodeId, out: Outbound) {
        let (tx, rx) = mpsc::channel::<Outbound>(LINK_QUEUE);
        tx.try_send(out)
            .unwrap_or_else(|_| unreachable!("fresh link queue has capacity"));
        let depth = Arc::new(AtomicU64::new(1));
        self.peak_queue_depth = self.peak_queue_depth.max(1);
        let strikes = Arc::clone(
            self.strikes
                .entry(to)
                .or_insert_with(|| Arc::new(AtomicU32::new(0))),
        );
        let link = Link {
            peer: to,
            directory: Arc::clone(&self.directory),
            policy: self.cfg.retry,
            seed: self.cfg.seed,
            counters: Arc::clone(&self.counters),
            strikes,
            depth: Arc::clone(&depth),
            verdict: self.verdict_tx.clone(),
        };
        tokio::spawn(link.run(rx));
        self.links.insert(to, (tx, depth));
    }

    /// Seeds the sampler view (used before spawning in custom setups).
    pub fn bootstrap(&mut self, entries: &[ViewEntry]) {
        self.sampler.bootstrap(entries);
    }
}

/// Bootstraps a handle-less runtime for direct driving in tests.
#[doc(hidden)]
pub async fn bind_probe_listener() -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind("127.0.0.1:0").await?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn config(id: u64, a: f64, period_ms: u64) -> NodeConfig {
        NodeConfig {
            id: NodeId::new(id),
            attribute: attr(a),
            partition: Partition::equal(2).unwrap(),
            protocol: ProtocolKind::Ranking,
            sampler: SamplerKind::Cyclon,
            view_size: 8,
            period: Duration::from_millis(period_ms),
            seed: id,
            faults: FaultPlan::none(),
            retry: RetryPolicy::for_period(Duration::from_millis(period_ms)),
            die_after_ticks: None,
        }
    }

    #[tokio::test]
    async fn node_spawns_registers_and_stops() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let handle = NodeRuntime::spawn(config(1, 5.0, 10), directory.clone())
            .await
            .unwrap();
        assert!(directory.lock().await.contains_key(&NodeId::new(1)));
        assert_eq!(handle.id, NodeId::new(1));
        let NodeExit::Clean(snap) = handle.stop().await else {
            panic!("clean stop expected");
        };
        assert_eq!(snap.id, NodeId::new(1));
        assert_eq!(snap.attribute, attr(5.0));
    }

    #[tokio::test]
    async fn spawn_rejects_invalid_fault_and_retry_plans() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let mut bad_loss = config(1, 5.0, 10);
        bad_loss.faults = FaultPlan::lossy(1.5);
        let err = NodeRuntime::spawn(bad_loss, directory.clone())
            .await
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let mut bad_delay = config(2, 5.0, 10);
        bad_delay.faults = FaultPlan::delayed(Duration::from_millis(10), Duration::from_millis(1));
        let err = NodeRuntime::spawn(bad_delay, directory.clone())
            .await
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let mut bad_retry = config(3, 5.0, 10);
        bad_retry.retry.attempts = 0;
        let err = NodeRuntime::spawn(bad_retry, directory.clone())
            .await
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(directory.lock().await.is_empty(), "no partial registration");
    }

    #[tokio::test]
    async fn die_after_ticks_surfaces_as_crashed() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let mut cfg = config(9, 5.0, 5);
        cfg.die_after_ticks = Some(2);
        let handle = NodeRuntime::spawn(cfg, directory).await.unwrap();
        // Wait for the injected panic to land.
        while !handle.is_finished() {
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        let exit = handle.reap().await;
        let NodeExit::Crashed { reason, last } = exit else {
            panic!("expected Crashed, got {exit:?}");
        };
        assert!(reason.contains("die_after_ticks") || reason.contains("dying"));
        assert_eq!(last.ticks, 2, "completed exactly the configured ticks");
    }

    #[tokio::test]
    async fn crash_kills_abruptly_and_reap_classifies_it() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let handle = NodeRuntime::spawn(config(4, 5.0, 10), directory)
            .await
            .unwrap();
        handle.crash();
        let exit = handle.reap().await;
        assert!(
            matches!(exit, NodeExit::Killed { .. }),
            "expected Killed, got {exit:?}"
        );
    }

    #[tokio::test]
    async fn two_nodes_exchange_updates() {
        let directory: Directory = Arc::new(Mutex::new(HashMap::new()));
        let h1 = NodeRuntime::spawn(config(1, 10.0, 5), directory.clone())
            .await
            .unwrap();
        let h2 = NodeRuntime::spawn(config(2, 20.0, 5), directory.clone())
            .await
            .unwrap();

        // Manually introduce node 2 to node 1 by sending it a view entry
        // through the wire: a ViewReq from node 2's identity.
        let addr1 = { directory.lock().await[&NodeId::new(1)] };
        let addr2 = { directory.lock().await[&NodeId::new(2)] };
        let mut stream = TcpStream::connect(addr1).await.unwrap();
        let intro = WireMsg {
            reply_to: addr2.to_string(),
            msg: ProtocolMsg::ViewReq {
                from: NodeId::new(2),
                entries: vec![ViewEntry::new(NodeId::new(2), attr(20.0), 0.5)],
            },
        };
        write_frame(&mut stream, &intro).await.unwrap();
        drop(stream);

        // Give them a few periods to gossip.
        tokio::time::sleep(Duration::from_millis(120)).await;

        let NodeExit::Clean(s1) = h1.stop().await else {
            panic!("clean stop expected");
        };
        let NodeExit::Clean(s2) = h2.stop().await else {
            panic!("clean stop expected");
        };
        // Node 1 (attribute 10) saw node 2's larger attribute: its estimate
        // must have dropped below 1/2 territory eventually; at minimum both
        // made progress (ticks advanced).
        assert!(s1.ticks > 3, "node 1 ticked: {}", s1.ticks);
        assert!(s2.ticks > 3, "node 2 ticked: {}", s2.ticks);
        // Ranking with samples: node 1's estimate reflects lower rank than
        // node 2's.
        assert!(
            s1.estimate <= s2.estimate + 0.5,
            "estimates diverged nonsensically: {} vs {}",
            s1.estimate,
            s2.estimate
        );
    }
}
