//! Trace exporters: JSON-lines and chrome://tracing trace-event JSON.
//!
//! Both formats are lossless — every field of [`TraceEvent`] survives a
//! round-trip, which the test suite exercises in both directions. The chrome
//! format stores the display timestamps in microseconds (what `about:tracing`
//! and Perfetto expect) but carries the exact nanosecond values in `args`, so
//! parsing back never loses precision.

use serde::Value;

use crate::trace::{TraceEvent, TraceKind};

fn uint(v: u64) -> Value {
    if v <= i64::MAX as u64 {
        Value::Int(v as i64)
    } else {
        Value::UInt(v)
    }
}

fn event_value(ev: &TraceEvent) -> Value {
    Value::Map(vec![
        ("seq".to_string(), uint(ev.seq)),
        ("ts_ns".to_string(), uint(ev.ts_ns)),
        ("dur_ns".to_string(), uint(ev.dur_ns)),
        ("cycle".to_string(), uint(ev.cycle)),
        ("node".to_string(), ev.node.map_or(Value::Null, uint)),
        ("kind".to_string(), Value::Str(ev.kind.name().to_string())),
        ("a".to_string(), uint(ev.a)),
        ("b".to_string(), uint(ev.b)),
    ])
}

fn field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

fn as_u64(v: &Value, name: &str) -> Result<u64, String> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::UInt(u) => Ok(*u),
        Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
        other => Err(format!(
            "field `{name}`: expected unsigned int, got {other:?}"
        )),
    }
}

fn event_from_value(v: &Value) -> Result<TraceEvent, String> {
    let m = v.as_map().ok_or("trace event is not a JSON object")?;
    let kind_name = field(m, "kind")?
        .as_str()
        .ok_or("field `kind`: expected string")?;
    let kind = TraceKind::from_name(kind_name)
        .ok_or_else(|| format!("unknown trace kind `{kind_name}`"))?;
    let node = match field(m, "node")? {
        Value::Null => None,
        other => Some(as_u64(other, "node")?),
    };
    Ok(TraceEvent {
        seq: as_u64(field(m, "seq")?, "seq")?,
        ts_ns: as_u64(field(m, "ts_ns")?, "ts_ns")?,
        dur_ns: as_u64(field(m, "dur_ns")?, "dur_ns")?,
        cycle: as_u64(field(m, "cycle")?, "cycle")?,
        node,
        kind,
        a: as_u64(field(m, "a")?, "a")?,
        b: as_u64(field(m, "b")?, "b")?,
    })
}

/// Serializes events as JSON-lines: one compact JSON object per line.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(&event_value(ev)).expect("trace event serializes"));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines trace back into events (blank lines are skipped).
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        out.push(event_from_value(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Serializes events as a chrome://tracing trace-event JSON document.
///
/// Spans become `ph:"X"` complete events, instants become `ph:"i"` global
/// instants. `tid` carries the node id (0 when unattributed); the exact
/// nanosecond payload rides in `args` so [`from_chrome`] is lossless.
pub fn to_chrome(events: &[TraceEvent]) -> String {
    let trace_events: Vec<Value> = events
        .iter()
        .map(|ev| {
            let mut fields = vec![
                ("name".to_string(), Value::Str(ev.kind.name().to_string())),
                (
                    "ph".to_string(),
                    Value::Str(if ev.kind.is_span() { "X" } else { "i" }.to_string()),
                ),
                ("pid".to_string(), Value::Int(0)),
                ("tid".to_string(), uint(ev.node.unwrap_or(0))),
                ("ts".to_string(), Value::Float(ev.ts_ns as f64 / 1000.0)),
            ];
            if ev.kind.is_span() {
                fields.push(("dur".to_string(), Value::Float(ev.dur_ns as f64 / 1000.0)));
            } else {
                fields.push(("s".to_string(), Value::Str("g".to_string())));
            }
            fields.push(("args".to_string(), event_value(ev)));
            Value::Map(fields)
        })
        .collect();
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(trace_events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

/// Parses a chrome trace-event document produced by [`to_chrome`] back into
/// events, reading the lossless `args` payload.
pub fn from_chrome(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let m = doc.as_map().ok_or("chrome trace is not a JSON object")?;
    let events = field(m, "traceEvents")?
        .as_seq()
        .ok_or("`traceEvents` is not an array")?;
    events
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let em = entry
                .as_map()
                .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
            event_from_value(field(em, "args")?).map_err(|e| format!("traceEvents[{i}]: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ALL_KINDS;

    fn sample_events() -> Vec<TraceEvent> {
        ALL_KINDS
            .iter()
            .enumerate()
            .map(|(i, &kind)| TraceEvent {
                seq: i as u64,
                ts_ns: 1_000 * i as u64 + 7,
                dur_ns: if kind.is_span() { 12_345 } else { 0 },
                cycle: i as u64 / 3,
                node: if i % 2 == 0 { Some(i as u64) } else { None },
                kind,
                a: i as u64 * 11,
                b: u64::MAX - i as u64,
            })
            .collect()
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(from_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn chrome_roundtrip_is_lossless() {
        let events = sample_events();
        let text = to_chrome(&events);
        assert_eq!(from_chrome(&text).unwrap(), events);
    }

    #[test]
    fn jsonl_to_chrome_to_jsonl_is_identity() {
        let events = sample_events();
        let jsonl = to_jsonl(&events);
        let via_chrome = from_chrome(&to_chrome(&from_jsonl(&jsonl).unwrap())).unwrap();
        assert_eq!(to_jsonl(&via_chrome), jsonl);
    }

    #[test]
    fn chrome_doc_has_expected_shape() {
        let events = sample_events();
        let doc: Value = serde_json::from_str(&to_chrome(&events)).unwrap();
        let m = doc.as_map().unwrap();
        let list = field(m, "traceEvents").unwrap().as_seq().unwrap();
        assert_eq!(list.len(), events.len());
        let first = list[0].as_map().unwrap();
        assert_eq!(field(first, "ph").unwrap().as_str(), Some("X"));
        assert!(field(first, "dur").is_ok());
    }

    #[test]
    fn parse_errors_are_reported_with_position() {
        assert!(from_jsonl("{\"seq\":0}").unwrap_err().contains("line 1"));
        assert!(from_chrome("[]").is_err());
        let bad_kind = "{\"seq\":0,\"ts_ns\":0,\"dur_ns\":0,\"cycle\":0,\"node\":null,\"kind\":\"x\",\"a\":0,\"b\":0}";
        assert!(from_jsonl(bad_kind)
            .unwrap_err()
            .contains("unknown trace kind"));
    }
}
