//! # dslice_obs — the workspace observability layer
//!
//! Three pillars, all deliberately off the deterministic output path:
//!
//! 1. **Flight recorder** ([`trace`]): a bounded ring buffer of structured
//!    [`TraceEvent`]s — phase spans with nanosecond timings, per-cycle
//!    churn/swap/defense summaries, and net retry/timeout/eviction/chaos
//!    instants — recorded behind a sampling [`TraceConfig`]. Recording only
//!    reads the wall clock and writes into the ring; it never touches RNG or
//!    protocol state, so every committed golden stays byte-identical with
//!    tracing enabled (enforced by test in `dslice_scenario`).
//! 2. **Metrics registry** ([`metrics`]): typed counters, gauges, and
//!    fixed-bucket deterministic histograms under one namespace
//!    (`dslice_sim_*`, `dslice_scenario_*`, `dslice_net_*`), exportable as
//!    Prometheus text ([`Registry::to_prometheus`]) and JSON
//!    ([`Registry::to_json`]).
//! 3. **Exporters** ([`export`], [`prom`]): lossless JSON-lines and
//!    chrome://tracing trace-event JSON for traces, plus a Prometheus text
//!    parser used to validate every rendered artifact.
//!
//! See `docs/OBSERVABILITY.md` for the trace schema, metric namespace, and
//! measured overhead numbers.

pub mod export;
pub mod metrics;
pub mod prom;
pub mod trace;

pub use metrics::{labeled, Histogram, Metric, MetricValue, Registry, COUNT_BUCKETS, NS_BUCKETS};
pub use prom::{parse as parse_prometheus, validate as validate_prometheus, PromSample};
pub use trace::{FlightRecorder, TraceConfig, TraceEvent, TraceKind, ALL_KINDS};
