//! Prometheus text exposition: rendering a [`Registry`] and a small parser
//! used by tests (and CI) to prove the rendered text is well-formed.

use crate::metrics::{Metric, MetricValue, Registry};

/// Formats a float the way Prometheus expects: integers without a trailing
/// `.0`, everything else via shortest-roundtrip `Display`.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn series_name(base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut body = String::new();
    if let Some(l) = labels {
        body.push_str(l);
    }
    if let Some(e) = extra {
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(e);
    }
    if body.is_empty() {
        format!("{base}{suffix}")
    } else {
        format!("{base}{suffix}{{{body}}}")
    }
}

fn render_metric(out: &mut String, m: &Metric) {
    let base = m.base_name().to_string();
    let labels = m.labels();
    match &m.value {
        MetricValue::Counter(c) => {
            out.push_str(&series_name(&base, "", labels, None));
            out.push(' ');
            out.push_str(&c.to_string());
            out.push('\n');
        }
        MetricValue::Gauge(g) => {
            out.push_str(&series_name(&base, "", labels, None));
            out.push(' ');
            out.push_str(&fmt_num(*g));
            out.push('\n');
        }
        MetricValue::Histogram(h) => {
            let cumulative = h.cumulative();
            for (bound, count) in h.bounds().iter().zip(&cumulative) {
                let le = format!("le=\"{}\"", fmt_num(*bound));
                out.push_str(&series_name(&base, "_bucket", labels, Some(&le)));
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
            }
            out.push_str(&series_name(&base, "_bucket", labels, Some("le=\"+Inf\"")));
            out.push(' ');
            out.push_str(&cumulative.last().copied().unwrap_or(0).to_string());
            out.push('\n');
            out.push_str(&series_name(&base, "_sum", labels, None));
            out.push(' ');
            out.push_str(&fmt_num(h.sum()));
            out.push('\n');
            out.push_str(&series_name(&base, "_count", labels, None));
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
        }
    }
}

/// Renders the registry in the Prometheus text exposition format.
///
/// `# HELP` / `# TYPE` headers are emitted once per base name, at its first
/// occurrence, so labeled series of the same family group under one header.
pub fn render(reg: &Registry) -> String {
    let mut out = String::new();
    let mut seen_bases: Vec<String> = Vec::new();
    for m in reg.iter() {
        let base = m.base_name();
        if !seen_bases.iter().any(|b| b == base) {
            seen_bases.push(base.to_string());
            out.push_str(&format!("# HELP {base} {}\n", m.help));
            out.push_str(&format!("# TYPE {base} {}\n", m.value.type_name()));
        }
        render_metric(&mut out, m);
    }
    out
}

/// One parsed sample line from a Prometheus text document.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The series name (without labels).
    pub name: String,
    /// Parsed `key="value"` labels, in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` bounds parse as `f64::INFINITY`).
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label `{rest}`: missing `=`"))?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("invalid label name `{key}`"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label `{key}`: value is not quoted"));
        }
        let close = rest[1..]
            .find('"')
            .ok_or_else(|| format!("label `{key}`: unterminated value"))?;
        labels.push((key.to_string(), rest[1..1 + close].to_string()));
        rest = rest[close + 2..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parses a Prometheus text document into its sample lines, validating the
/// line grammar (`# HELP`/`# TYPE` headers are checked and skipped).
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let ctx = |e: String| format!("line {}: {e}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let words: Vec<&str> = comment.split_whitespace().collect();
            match words.first() {
                Some(&"HELP") | Some(&"TYPE") => {
                    if words.len() < 3 {
                        return Err(ctx(format!("malformed `# {}` header", words[0])));
                    }
                    if !valid_name(words[1]) {
                        return Err(ctx(format!("invalid metric name `{}`", words[1])));
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        let (series, value_str) = line
            .rsplit_once(char::is_whitespace)
            .ok_or_else(|| ctx("missing value".to_string()))?;
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            s => s
                .parse::<f64>()
                .map_err(|_| ctx(format!("invalid value `{s}`")))?,
        };
        let series = series.trim();
        let (name, labels) = match series.find('{') {
            Some(open) => {
                if !series.ends_with('}') {
                    return Err(ctx(format!("unterminated labels in `{series}`")));
                }
                let labels = parse_labels(&series[open + 1..series.len() - 1]).map_err(ctx)?;
                (&series[..open], labels)
            }
            None => (series, Vec::new()),
        };
        if !valid_name(name) {
            return Err(ctx(format!("invalid metric name `{name}`")));
        }
        samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Convenience wrapper: parses and returns the sample count, for "this text
/// is valid Prometheus" assertions.
pub fn validate(text: &str) -> Result<usize, String> {
    parse(text).map(|s| s.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{labeled, COUNT_BUCKETS};

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter_add("dslice_sim_swaps_applied_total", "Swaps applied.", 42);
        r.gauge_set("dslice_sim_sdm", "Final slice disorder measure.", 0.125);
        for node in 0..2u64 {
            r.counter_add(
                &labeled("dslice_net_retries_total", "node", node),
                "Delivery retries.",
                node + 1,
            );
        }
        r.observe(
            "dslice_sim_swaps_per_cycle",
            "Swaps per cycle.",
            &COUNT_BUCKETS,
            3.0,
        );
        r
    }

    #[test]
    fn rendered_text_parses_and_counts_samples() {
        let text = sample_registry().to_prometheus();
        // 1 counter + 1 gauge + 2 labeled counters + (11 buckets + Inf + sum + count)
        assert_eq!(validate(&text).unwrap(), 4 + COUNT_BUCKETS.len() + 3);
    }

    #[test]
    fn labeled_series_share_one_type_header() {
        let text = sample_registry().to_prometheus();
        let headers = text
            .lines()
            .filter(|l| l.starts_with("# TYPE dslice_net_retries_total "))
            .count();
        assert_eq!(headers, 1);
        assert!(text.contains("dslice_net_retries_total{node=\"0\"} 1"));
        assert!(text.contains("dslice_net_retries_total{node=\"1\"} 2"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_with_inf() {
        let mut r = Registry::new();
        r.observe("h", "h", &[1.0, 2.0], 0.5);
        r.observe("h", "h", &[1.0, 2.0], 5.0);
        let text = r.to_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"2\"} 1"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("h_sum 5.5"));
        assert!(text.contains("h_count 2"));
        let samples = parse(&text).unwrap();
        let inf = samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("no_value").is_err());
        assert!(parse("1bad_name 3").is_err());
        assert!(parse("x{unclosed 3").is_err());
        assert!(parse("# HELP only_two").is_err());
        assert!(parse("x 1e3").unwrap()[0].value == 1000.0);
    }
}
