//! The deterministic flight recorder: a bounded ring buffer of structured
//! trace events.
//!
//! The recorder is strictly *observational*: recording an event reads the
//! wall clock and writes into a pre-sized ring, but never touches RNG state,
//! never allocates per event once the ring is warm, and is never consulted by
//! the code being traced. That is what keeps every committed golden
//! byte-identical whether tracing is on or off (enforced by test in
//! `dslice_scenario`).
//!
//! Timestamps are nanoseconds since the recorder was created, so traces from
//! one run are internally comparable but carry no absolute wall-clock time.

use std::collections::VecDeque;
use std::time::Instant;

/// Sampling and capacity knobs for a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. A disabled config records nothing.
    pub enabled: bool,
    /// Ring capacity in events. When full, the oldest event is evicted and
    /// [`FlightRecorder::dropped`] is incremented.
    pub capacity: usize,
    /// Record cycle-scoped events only every `sample_every`-th cycle
    /// (1 = every cycle). Instant events outside a cycle (e.g. net chaos)
    /// are always recorded.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 65_536,
            sample_every: 1,
        }
    }
}

impl TraceConfig {
    /// The default on-configuration (every cycle, 65 536-event ring).
    pub fn on() -> Self {
        TraceConfig::default()
    }

    /// A disabled configuration.
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        }
    }

    /// Sets the cycle sampling stride (clamped to at least 1).
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Sets the ring capacity (clamped to at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }
}

/// What a [`TraceEvent`] describes.
///
/// `phase.*` kinds are spans (`dur_ns` is meaningful); all other kinds are
/// instants (`dur_ns` is 0). The wire name (used by both exporters) is the
/// dotted string returned by [`TraceKind::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant meanings are the name strings below
pub enum TraceKind {
    PhaseChurn,
    PhaseDrain,
    PhaseMembership,
    PhaseRefresh,
    PhaseActive,
    PhaseDelivery,
    PhaseMetrics,
    /// Per-cycle churn summary: `a` = joined, `b` = left.
    CycleChurn,
    /// Per-cycle swap summary: `a` = swaps applied, `b` = swaps useless.
    CycleSwaps,
    /// Per-cycle defense summary: `a` = samples rejected, `b` = swaps abandoned.
    CycleDefense,
    /// Net delivery retries since the previous scrape (`a` = delta).
    NetRetry,
    /// Net connect/write timeouts since the previous scrape (`a` = delta).
    NetTimeout,
    /// Net send failures since the previous scrape (`a` = delta).
    NetSendFailure,
    /// Dead-peer evictions since the previous scrape (`a` = delta).
    NetEviction,
    /// Outbound queue drops since the previous scrape (`a` = delta).
    NetQueueDrop,
    /// A chaos action fired at `node` (`a` = action code: 0 crash, 1 restart,
    /// 2 refuse, 3 stall).
    NetChaos,
    /// A node exit was reaped (`a` = 0 clean, 1 crashed, 2 killed).
    NetExit,
}

/// All kinds, in wire order (used by exporters and tests).
pub const ALL_KINDS: [TraceKind; 17] = [
    TraceKind::PhaseChurn,
    TraceKind::PhaseDrain,
    TraceKind::PhaseMembership,
    TraceKind::PhaseRefresh,
    TraceKind::PhaseActive,
    TraceKind::PhaseDelivery,
    TraceKind::PhaseMetrics,
    TraceKind::CycleChurn,
    TraceKind::CycleSwaps,
    TraceKind::CycleDefense,
    TraceKind::NetRetry,
    TraceKind::NetTimeout,
    TraceKind::NetSendFailure,
    TraceKind::NetEviction,
    TraceKind::NetQueueDrop,
    TraceKind::NetChaos,
    TraceKind::NetExit,
];

impl TraceKind {
    /// The dotted wire name (stable across exporter formats).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::PhaseChurn => "phase.churn",
            TraceKind::PhaseDrain => "phase.drain",
            TraceKind::PhaseMembership => "phase.membership",
            TraceKind::PhaseRefresh => "phase.refresh",
            TraceKind::PhaseActive => "phase.active",
            TraceKind::PhaseDelivery => "phase.delivery",
            TraceKind::PhaseMetrics => "phase.metrics",
            TraceKind::CycleChurn => "cycle.churn",
            TraceKind::CycleSwaps => "cycle.swaps",
            TraceKind::CycleDefense => "cycle.defense",
            TraceKind::NetRetry => "net.retry",
            TraceKind::NetTimeout => "net.timeout",
            TraceKind::NetSendFailure => "net.send_failure",
            TraceKind::NetEviction => "net.eviction",
            TraceKind::NetQueueDrop => "net.queue_drop",
            TraceKind::NetChaos => "net.chaos",
            TraceKind::NetExit => "net.exit",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<TraceKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// Whether this kind is a span (has a meaningful duration).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            TraceKind::PhaseChurn
                | TraceKind::PhaseDrain
                | TraceKind::PhaseMembership
                | TraceKind::PhaseRefresh
                | TraceKind::PhaseActive
                | TraceKind::PhaseDelivery
                | TraceKind::PhaseMetrics
        )
    }
}

/// One recorded event. Fixed-size and `Copy` so the ring never allocates per
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number assigned at record time (survives ring
    /// eviction, so gaps reveal dropped events).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Simulation cycle or net supervision tick the event belongs to
    /// (0 when not cycle-scoped).
    pub cycle: u64,
    /// The node the event is attributed to, if any.
    pub node: Option<u64>,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`] variant docs).
    pub a: u64,
    /// Kind-specific payload (see [`TraceKind`] variant docs).
    pub b: u64,
}

/// A bounded, deterministic ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: TraceConfig,
    start: Instant,
    buf: VecDeque<TraceEvent>,
    seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder; the ring is pre-sized to `cfg.capacity`.
    pub fn new(cfg: TraceConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        FlightRecorder {
            cfg: TraceConfig { capacity, ..cfg },
            start: Instant::now(),
            buf: VecDeque::with_capacity(capacity),
            seq: 0,
            dropped: 0,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Nanoseconds elapsed since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Whether cycle-scoped events should be recorded for `cycle` under the
    /// configured sampling stride.
    pub fn wants_cycle(&self, cycle: u64) -> bool {
        self.cfg.enabled && cycle.is_multiple_of(self.cfg.sample_every.max(1))
    }

    /// Records a span with an explicit start timestamp and duration.
    pub fn span(&mut self, kind: TraceKind, cycle: u64, ts_ns: u64, dur_ns: u64) {
        self.push(TraceEvent {
            seq: 0,
            ts_ns,
            dur_ns,
            cycle,
            node: None,
            kind,
            a: 0,
            b: 0,
        });
    }

    /// Records an instant event stamped with the current recorder clock.
    pub fn instant(&mut self, kind: TraceKind, cycle: u64, node: Option<u64>, a: u64, b: u64) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent {
            seq: 0,
            ts_ns,
            dur_ns: 0,
            cycle,
            node,
            kind,
            a,
            b,
        });
    }

    fn push(&mut self, mut ev: TraceEvent) {
        if !self.cfg.enabled {
            return;
        }
        ev.seq = self.seq;
        self.seq += 1;
        if self.buf.len() == self.cfg.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the recorder, returning the retained events oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in ALL_KINDS {
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(TraceKind::from_name("nope"), None);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(TraceConfig::on().with_capacity(4));
        for i in 0..10 {
            r.instant(TraceKind::CycleSwaps, i, None, i, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.recorded(), 10);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::new(TraceConfig::off());
        r.instant(TraceKind::NetChaos, 0, Some(3), 0, 0);
        r.span(TraceKind::PhaseChurn, 1, 0, 10);
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
        assert!(!r.wants_cycle(1));
    }

    #[test]
    fn sampling_stride_gates_cycles() {
        let r = FlightRecorder::new(TraceConfig::on().with_sample_every(4));
        assert!(r.wants_cycle(0));
        assert!(!r.wants_cycle(1));
        assert!(!r.wants_cycle(3));
        assert!(r.wants_cycle(4));
        assert!(r.wants_cycle(8));
    }

    #[test]
    fn zero_sample_every_behaves_as_one() {
        let cfg = TraceConfig {
            sample_every: 0,
            ..TraceConfig::on()
        };
        let r = FlightRecorder::new(cfg);
        assert!(r.wants_cycle(1));
        assert!(r.wants_cycle(2));
    }
}
