//! The typed metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The registry is deliberately simple and deterministic: metrics live in a
//! `Vec` in first-registration order (so exports are stable and diffable),
//! histogram buckets are fixed at registration, and nothing reads a clock or
//! RNG. Labels are encoded in the metric name itself using the Prometheus
//! convention (`name{label="value"}`) — the exporters understand that shape
//! and group labeled series under one `# TYPE` header.

use std::collections::HashMap;

use serde::Value;

/// Exponential bucket bounds for nanosecond durations (1 µs … 10 s).
pub const NS_BUCKETS: [f64; 8] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Bucket bounds for per-cycle event counts (1 … 100 000).
pub const COUNT_BUCKETS: [f64; 11] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0, 10_000.0, 50_000.0, 100_000.0,
];

/// A fixed-bucket histogram (cumulative-on-export, like Prometheus).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts[bounds.len()]` is the
    /// overflow (`+Inf`) bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending finite upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// The configured upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bound, ending with the `+Inf` total.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// The value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A fixed-bucket histogram.
    Histogram(Histogram),
}

impl MetricValue {
    /// The Prometheus type keyword for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: full name (labels included), help text, and value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Full series name, e.g. `dslice_net_retries_total{node="3"}`.
    pub name: String,
    /// One-line help text (attached to the first series of a base name).
    pub help: String,
    /// Current value.
    pub value: MetricValue,
}

impl Metric {
    /// The name with any `{label="…"}` suffix stripped.
    pub fn base_name(&self) -> &str {
        base_of(&self.name)
    }

    /// The `label="…"` body, if the name carries labels.
    pub fn labels(&self) -> Option<&str> {
        let open = self.name.find('{')?;
        let close = self.name.rfind('}')?;
        Some(&self.name[open + 1..close])
    }
}

pub(crate) fn base_of(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Builds a labeled series name: `labeled("x_total", "node", "3")` →
/// `x_total{node="3"}`.
pub fn labeled(base: &str, label: &str, value: impl std::fmt::Display) -> String {
    format!("{base}{{{label}=\"{value}\"}}")
}

/// An insertion-ordered collection of typed metrics.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<Metric>,
    index: HashMap<String, usize>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry(&mut self, name: &str, help: &str, init: MetricValue) -> &mut Metric {
        let idx = match self.index.get(name) {
            Some(&i) => i,
            None => {
                self.entries.push(Metric {
                    name: name.to_string(),
                    help: help.to_string(),
                    value: init,
                });
                let i = self.entries.len() - 1;
                self.index.insert(name.to_string(), i);
                i
            }
        };
        &mut self.entries[idx]
    }

    /// Adds `delta` to a counter, registering it at 0 on first touch.
    pub fn counter_add(&mut self, name: &str, help: &str, delta: u64) {
        let m = self.entry(name, help, MetricValue::Counter(0));
        match &mut m.value {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("metric `{name}` is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets a gauge to `v`, registering it on first touch.
    pub fn gauge_set(&mut self, name: &str, help: &str, v: f64) {
        let m = self.entry(name, help, MetricValue::Gauge(0.0));
        match &mut m.value {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric `{name}` is a {}, not a gauge", other.type_name()),
        }
    }

    /// Observes `v` in a histogram, registering it with `bounds` on first
    /// touch (later calls reuse the registered buckets).
    pub fn observe(&mut self, name: &str, help: &str, bounds: &[f64], v: f64) {
        let m = self.entry(name, help, MetricValue::Histogram(Histogram::new(bounds)));
        match &mut m.value {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!(
                "metric `{name}` is a {}, not a histogram",
                other.type_name()
            ),
        }
    }

    /// Looks up a metric by full name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.index.get(name).map(|&i| &self.entries[i].value)
    }

    /// A counter's current value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// A gauge's current value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// All metrics in first-registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.entries.iter()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::prom::render(self)
    }

    /// Renders the registry as a pretty JSON object keyed by series name.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("registry serializes")
    }

    /// Renders the registry as one compact JSON line (for JSON-lines
    /// metric streams).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("registry serializes")
    }

    /// The registry as a JSON value, keyed by series name in insertion
    /// order.
    pub fn to_value(&self) -> Value {
        let entries: Vec<(String, Value)> = self
            .entries
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("type".to_string(), Value::Str(m.value.type_name().into())),
                    ("help".to_string(), Value::Str(m.help.clone())),
                ];
                match &m.value {
                    MetricValue::Counter(c) => {
                        fields.push(("value".to_string(), Value::UInt(*c)));
                    }
                    MetricValue::Gauge(g) => {
                        fields.push(("value".to_string(), Value::Float(*g)));
                    }
                    MetricValue::Histogram(h) => {
                        let buckets: Vec<Value> =
                            h.bounds().iter().map(|b| Value::Float(*b)).collect();
                        let cumulative: Vec<Value> =
                            h.cumulative().iter().map(|&c| Value::UInt(c)).collect();
                        fields.push(("bounds".to_string(), Value::Seq(buckets)));
                        fields.push(("cumulative".to_string(), Value::Seq(cumulative)));
                        fields.push(("sum".to_string(), Value::Float(h.sum())));
                        fields.push(("count".to_string(), Value::UInt(h.count())));
                    }
                }
                (m.name.clone(), Value::Map(fields))
            })
            .collect();
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = Registry::new();
        r.counter_add("x_total", "x", 2);
        r.counter_add("x_total", "x", 3);
        assert_eq!(r.counter("x_total"), Some(5));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge_set("g", "g", 1.5);
        r.gauge_set("g", "g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_are_le_semantics() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 5.0, 7.0, 50.0] {
            h.observe(v);
        }
        // le=1: {0.5, 1.0}; le=5: +{2.0, 5.0}; le=10: +{7.0}; +Inf: +{50.0}
        assert_eq!(h.cumulative(), vec![2, 4, 5, 6]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 65.5);
    }

    #[test]
    fn labeled_names_split_into_base_and_labels() {
        let name = labeled("dslice_net_retries_total", "node", 3);
        assert_eq!(name, "dslice_net_retries_total{node=\"3\"}");
        let m = Metric {
            name,
            help: String::new(),
            value: MetricValue::Counter(0),
        };
        assert_eq!(m.base_name(), "dslice_net_retries_total");
        assert_eq!(m.labels(), Some("node=\"3\""));
    }

    #[test]
    fn registration_order_is_preserved() {
        let mut r = Registry::new();
        r.counter_add("b", "b", 1);
        r.counter_add("a", "a", 1);
        r.gauge_set("c", "c", 0.0);
        let names: Vec<&str> = r.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn json_export_parses_back() {
        let mut r = Registry::new();
        r.counter_add("a_total", "a", 7);
        r.observe("h", "h", &COUNT_BUCKETS, 3.0);
        let v: serde::Value = serde_json::from_str(&r.to_json()).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "a_total");
    }
}
