//! # dslice — distributed slicing in dynamic systems
//!
//! A full Rust implementation of the gossip-based *distributed slicing*
//! protocols of Fernández, Gramoli, Jiménez, Kermarrec and Raynal
//! ("Distributed Slicing in Dynamic Systems", INRIA RR-6051 / ICDCS 2007).
//!
//! Slicing partitions a large, churning peer-to-peer network into *slices* —
//! groups holding a fixed **proportion** of the network, ordered by an
//! attribute (bandwidth, storage, uptime…) — with every node discovering its
//! own slice through gossip alone. This facade crate re-exports the whole
//! workspace:
//!
//! * [`dslice_core`] — the problem model: attributes, slices,
//!   partitions, views, disorder metrics, the protocol interface.
//! * [`dslice_gossip`] — peer-sampling substrates (the paper's
//!   Cyclon variant, Newscast, Lpbcast, a uniform oracle).
//! * [`dslice_algorithms`] — JK, mod-JK, the ranking algorithm
//!   and its sliding-window variant.
//! * [`dslice_sim`] — the deterministic cycle simulator with churn and
//!   concurrency models (the PeerSim substitute).
//! * [`dslice_analysis`] — Lemma 4.1 and Theorem 5.1 as
//!   executable statistics.
//! * [`dslice_aggregation`] — the related-work substrate (refs \[12\],
//!   \[13\]): push–pull averaging, size estimation, φ-quantile search.
//! * [`dslice_net`] — a tokio runtime running the same protocols over
//!   TCP.
//!
//! ## Quickstart
//!
//! Slice 1 000 nodes by a bandwidth-like attribute into 10 equal groups:
//!
//! ```
//! use dslice::prelude::*;
//!
//! let cfg = SimConfig {
//!     n: 1000,
//!     view_size: 12,
//!     partition: Partition::equal(10).unwrap(),
//!     seed: 7,
//!     ..SimConfig::default()
//! };
//! let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
//! let record = engine.run(60);
//!
//! // Disorder decreases monotonically-ish; every node ends near its slice.
//! assert!(record.final_sdm().unwrap() < record.cycles[0].sdm / 4.0);
//! ```
//!
//! See the repository `examples/` for runnable scenarios (the paper's Fig. 1
//! height example, heterogeneous bandwidth allocation, uptime-correlated
//! churn, and a real tokio cluster).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dslice_aggregation as aggregation;
pub use dslice_algorithms as algorithms;
pub use dslice_analysis as analysis;
pub use dslice_core as core;
pub use dslice_gossip as gossip;
pub use dslice_net as net;
pub use dslice_overlay as overlay;
pub use dslice_sim as sim;

/// The most commonly used items, one import away.
pub mod prelude {
    pub use dslice_algorithms::{
        BitWindow, Liar, Ordering, ProtocolKind, Ranking, SlidingRanking, SwapSelection,
    };
    pub use dslice_core::{
        metrics, rank, Attribute, NodeId, Partition, ProtocolMsg, Slice, SliceIndex, View,
        ViewEntry,
    };
    pub use dslice_gossip::{
        CyclonSampler, LpbcastSampler, NewscastSampler, PeerSampler, SamplerKind, UniformOracle,
    };
    pub use dslice_net::{
        AcceptGate, ChaosAction, ChaosEvent, ChaosPlan, ClusterConfig, ClusterReport,
        ClusterTotals, FaultPlan, LocalCluster, NodeExit, NodeExitKind, NodeExitRecord,
        RestartPolicy, RetryPolicy,
    };
    pub use dslice_sim::{
        AttributeDistribution, ChurnModel, Concurrency, CorrelatedChurn, CycleStats, Engine,
        FlashCrowd, LatencyModel, NoChurn, PhaseTimings, RunRecord, SessionChurn, SimConfig,
        UncorrelatedChurn, WeibullSessions,
    };
}
