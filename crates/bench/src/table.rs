//! A minimal numeric table with CSV output — the interchange format between
//! the experiment functions and the `figures` binary.

use std::io::{self, Write};

/// A named table of `f64` rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Table identifier (used as the CSV file stem, e.g. `fig4b`).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; every row has `columns.len()` entries.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the width does not match.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {} in table {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// The values of the named column.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Writes the table as CSV.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{}", self.columns.join(","))?;
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            writeln!(w, "{}", line.join(","))?;
        }
        Ok(())
    }

    /// Renders the table as aligned text (for terminal output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.name));
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
            out.push_str(&line.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_column() {
        let mut t = Table::new("test", &["cycle", "sdm"]);
        t.push(vec![1.0, 100.0]);
        t.push(vec![2.0, 50.0]);
        assert_eq!(t.column("sdm"), Some(vec![100.0, 50.0]));
        assert_eq!(t.column("missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("test", &["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("test", &["a", "b"]);
        t.push(vec![1.0, 2.5]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2.5\n");
    }

    #[test]
    fn render_contains_name_and_data() {
        let mut t = Table::new("fig", &["x"]);
        t.push(vec![3.0]);
        let s = t.render();
        assert!(s.contains("# fig"));
        assert!(s.contains("3.0000"));
    }
}
