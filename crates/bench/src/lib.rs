//! # dslice-bench
//!
//! The experiment harness behind `EXPERIMENTS.md`: one function per figure
//! of the paper's evaluation, each returning a [`Table`] that the `figures`
//! binary writes as CSV. Integration tests call the same functions at
//! reduced scale and assert the *shapes* the paper reports (who wins, what
//! plateaus, where curves inflect) rather than absolute values.
//!
//! | Experiment | Paper | Function |
//! |-----------|-------|----------|
//! | SDM vs GDM | Fig. 4(a) | [`experiments::fig4a`] |
//! | JK vs mod-JK convergence | Fig. 4(b) | [`experiments::fig4b`] |
//! | Unsuccessful swaps under concurrency | Fig. 4(c) | [`experiments::fig4c`] |
//! | Convergence under full concurrency | Fig. 4(d) | [`experiments::fig4d`] |
//! | Ranking vs ordering (static) | Fig. 6(a) | [`experiments::fig6a`] |
//! | Uniform oracle vs Cyclon views | Fig. 6(b) | [`experiments::fig6b`] |
//! | Churn burst, attribute-correlated | Fig. 6(c) | [`experiments::fig6c`] |
//! | Regular churn + sliding window | Fig. 6(d) | [`experiments::fig6d`] |
//! | Slice population bounds | Lemma 4.1 | [`experiments::lemma41`] |
//! | Sample-size bound | Theorem 5.1 | [`experiments::thm51`] |
//!
//! [`ablations`] adds one function per design choice (view size, slice
//! count, message loss, `j1` targeting, sampler substrate, window size) and
//! the quantile-search baseline of ref \[13\].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod experiments;
pub mod table;

pub use experiments::Scale;
pub use table::Table;
