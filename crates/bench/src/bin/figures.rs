//! Regenerates the paper's figures as CSV files.
//!
//! ```text
//! figures [--fig <id>] [--scale paper|small|tiny] [--seed N] [--out DIR]
//! ```
//!
//! `--fig all` (the default) runs every experiment; individual ids are
//! `4a 4b 4c 4d 6a 6b 6c 6d lemma41 thm51 ablation-sampler ablation-dist`.
//! CSVs land in `--out` (default `target/figures`), next to a `manifest.json`
//! recording the exact parameters of the run.

use dslice_bench::ablations;
use dslice_bench::experiments::{self, Scale};
use dslice_bench::Table;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    figs: Vec<String>,
    scale: Scale,
    seed: u64,
    out: PathBuf,
}

const ALL_FIGS: &[&str] = &[
    "4a",
    "4b",
    "4b-banded",
    "4c",
    "4d",
    "6a",
    "6b",
    "6c",
    "6d",
    "lemma41",
    "thm51",
    "ablation-sampler",
    "ablation-dist",
    "ablation-view-size",
    "ablation-slice-count",
    "ablation-loss",
    "ablation-targeting",
    "ablation-sampler-ranking",
    "ablation-window",
    "ablation-latency",
    "baseline-quantile",
];

fn parse_args() -> Result<Args, String> {
    let mut figs = Vec::new();
    let mut scale = Scale::Small;
    let mut seed = 0xD51CE;
    let mut out = PathBuf::from("target/figures");

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} requires a value", argv[i]))
        };
        match argv[i].as_str() {
            "--fig" => {
                let v = need_value(i)?;
                if v == "all" {
                    figs = ALL_FIGS.iter().map(|s| s.to_string()).collect();
                } else {
                    figs.push(v.clone());
                }
                i += 2;
            }
            "--scale" => {
                let v = need_value(i)?;
                scale = Scale::parse(v).ok_or_else(|| format!("unknown scale {v:?}"))?;
                i += 2;
            }
            "--seed" => {
                let v = need_value(i)?;
                seed = v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?;
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(need_value(i)?);
                i += 2;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: figures [--fig <id>|all] [--scale paper|small|tiny] \
                     [--seed N] [--out DIR]\n  figure ids: {}",
                    ALL_FIGS.join(" ")
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if figs.is_empty() {
        figs = ALL_FIGS.iter().map(|s| s.to_string()).collect();
    }
    Ok(Args {
        figs,
        scale,
        seed,
        out,
    })
}

fn run_fig(id: &str, scale: Scale, seed: u64) -> Result<Table, String> {
    Ok(match id {
        "4a" => experiments::fig4a(scale, seed),
        "4b" => experiments::fig4b(scale, seed),
        "4b-banded" => experiments::fig4b_banded(scale, &[seed, seed + 1, seed + 2]),
        "4c" => experiments::fig4c(scale, seed),
        "4d" => experiments::fig4d(scale, seed),
        "6a" => experiments::fig6a(scale, seed),
        "6b" => experiments::fig6b(scale, seed),
        "6c" => experiments::fig6c(scale, seed),
        "6d" => experiments::fig6d(scale, seed),
        "lemma41" => experiments::lemma41(seed),
        "thm51" => experiments::thm51(seed),
        "ablation-sampler" => experiments::ablation_sampler(scale, seed),
        "ablation-dist" => experiments::ablation_distribution(scale, seed),
        "ablation-view-size" => ablations::ablation_view_size(scale, seed),
        "ablation-slice-count" => ablations::ablation_slice_count(scale, seed),
        "ablation-loss" => ablations::ablation_loss(scale, seed),
        "ablation-targeting" => ablations::ablation_targeting(scale, seed),
        "ablation-sampler-ranking" => ablations::ablation_sampler_ranking(scale, seed),
        "ablation-window" => ablations::ablation_window(scale, seed),
        "ablation-latency" => ablations::ablation_latency(scale, seed),
        "baseline-quantile" => ablations::baseline_quantile(scale, seed),
        other => return Err(format!("unknown figure id {other:?}")),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut manifest = Vec::new();
    for id in &args.figs {
        let started = Instant::now();
        eprint!("fig {id} ({:?}, seed {}) … ", args.scale, args.seed);
        let table = match run_fig(id, args.scale, args.seed) {
            Ok(t) => t,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let path = args.out.join(format!("{}.csv", table.name));
        let file = match fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = table.write_csv(file) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let elapsed = started.elapsed();
        eprintln!(
            "{} rows -> {} ({elapsed:.2?})",
            table.rows.len(),
            path.display()
        );
        manifest.push(serde_json::json!({
            "fig": id,
            "csv": path.display().to_string(),
            "rows": table.rows.len(),
            "columns": table.columns,
            "scale": format!("{:?}", args.scale),
            "seed": args.seed,
            "elapsed_ms": elapsed.as_millis() as u64,
        }));
    }

    let manifest_path = args.out.join("manifest.json");
    match serde_json::to_string_pretty(&manifest) {
        Ok(json) => {
            if let Err(e) = fs::write(&manifest_path, json) {
                eprintln!("cannot write manifest: {e}");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("cannot serialize manifest: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("manifest -> {}", manifest_path.display());
    ExitCode::SUCCESS
}
