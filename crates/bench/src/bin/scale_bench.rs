//! Measures the engine's scale profile and writes it as JSON.
//!
//! ```text
//! scale_bench [--out FILE] [--quick]
//! ```
//!
//! Times steady-state cycles of the ranking protocol across the scale
//! dimensions (population × shard count × metrics cadence) and writes a
//! machine-readable summary — CI uploads it as the `BENCH_scale.json`
//! artifact so the cycle-cost trajectory is tracked per commit. `--quick`
//! shrinks the matrix (drops the 100k row) for fast smoke runs.

use dslice_core::Partition;
use dslice_sim::{Engine, ProtocolKind, SimConfig};
use std::process::ExitCode;
use std::time::Instant;

/// One measured configuration.
struct Row {
    n: usize,
    shards: usize,
    metrics_every: usize,
    cycles: usize,
    ms_per_cycle: f64,
}

fn measure(n: usize, shards: usize, metrics_every: usize, cycles: usize) -> Row {
    let cfg = SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 42,
        shards,
        metrics_every,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    // Warm-up: reach membership steady state before timing.
    for _ in 0..2 {
        engine.step();
    }
    let start = Instant::now();
    for _ in 0..cycles {
        engine.step();
    }
    let ms_per_cycle = start.elapsed().as_secs_f64() * 1000.0 / cycles as f64;
    Row {
        n,
        shards,
        metrics_every,
        cycles,
        ms_per_cycle,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_scale.json".to_string();
    let mut quick = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                let Some(path) = argv.get(i + 1) else {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                };
                out = path.clone();
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}\nusage: scale_bench [--out FILE] [--quick]");
                return ExitCode::FAILURE;
            }
        }
    }

    // (n, shards, metrics_every, timed cycles)
    let mut matrix: Vec<(usize, usize, usize, usize)> = vec![
        (1_000, 1, 1, 20),
        (10_000, 1, 1, 10),
        (10_000, 4, 1, 10),
        (10_000, 1, 10, 10),
    ];
    if !quick {
        matrix.push((100_000, 1, 10, 5));
        matrix.push((100_000, 4, 10, 5));
    }

    let mut rows = Vec::with_capacity(matrix.len());
    for (n, shards, metrics_every, cycles) in matrix {
        eprint!("n={n} shards={shards} metrics_every={metrics_every} … ");
        let row = measure(n, shards, metrics_every, cycles);
        eprintln!("{:.1} ms/cycle", row.ms_per_cycle);
        rows.push(row);
    }

    let summary = serde_json::json!({
        "bench": "scale_cost",
        "protocol": "ranking",
        "rows": rows
            .iter()
            .map(|row| {
                serde_json::json!({
                    "n": row.n,
                    "shards": row.shards,
                    "metrics_every": row.metrics_every,
                    "cycles": row.cycles,
                    "ms_per_cycle": row.ms_per_cycle,
                })
            })
            .collect::<Vec<_>>(),
    });

    let pretty = match serde_json::to_string_pretty(&summary) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("cannot serialize summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, pretty) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
