//! Measures the engine's scale profile and writes it as JSON.
//!
//! ```text
//! scale_bench [--out FILE] [--quick] [--curve]
//! ```
//!
//! Times steady-state cycles of the ranking protocol across the scale
//! dimensions (population × shard count × metrics cadence), with the
//! engine's opt-in per-phase breakdown enabled, and writes a
//! machine-readable summary — CI uploads it as the `BENCH_scale.json`
//! artifact so the cycle-cost trajectory is tracked per commit.
//!
//! * `--quick` shrinks the matrix (drops the 100k rows) for fast smoke runs.
//! * `--curve` measures the shard scaling curve instead: shards 1/2/4/8 at
//!   10k and 100k nodes — the matrix the multi-core CI job uploads as
//!   `BENCH_shard_curve.json`.
//!
//! The committed `BENCH_scale.json` at the repo root is the default matrix
//! measured on the CI container; `host.cores` records how much parallelism
//! the measuring host actually had (a single-core host proves determinism,
//! not speedup).

use dslice_core::Partition;
use dslice_sim::{Engine, PhaseTimings, ProtocolKind, SimConfig};
use std::process::ExitCode;
use std::time::Instant;

/// One measured configuration.
struct Row {
    n: usize,
    shards: usize,
    metrics_every: usize,
    cycles: usize,
    ms_per_cycle: f64,
    /// Mean per-phase ns over the timed cycles, as `(phase, ns)` rows —
    /// driven by [`PhaseTimings::rows`] so a phase added to the engine
    /// shows up here (and in the JSON artifact) without touching this file.
    phase_ns: Vec<(&'static str, u64)>,
}

impl Row {
    /// The mean ns of one named phase (0 if unknown).
    fn phase(&self, name: &str) -> u64 {
        self.phase_ns
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, ns)| ns)
    }
}

fn measure(n: usize, shards: usize, metrics_every: usize, cycles: usize) -> Row {
    let cfg = SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 42,
        shards,
        metrics_every,
        time_phases: true,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    // Warm-up: reach membership steady state (and warm the engine's scratch
    // buffers) before timing.
    for _ in 0..2 {
        engine.step();
    }
    let mut phase_total = PhaseTimings::default();
    let start = Instant::now();
    for _ in 0..cycles {
        let stats = engine.step();
        phase_total.accumulate(&stats.timings.expect("time_phases is on"));
    }
    let ms_per_cycle = start.elapsed().as_secs_f64() * 1000.0 / cycles as f64;
    Row {
        n,
        shards,
        metrics_every,
        cycles,
        ms_per_cycle,
        phase_ns: phase_total
            .rows()
            .iter()
            .map(|&(name, ns)| (name, ns / cycles as u64))
            .collect(),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut curve = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                let Some(path) = argv.get(i + 1) else {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                };
                out = Some(path.clone());
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--curve" => {
                curve = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}\nusage: scale_bench [--out FILE] [--quick] [--curve]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        if curve {
            "BENCH_shard_curve.json".to_string()
        } else {
            "BENCH_scale.json".to_string()
        }
    });

    // (n, shards, metrics_every, timed cycles)
    let matrix: Vec<(usize, usize, usize, usize)> = if curve {
        // The shard scaling curve: 1/2/4/8 shards at 10k and 100k.
        let mut m: Vec<_> = [1, 2, 4, 8]
            .into_iter()
            .map(|shards| (10_000, shards, 10, 10))
            .collect();
        m.extend(
            [1, 2, 4, 8]
                .into_iter()
                .map(|shards| (100_000, shards, 10, 5)),
        );
        m
    } else {
        let mut m = vec![
            (1_000, 1, 1, 20),
            (10_000, 1, 1, 10),
            (10_000, 4, 1, 10),
            (10_000, 1, 10, 10),
        ];
        if !quick {
            m.push((100_000, 1, 10, 5));
            m.push((100_000, 4, 10, 5));
        }
        m
    };

    let mut rows = Vec::with_capacity(matrix.len());
    for (n, shards, metrics_every, cycles) in matrix {
        eprint!("n={n} shards={shards} metrics_every={metrics_every} … ");
        let row = measure(n, shards, metrics_every, cycles);
        eprintln!(
            "{:.1} ms/cycle (membership {:.1} ms, refresh {:.1} ms, active {:.1} ms)",
            row.ms_per_cycle,
            row.phase("membership") as f64 / 1e6,
            row.phase("refresh") as f64 / 1e6,
            row.phase("active") as f64 / 1e6,
        );
        rows.push(row);
    }

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let summary = serde_json::json!({
        "bench": if curve { "shard_curve" } else { "scale_cost" },
        "protocol": "ranking",
        "host": serde_json::json!({ "cores": cores }),
        "rows": rows
            .iter()
            .map(|row| {
                serde_json::json!({
                    "n": row.n,
                    "shards": row.shards,
                    "metrics_every": row.metrics_every,
                    "cycles": row.cycles,
                    "ms_per_cycle": row.ms_per_cycle,
                    "phase_ns": serde_json::Value::Map(
                        row.phase_ns
                            .iter()
                            .map(|&(name, ns)| (name.to_string(), serde_json::Value::UInt(ns)))
                            .collect(),
                    ),
                    // Deprecated since PR 10 (kept one release cycle):
                    // microsecond floor-division of `phase_ns`.
                    "phase_us": serde_json::Value::Map(
                        row.phase_ns
                            .iter()
                            .map(|&(name, ns)| (name.to_string(), serde_json::Value::UInt(ns / 1000)))
                            .collect(),
                    ),
                })
            })
            .collect::<Vec<_>>(),
    });

    let pretty = match serde_json::to_string_pretty(&summary) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("cannot serialize summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, pretty) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
