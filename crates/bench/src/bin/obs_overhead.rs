//! Measures the tracing overhead of the observability layer and gates on it.
//!
//! ```text
//! obs_overhead [--out FILE] [--max-pct P] [--quick]
//! ```
//!
//! Runs the same ranking simulation twice — once bare, once with the flight
//! recorder attached at default sampling — and compares ms/cycle. CI runs
//! this as the observability overhead gate: if the traced run is more than
//! `--max-pct` percent slower than the untraced run (default 5%), the
//! process exits non-zero and the `obs` job fails.
//!
//! Each arm is measured `REPS` times interleaved (bare, traced, bare, …)
//! and the minimum per-cycle time is kept, which filters scheduler noise on
//! shared CI hosts far better than a mean does.
//!
//! * `--quick` shrinks the population for fast smoke runs (CI uses the
//!   default size).

use dslice_core::Partition;
use dslice_obs::TraceConfig;
use dslice_sim::{Engine, ProtocolKind, SimConfig};
use std::process::ExitCode;
use std::time::Instant;

/// Interleaved repetitions per arm; the minimum is reported.
const REPS: usize = 3;

fn engine(n: usize) -> Engine {
    let cfg = SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 42,
        ..SimConfig::default()
    };
    Engine::new(cfg, ProtocolKind::Ranking).unwrap()
}

/// Times `cycles` steady-state cycles; `traced` attaches the recorder at
/// default sampling first. Returns ms/cycle.
fn measure(n: usize, cycles: usize, traced: bool) -> f64 {
    let mut engine = engine(n);
    if traced {
        engine.set_tracer(TraceConfig::on());
    }
    for _ in 0..2 {
        engine.step();
    }
    let start = Instant::now();
    for _ in 0..cycles {
        engine.step();
    }
    start.elapsed().as_secs_f64() * 1000.0 / cycles as f64
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut max_pct = 5.0_f64;
    let mut quick = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                let Some(path) = argv.get(i + 1) else {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                };
                out = Some(path.clone());
                i += 2;
            }
            "--max-pct" => {
                let Some(p) = argv.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--max-pct requires a number");
                    return ExitCode::FAILURE;
                };
                max_pct = p;
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: obs_overhead [--out FILE] [--max-pct P] [--quick]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let (n, cycles) = if quick { (2_000, 20) } else { (10_000, 30) };

    let mut bare = f64::INFINITY;
    let mut traced = f64::INFINITY;
    for rep in 0..REPS {
        let b = measure(n, cycles, false);
        let t = measure(n, cycles, true);
        bare = bare.min(b);
        traced = traced.min(t);
        eprintln!("rep {rep}: bare {b:.3} ms/cycle, traced {t:.3} ms/cycle");
    }

    let overhead_pct = (traced - bare) / bare * 100.0;
    let pass = overhead_pct <= max_pct;
    eprintln!(
        "n={n}: bare {bare:.3} ms/cycle, traced {traced:.3} ms/cycle, \
         overhead {overhead_pct:+.2}% (gate {max_pct:.1}%) -> {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let json = serde_json::to_string_pretty(&serde_json::json!({
        "n": n,
        "cycles": cycles,
        "reps": REPS,
        "bare_ms_per_cycle": bare,
        "traced_ms_per_cycle": traced,
        "overhead_pct": overhead_pct,
        "max_pct": max_pct,
        "pass": pass,
    }))
    .expect("report serializes");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("overhead report -> {path}");
        }
        None => println!("{json}"),
    }

    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
