//! Ablation studies: one function per design choice DESIGN.md calls out.
//!
//! The paper's evaluation fixes several parameters (view size 20/10, 10 or
//! 100 slices, the Cyclon substrate, the `j1` boundary-targeting heuristic,
//! no message loss). Each ablation varies exactly one of them so the cost
//! of each choice is measurable in isolation. All functions follow the
//! [`experiments`](crate::experiments) conventions: deterministic given
//! `(scale, seed)`, returning a [`Table`] the `figures` binary writes as
//! CSV.

use crate::experiments::Scale;
use crate::table::Table;
use dslice_aggregation::{quantile::exact_quantile, QuantileSearch};
use dslice_core::Partition;
use dslice_gossip::SamplerKind;
use dslice_sim::{
    churn::ChurnSchedule, AttributeDistribution, CorrelatedChurn, Engine, ProtocolKind, SimConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_config(scale: Scale, slices: usize, view_size: usize, seed: u64) -> SimConfig {
    SimConfig {
        n: scale.n(),
        view_size,
        partition: Partition::equal(slices).expect("slices > 0"),
        seed,
        ..SimConfig::default()
    }
}

/// Appends `cycles` rows of `[cycle, curves[0][i], curves[1][i], …]`.
fn push_indexed(table: &mut Table, cycles: usize, curves: &[Vec<f64>]) {
    for i in 0..cycles {
        let mut row = Vec::with_capacity(curves.len() + 1);
        row.push((i + 1) as f64);
        for curve in curves {
            row.push(curve[i]);
        }
        table.push(row);
    }
}

/// Runs an engine, returning per-cycle SDM.
fn sdm_curve(cfg: SimConfig, kind: ProtocolKind, cycles: usize) -> Vec<f64> {
    Engine::new(cfg, kind)
        .expect("valid config")
        .run(cycles)
        .cycles
        .into_iter()
        .map(|c| c.sdm)
        .collect()
}

/// Runs an engine, returning per-cycle slice-assignment accuracy.
fn accuracy_curve(cfg: SimConfig, kind: ProtocolKind, cycles: usize) -> Vec<f64> {
    let mut engine = Engine::new(cfg, kind).expect("valid config");
    (0..cycles)
        .map(|_| {
            engine.step();
            engine.accuracy()
        })
        .collect()
}

/// View-size ablation: mod-JK with `c ∈ {5, 10, 20, 40}` (the paper fixes
/// c = 20). Larger views see more misplaced candidates per cycle, so
/// convergence accelerates — with diminishing returns that this table makes
/// visible.
///
/// Columns: `cycle, sdm_c5, sdm_c10, sdm_c20, sdm_c40`.
pub fn ablation_view_size(scale: Scale, seed: u64) -> Table {
    let cycles = scale.ordering_cycles();
    let curves: Vec<Vec<f64>> = [5usize, 10, 20, 40]
        .iter()
        .map(|&c| sdm_curve(base_config(scale, 10, c, seed), ProtocolKind::ModJk, cycles))
        .collect();
    let mut table = Table::new(
        "ablation_view_size",
        &["cycle", "sdm_c5", "sdm_c10", "sdm_c20", "sdm_c40"],
    );
    push_indexed(&mut table, cycles, &curves);
    table
}

/// Slice-count ablation: ranking accuracy with `k ∈ {2, 10, 50, 100}`
/// slices. More slices mean tighter boundaries, so per Theorem 5.1 each
/// node needs more samples before its assignment stabilizes: accuracy at a
/// fixed cycle count degrades as `k` grows.
///
/// Columns: `cycle, acc_k2, acc_k10, acc_k50, acc_k100`.
pub fn ablation_slice_count(scale: Scale, seed: u64) -> Table {
    let cycles = scale.ordering_cycles();
    let slice_counts = [2usize, 10, 50, 100];
    let curves: Vec<Vec<f64>> = slice_counts
        .iter()
        .map(|&k| {
            accuracy_curve(
                base_config(scale, k, 10, seed),
                ProtocolKind::Ranking,
                cycles,
            )
        })
        .collect();
    let mut table = Table::new(
        "ablation_slice_count",
        &["cycle", "acc_k2", "acc_k10", "acc_k50", "acc_k100"],
    );
    push_indexed(&mut table, cycles, &curves);
    table
}

/// Message-loss ablation: both families under `loss ∈ {0, 5%, 20%}`.
/// Ordering exchanges are request/reply (a lost ACK aborts the swap), so
/// loss slows them roughly proportionally; ranking messages are one-way
/// samples, so loss only thins the sample stream.
///
/// Columns: `cycle, modjk_l0, modjk_l5, modjk_l20, ranking_l0, ranking_l5,
/// ranking_l20`.
pub fn ablation_loss(scale: Scale, seed: u64) -> Table {
    let cycles = scale.ordering_cycles();
    let losses = [0.0f64, 0.05, 0.20];
    let run = |kind: ProtocolKind, loss: f64| {
        let mut cfg = base_config(scale, 10, 20, seed);
        cfg.loss_rate = loss;
        sdm_curve(cfg, kind, cycles)
    };
    let modjk: Vec<Vec<f64>> = losses
        .iter()
        .map(|&l| run(ProtocolKind::ModJk, l))
        .collect();
    let ranking: Vec<Vec<f64>> = losses
        .iter()
        .map(|&l| run(ProtocolKind::Ranking, l))
        .collect();
    let mut table = Table::new(
        "ablation_loss",
        &[
            "cycle",
            "modjk_l0",
            "modjk_l5",
            "modjk_l20",
            "ranking_l0",
            "ranking_l5",
            "ranking_l20",
        ],
    );
    for i in 0..cycles {
        table.push(vec![
            (i + 1) as f64,
            modjk[0][i],
            modjk[1][i],
            modjk[2][i],
            ranking[0][i],
            ranking[1][i],
            ranking[2][i],
        ]);
    }
    table
}

/// Targeting ablation: the ranking algorithm's `j1` boundary heuristic
/// (Fig. 5 lines 8–10) vs two uniformly random targets. The heuristic
/// shifts samples toward boundary nodes — exactly the nodes Theorem 5.1
/// says need them — so the heuristic's SDM should dominate late in the run.
///
/// Columns: `cycle, sdm_boundary, sdm_uniform_targets`.
pub fn ablation_targeting(scale: Scale, seed: u64) -> Table {
    let cycles = scale.ranking_cycles();
    let slices = scale.many_slices();
    let boundary = sdm_curve(
        base_config(scale, slices, 10, seed),
        ProtocolKind::Ranking,
        cycles,
    );
    let uniform = sdm_curve(
        base_config(scale, slices, 10, seed),
        ProtocolKind::RankingUniform,
        cycles,
    );
    let mut table = Table::new(
        "ablation_targeting",
        &["cycle", "sdm_boundary", "sdm_uniform_targets"],
    );
    for i in 0..cycles {
        table.push(vec![(i + 1) as f64, boundary[i], uniform[i]]);
    }
    table
}

/// Substrate ablation for the ranking algorithm: Cyclon variant vs Newscast
/// vs Lpbcast vs the uniform oracle. Extends Fig. 6(b) (which compares only
/// Cyclon against the oracle) to every sampler in the workspace.
///
/// Columns: `cycle, sdm_cyclon, sdm_newscast, sdm_lpbcast, sdm_oracle`.
pub fn ablation_sampler_ranking(scale: Scale, seed: u64) -> Table {
    let cycles = scale.ordering_cycles();
    let slices = scale.many_slices();
    let run = |sampler: SamplerKind| {
        let mut cfg = base_config(scale, slices, 10, seed);
        cfg.sampler = sampler;
        sdm_curve(cfg, ProtocolKind::Ranking, cycles)
    };
    let cyclon = run(SamplerKind::Cyclon);
    let newscast = run(SamplerKind::Newscast);
    let lpbcast = run(SamplerKind::Lpbcast);
    let oracle = run(SamplerKind::UniformOracle);
    let mut table = Table::new(
        "ablation_sampler_ranking",
        &[
            "cycle",
            "sdm_cyclon",
            "sdm_newscast",
            "sdm_lpbcast",
            "sdm_oracle",
        ],
    );
    for i in 0..cycles {
        table.push(vec![
            (i + 1) as f64,
            cyclon[i],
            newscast[i],
            lpbcast[i],
            oracle[i],
        ]);
    }
    table
}

/// Window-size ablation: the sliding-window ranking under the Fig. 6(d)
/// regular correlated churn with `W ∈ {scale/8, scale/2, 2·scale}` samples
/// (around the Fig. 6(d) default). Small windows track drift fastest but
/// are noisy (Theorem 5.1 needs `k` samples for tight estimates); large
/// windows approach the unbounded counter's staleness.
///
/// Columns: `cycle, sdm_small, sdm_medium, sdm_large`.
pub fn ablation_window(scale: Scale, seed: u64) -> Table {
    let cycles = scale.ranking_cycles();
    let slices = scale.many_slices();
    let medium = match scale {
        Scale::Paper => 2_000usize,
        Scale::Small => 1_200,
        Scale::Tiny => 400,
    };
    let windows = [medium / 4, medium, medium * 4];
    let curves: Vec<Vec<f64>> = windows
        .iter()
        .map(|&window| {
            let churn = Box::new(CorrelatedChurn::new(ChurnSchedule::regular(), 1.0));
            Engine::new(
                base_config(scale, slices, 10, seed),
                ProtocolKind::SlidingRanking { window },
            )
            .expect("valid config")
            .with_churn(churn)
            .run(cycles)
            .cycles
            .into_iter()
            .map(|c| c.sdm)
            .collect()
        })
        .collect();
    let mut table = Table::new(
        "ablation_window",
        &["cycle", "sdm_small", "sdm_medium", "sdm_large"],
    );
    push_indexed(&mut table, cycles, &curves);
    table
}

/// Latency ablation: both families under cross-cycle message delays
/// (uniform 1–4 cycles vs the paper's within-cycle model). Ordering
/// proposals go stale over multi-cycle flight (an extreme §4.5.2), while
/// the ranking family's one-way samples are delay-insensitive: an attribute
/// value is as correct late as it was on time.
///
/// Columns: `cycle, modjk_zero, modjk_lat, ranking_zero, ranking_lat`.
pub fn ablation_latency(scale: Scale, seed: u64) -> Table {
    use dslice_sim::LatencyModel;
    let cycles = scale.ordering_cycles();
    let run = |kind: ProtocolKind, latency: LatencyModel| {
        let mut cfg = base_config(scale, 10, 20, seed);
        cfg.latency = latency;
        sdm_curve(cfg, kind, cycles)
    };
    let lat = LatencyModel::Uniform { min: 1, max: 4 };
    let modjk_zero = run(ProtocolKind::ModJk, LatencyModel::Zero);
    let modjk_lat = run(ProtocolKind::ModJk, lat);
    let ranking_zero = run(ProtocolKind::Ranking, LatencyModel::Zero);
    let ranking_lat = run(ProtocolKind::Ranking, lat);
    let mut table = Table::new(
        "ablation_latency",
        &[
            "cycle",
            "modjk_zero",
            "modjk_lat",
            "ranking_zero",
            "ranking_lat",
        ],
    );
    for i in 0..cycles {
        table.push(vec![
            (i + 1) as f64,
            modjk_zero[i],
            modjk_lat[i],
            ranking_zero[i],
            ranking_lat[i],
        ]);
    }
    table
}

/// Baseline comparison against gossip φ-quantile search (ref \[13\]).
///
/// Slicing with `k` slices defines `k − 1` boundary values; the
/// quantile-search way to locate them is one bisection run per boundary,
/// each probe costing a full averaging epoch. The table reports, per
/// boundary: the probes used, the gossip rounds consumed, and the absolute
/// error of the found value — against the cycles the ranking algorithm
/// needs to bring *every node* to ≥ 95% correct assignment (one number,
/// repeated per row for plotting convenience).
///
/// The point the paper makes in §2, quantified: quantile search answers `k−1`
/// global questions at a cost that *scales with k*, while slicing answers
/// `n` per-node questions at a k-independent gossip cost.
///
/// Columns: `phi, probes, gossip_rounds, abs_error, ranking_cycles_to_95`.
pub fn baseline_quantile(scale: Scale, seed: u64) -> Table {
    let slices = 10usize;
    let n = scale.n().min(2_000); // quantile swarms are O(n) per round

    // A shared attribute population.
    let mut rng = StdRng::seed_from_u64(seed);
    let distribution = AttributeDistribution::default();
    let values: Vec<f64> = (0..n)
        .map(|_| distribution.sample(&mut rng).value())
        .collect();

    // Ranking cost: cycles to 95% correct assignment on the same population
    // size (its cost is independent of which boundary you care about).
    let cfg = base_config(scale, slices, 10, seed);
    let mut engine =
        Engine::new(SimConfig { n, ..cfg }, ProtocolKind::Ranking).expect("valid config");
    let mut ranking_cycles = scale.ranking_cycles();
    for cycle in 1..=scale.ranking_cycles() {
        engine.step();
        if engine.accuracy() >= 0.95 {
            ranking_cycles = cycle;
            break;
        }
    }

    let mut table = Table::new(
        "baseline_quantile",
        &[
            "phi",
            "probes",
            "gossip_rounds",
            "abs_error",
            "ranking_cycles_to_95",
        ],
    );
    for b in 1..slices {
        let phi = b as f64 / slices as f64;
        let result = QuantileSearch::new(phi).run(&values, seed ^ b as u64);
        let exact = exact_quantile(&values, phi);
        table.push(vec![
            phi,
            result.probes as f64,
            result.gossip_rounds as f64,
            (result.value - exact).abs(),
            ranking_cycles as f64,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_size_speeds_convergence() {
        let t = ablation_view_size(Scale::Tiny, 3);
        let c5 = t.column("sdm_c5").unwrap();
        let c40 = t.column("sdm_c40").unwrap();
        // Compare mid-run: bigger views must be ahead.
        let mid = c5.len() / 3;
        assert!(
            c40[mid] < c5[mid],
            "c=40 ({}) should beat c=5 ({}) at cycle {mid}",
            c40[mid],
            c5[mid]
        );
    }

    #[test]
    fn more_slices_is_harder() {
        let t = ablation_slice_count(Scale::Tiny, 5);
        let k2 = t.column("acc_k2").unwrap();
        let k100 = t.column("acc_k100").unwrap();
        let last = k2.len() - 1;
        assert!(
            k2[last] > k100[last],
            "2 slices ({}) must be easier than 100 ({})",
            k2[last],
            k100[last]
        );
    }

    #[test]
    fn loss_degrades_but_does_not_break() {
        let t = ablation_loss(Scale::Tiny, 7);
        let last = t.rows.len() - 1;
        let l0 = t.column("ranking_l0").unwrap();
        let l20 = t.column("ranking_l20").unwrap();
        let first = l0[0].max(l20[0]);
        // Both converge to well below the starting disorder.
        assert!(l0[last] < first / 3.0);
        assert!(l20[last] < first / 3.0, "20% loss must still converge");
    }

    #[test]
    fn latency_hurts_ordering_more_than_ranking() {
        let t = ablation_latency(Scale::Tiny, 13);
        // Compare total disorder over the run (area under the SDM curve):
        // a single mid-run sample lands after mod-JK has already converged
        // even with latency, where both ratios degenerate to 1.
        let auc = |name: &str| t.column(name).unwrap().iter().sum::<f64>();
        let modjk_slowdown = auc("modjk_lat") / auc("modjk_zero");
        let ranking_slowdown = auc("ranking_lat") / auc("ranking_zero");
        assert!(
            modjk_slowdown > ranking_slowdown,
            "ordering should suffer more from latency: modjk ×{modjk_slowdown:.2} vs ranking ×{ranking_slowdown:.2}"
        );
    }

    #[test]
    fn quantile_baseline_is_costly_and_accurate() {
        let t = baseline_quantile(Scale::Tiny, 11);
        assert_eq!(t.rows.len(), 9, "one row per internal boundary");
        for row in &t.rows {
            let gossip_rounds = row[2];
            assert!(
                gossip_rounds >= 90.0,
                "each boundary costs ≥ 3 epochs of 30 rounds"
            );
        }
        let errors = t.column("abs_error").unwrap();
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean_err < 0.1, "quantile search should be accurate");
    }
}
