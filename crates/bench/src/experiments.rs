//! One function per figure of the paper's evaluation.
//!
//! Every experiment is deterministic given `(scale, seed)`. The `Paper`
//! scale replays the published setup (10⁴ nodes); `Small` and `Tiny` shrink
//! the population for CI and integration tests while preserving every
//! qualitative shape the paper reports.

use crate::table::Table;
use dslice_analysis as analysis;
use dslice_core::Partition;
use dslice_gossip::SamplerKind;
use dslice_sim::{
    churn::ChurnSchedule, AttributeDistribution, Concurrency, CorrelatedChurn, Engine,
    ProtocolKind, SimConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Experiment scale: the paper's setup or a shrunken replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The published setup: n = 10⁴ (view 20/10, 10 or 100 slices).
    Paper,
    /// n = 2 000 — minutes-level full sweep.
    Small,
    /// n = 300 — seconds-level, used by the integration tests.
    Tiny,
}

impl Scale {
    /// Population size.
    pub fn n(self) -> usize {
        match self {
            Scale::Paper => 10_000,
            Scale::Small => 2_000,
            Scale::Tiny => 300,
        }
    }

    /// Cycles for the ordering experiments (Fig. 4).
    pub fn ordering_cycles(self) -> usize {
        match self {
            Scale::Paper => 100,
            Scale::Small => 100,
            Scale::Tiny => 80,
        }
    }

    /// Cycles for the ranking experiments (Fig. 6 runs 1 000 cycles).
    pub fn ranking_cycles(self) -> usize {
        match self {
            Scale::Paper => 1_000,
            Scale::Small => 600,
            Scale::Tiny => 200,
        }
    }

    /// Slice count for the 100-slice experiments, kept ≥ ~10 nodes/slice.
    pub fn many_slices(self) -> usize {
        match self {
            Scale::Paper => 100,
            Scale::Small => 100,
            Scale::Tiny => 20,
        }
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" | "full" => Some(Scale::Paper),
            "small" => Some(Scale::Small),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }
}

fn ordering_config(scale: Scale, slices: usize, seed: u64) -> SimConfig {
    SimConfig {
        n: scale.n(),
        view_size: 20,
        partition: Partition::equal(slices).expect("slices > 0"),
        seed,
        ..SimConfig::default()
    }
}

fn ranking_config(scale: Scale, seed: u64) -> SimConfig {
    SimConfig {
        n: scale.n(),
        view_size: 10,
        partition: Partition::equal(scale.many_slices()).expect("slices > 0"),
        seed,
        ..SimConfig::default()
    }
}

/// Fig. 4(a): evolution of GDM and SDM for mod-JK — the GDM reaches 0 while
/// the SDM plateaus at a positive floor (§4.5.1).
///
/// Columns: `cycle, gdm, sdm`.
pub fn fig4a(scale: Scale, seed: u64) -> Table {
    let cfg = ordering_config(scale, scale.many_slices(), seed);
    let mut engine = Engine::new(cfg, ProtocolKind::ModJk).expect("valid config");
    let record = engine.run(scale.ordering_cycles());
    let mut table = Table::new("fig4a", &["cycle", "gdm", "sdm"]);
    for c in &record.cycles {
        table.push(vec![c.cycle as f64, c.gdm, c.sdm]);
    }
    table
}

/// Fig. 4(b): SDM over time, JK vs mod-JK, 10 equal slices — mod-JK
/// converges significantly faster; both share the same SDM floor (they sort
/// the same multiset of random values).
///
/// Columns: `cycle, sdm_jk, sdm_modjk`.
pub fn fig4b(scale: Scale, seed: u64) -> Table {
    let jk = Engine::new(ordering_config(scale, 10, seed), ProtocolKind::Jk)
        .expect("valid config")
        .run(scale.ordering_cycles());
    let modjk = Engine::new(ordering_config(scale, 10, seed), ProtocolKind::ModJk)
        .expect("valid config")
        .run(scale.ordering_cycles());
    let mut table = Table::new("fig4b", &["cycle", "sdm_jk", "sdm_modjk"]);
    for (a, b) in jk.cycles.iter().zip(&modjk.cycles) {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm]);
    }
    table
}

/// Fig. 4(c): percentage of unsuccessful swaps for JK and mod-JK under half
/// and full concurrency — concurrency wastes messages, and mod-JK (which
/// concentrates proposals on the most misplaced nodes) wastes more than JK.
///
/// Columns: `cycle, jk_half, jk_full, modjk_half, modjk_full`.
pub fn fig4c(scale: Scale, seed: u64) -> Table {
    let run = |kind: ProtocolKind, conc: Concurrency| {
        let mut cfg = ordering_config(scale, 10, seed);
        cfg.concurrency = conc;
        Engine::new(cfg, kind)
            .expect("valid config")
            .run(scale.ordering_cycles())
    };
    let jk_half = run(ProtocolKind::Jk, Concurrency::Half);
    let jk_full = run(ProtocolKind::Jk, Concurrency::Full);
    let modjk_half = run(ProtocolKind::ModJk, Concurrency::Half);
    let modjk_full = run(ProtocolKind::ModJk, Concurrency::Full);

    let mut table = Table::new(
        "fig4c",
        &["cycle", "jk_half", "jk_full", "modjk_half", "modjk_full"],
    );
    for i in 0..jk_half.cycles.len() {
        table.push(vec![
            jk_half.cycles[i].cycle as f64,
            jk_half.cycles[i].unsuccessful_swap_pct(),
            jk_full.cycles[i].unsuccessful_swap_pct(),
            modjk_half.cycles[i].unsuccessful_swap_pct(),
            modjk_full.cycles[i].unsuccessful_swap_pct(),
        ]);
    }
    table
}

/// Fig. 4(d): mod-JK convergence, no concurrency vs full concurrency — full
/// concurrency slows convergence only slightly.
///
/// Columns: `cycle, sdm_none, sdm_full`.
pub fn fig4d(scale: Scale, seed: u64) -> Table {
    let none = Engine::new(
        ordering_config(scale, scale.many_slices(), seed),
        ProtocolKind::ModJk,
    )
    .expect("valid config")
    .run(scale.ordering_cycles());
    let mut cfg = ordering_config(scale, scale.many_slices(), seed);
    cfg.concurrency = Concurrency::Full;
    let full = Engine::new(cfg, ProtocolKind::ModJk)
        .expect("valid config")
        .run(scale.ordering_cycles());

    let mut table = Table::new("fig4d", &["cycle", "sdm_none", "sdm_full"]);
    for (a, b) in none.cycles.iter().zip(&full.cycles) {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm]);
    }
    table
}

/// Fig. 6(a): ranking vs ordering in the static case — the ordering SDM is
/// lower-bounded by the random-value floor while the ranking SDM keeps
/// decreasing.
///
/// Columns: `cycle, sdm_ranking, sdm_ordering`.
pub fn fig6a(scale: Scale, seed: u64) -> Table {
    let ranking = Engine::new(ranking_config(scale, seed), ProtocolKind::Ranking)
        .expect("valid config")
        .run(scale.ranking_cycles());
    let ordering = Engine::new(ranking_config(scale, seed), ProtocolKind::ModJk)
        .expect("valid config")
        .run(scale.ranking_cycles());
    let mut table = Table::new("fig6a", &["cycle", "sdm_ranking", "sdm_ordering"]);
    for (a, b) in ranking.cycles.iter().zip(&ordering.cycles) {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm]);
    }
    table
}

/// Fig. 6(b): the ranking algorithm on the idealized uniform sampler vs the
/// Cyclon variant — the two SDM curves nearly coincide (deviation within a
/// few percent).
///
/// Columns: `cycle, sdm_uniform, sdm_views, deviation_pct`.
pub fn fig6b(scale: Scale, seed: u64) -> Table {
    let mut uniform_cfg = ranking_config(scale, seed);
    uniform_cfg.sampler = SamplerKind::UniformOracle;
    let uniform = Engine::new(uniform_cfg, ProtocolKind::Ranking)
        .expect("valid config")
        .run(scale.ranking_cycles());
    let views = Engine::new(ranking_config(scale, seed), ProtocolKind::Ranking)
        .expect("valid config")
        .run(scale.ranking_cycles());

    let mut table = Table::new(
        "fig6b",
        &["cycle", "sdm_uniform", "sdm_views", "deviation_pct"],
    );
    for (a, b) in uniform.cycles.iter().zip(&views.cycles) {
        let deviation = if a.sdm > 0.0 {
            100.0 * (b.sdm - a.sdm) / a.sdm
        } else {
            0.0
        };
        table.push(vec![a.cycle as f64, a.sdm, b.sdm, deviation]);
    }
    table
}

/// Fig. 6(c): a churn burst correlated with the attribute (0.1% of the
/// lowest-attribute nodes leave and 0.1% join above the maximum, every cycle
/// for the first 200 cycles) — after the burst stops, the ranking SDM
/// resumes its decrease while the ordering SDM stays stuck.
///
/// Columns: `cycle, sdm_ranking, sdm_jk`.
pub fn fig6c(scale: Scale, seed: u64) -> Table {
    let burst = || {
        let schedule = ChurnSchedule {
            rate: 0.001,
            period: 1,
            stop_after: Some(200.min(scale.ranking_cycles() / 2)),
        };
        Box::new(CorrelatedChurn::new(schedule, 1.0))
    };
    let ranking = Engine::new(ranking_config(scale, seed), ProtocolKind::Ranking)
        .expect("valid config")
        .with_churn(burst())
        .run(scale.ranking_cycles());
    let jk = Engine::new(ranking_config(scale, seed), ProtocolKind::Jk)
        .expect("valid config")
        .with_churn(burst())
        .run(scale.ranking_cycles());

    let mut table = Table::new("fig6c", &["cycle", "sdm_ranking", "sdm_jk"]);
    for (a, b) in ranking.cycles.iter().zip(&jk.cycles) {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm]);
    }
    table
}

/// Fig. 6(d): low, regular, attribute-correlated churn (0.1% every 10
/// cycles, indefinitely) — the ordering SDM inflects upward early, the
/// ranking SDM much later, and the sliding-window ranking suppresses the
/// increase.
///
/// Columns: `cycle, sdm_ordering, sdm_ranking, sdm_sliding`.
pub fn fig6d(scale: Scale, seed: u64) -> Table {
    let regular = || Box::new(CorrelatedChurn::new(ChurnSchedule::regular(), 1.0));
    // The paper does not state the window size used in Fig. 6(d). The
    // operative trade-off is drift tracking: a node absorbs ~12 samples per
    // cycle, so a window of W samples remembers ~W/12 cycles of history and
    // the estimator's churn-induced lag is bounded by (drift rate)·W/24
    // instead of growing with the run length. These windows span roughly a
    // sixth of each run.
    let window = match scale {
        Scale::Paper => 2_000,
        Scale::Small => 1_200,
        Scale::Tiny => 400,
    };
    let ordering = Engine::new(ranking_config(scale, seed), ProtocolKind::ModJk)
        .expect("valid config")
        .with_churn(regular())
        .run(scale.ranking_cycles());
    let ranking = Engine::new(ranking_config(scale, seed), ProtocolKind::Ranking)
        .expect("valid config")
        .with_churn(regular())
        .run(scale.ranking_cycles());
    let sliding = Engine::new(
        ranking_config(scale, seed),
        ProtocolKind::SlidingRanking { window },
    )
    .expect("valid config")
    .with_churn(regular())
    .run(scale.ranking_cycles());

    let mut table = Table::new(
        "fig6d",
        &["cycle", "sdm_ordering", "sdm_ranking", "sdm_sliding"],
    );
    for ((a, b), c) in ordering
        .cycles
        .iter()
        .zip(&ranking.cycles)
        .zip(&sliding.cycles)
    {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm, c.sdm]);
    }
    table
}

/// Lemma 4.1: Monte-Carlo slice populations vs the Chernoff bound. For each
/// `(n, p, β)` the table reports the bound `2·exp(−β²np/3)`, the empirical
/// probability that `|X − np| ≥ βnp`, and whether the lemma's premise
/// `p ≥ 3·ln(2/ε)/(β²n)` holds at ε = 0.05.
///
/// Columns: `n, p, beta, bound, empirical, premise_ok`.
pub fn lemma41(seed: u64) -> Table {
    lemma41_with(seed, 1_000, &[1_000, 10_000])
}

/// [`lemma41`] with explicit Monte-Carlo budget (used by fast tests).
pub fn lemma41_with(seed: u64, trials: usize, ns: &[usize]) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(
        "lemma41",
        &["n", "p", "beta", "bound", "empirical", "premise_ok"],
    );
    for &n in ns {
        for &p in &[0.01f64, 0.05, 0.2] {
            for &beta in &[0.2f64, 0.5, 1.0] {
                let bound = analysis::deviation_probability_bound(beta, n, p);
                let mut hits = 0usize;
                for _ in 0..trials {
                    let x = (0..n).filter(|_| rng.gen::<f64>() < p).count() as f64;
                    if (x - n as f64 * p).abs() >= beta * n as f64 * p {
                        hits += 1;
                    }
                }
                let empirical = hits as f64 / trials as f64;
                let premise = analysis::chernoff::lemma_applies(beta, 0.05, n, p);
                table.push(vec![
                    n as f64,
                    p,
                    beta,
                    bound,
                    empirical,
                    if premise { 1.0 } else { 0.0 },
                ]);
            }
        }
    }
    table
}

/// Theorem 5.1: nodes at decreasing boundary distance `d` sample at the
/// prescribed rate `k = (Z_{α/2}·√(p̂(1−p̂))/d)²` and the table reports the
/// empirical probability of naming the correct slice, which must reach the
/// requested confidence (95%).
///
/// Columns: `d, required_k, empirical_correct, confidence`.
pub fn thm51(seed: u64) -> Table {
    thm51_with(seed, 400, &[0.04, 0.02, 0.01, 0.005])
}

/// [`thm51`] with explicit Monte-Carlo budget (used by fast tests).
pub fn thm51_with(seed: u64, trials: usize, ds: &[f64]) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = 0.05;
    let mut table = Table::new(
        "thm51",
        &["d", "required_k", "empirical_correct", "confidence"],
    );
    // True rank p placed at distance d inside the slice (0.4, 0.5].
    for &d in ds {
        let p = 0.5 - d; // boundary at 0.5 is the closest
        let k = analysis::required_samples(p, d, alpha) as usize;
        let correct = (0..trials)
            .filter(|_| {
                let hits = (0..k).filter(|_| rng.gen::<f64>() < p).count();
                let p_hat = hits as f64 / k as f64;
                0.4 < p_hat && p_hat <= 0.5
            })
            .count();
        table.push(vec![
            d,
            k as f64,
            correct as f64 / trials as f64,
            1.0 - alpha,
        ]);
    }
    table
}

/// Fig. 4(b) with confidence bands: JK vs mod-JK aggregated over several
/// seeds (mean ± std of the SDM per cycle) — the single-trajectory curves
/// of the paper, made statistically honest.
///
/// Columns: `cycle, jk_mean, jk_std, modjk_mean, modjk_std`.
pub fn fig4b_banded(scale: Scale, seeds: &[u64]) -> Table {
    use dslice_sim::run_seeds;
    let cfg = ordering_config(scale, 10, 0);
    let jk = run_seeds(
        &cfg,
        ProtocolKind::Jk,
        scale.ordering_cycles(),
        seeds,
        || None,
    )
    .expect("valid config");
    let modjk = run_seeds(
        &cfg,
        ProtocolKind::ModJk,
        scale.ordering_cycles(),
        seeds,
        || None,
    )
    .expect("valid config");
    let mut table = Table::new(
        "fig4b_banded",
        &["cycle", "jk_mean", "jk_std", "modjk_mean", "modjk_std"],
    );
    for (a, b) in jk.cycles.iter().zip(&modjk.cycles) {
        table.push(vec![
            a.cycle as f64,
            a.sdm_mean,
            a.sdm_std,
            b.sdm_mean,
            b.sdm_std,
        ]);
    }
    table
}

/// Ablation: mod-JK running on the Cyclon variant vs Newscast — the §6.2
/// "perspective" question of how the peer-sampling substrate parameterizes
/// convergence.
///
/// Columns: `cycle, sdm_cyclon, sdm_newscast`.
pub fn ablation_sampler(scale: Scale, seed: u64) -> Table {
    let cyclon = Engine::new(ordering_config(scale, 10, seed), ProtocolKind::ModJk)
        .expect("valid config")
        .run(scale.ordering_cycles());
    let mut cfg = ordering_config(scale, 10, seed);
    cfg.sampler = SamplerKind::Newscast;
    let newscast = Engine::new(cfg, ProtocolKind::ModJk)
        .expect("valid config")
        .run(scale.ordering_cycles());
    let mut table = Table::new("ablation_sampler", &["cycle", "sdm_cyclon", "sdm_newscast"]);
    for (a, b) in cyclon.cycles.iter().zip(&newscast.cycles) {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm]);
    }
    table
}

/// Ablation: ranking convergence under heavy-tailed (Pareto) vs uniform
/// attribute distributions — slicing is rank-based, so the attribute shape
/// must not matter (§3.2's argument for slices over absolute thresholds).
///
/// Columns: `cycle, sdm_uniform, sdm_pareto`.
pub fn ablation_distribution(scale: Scale, seed: u64) -> Table {
    let uniform = Engine::new(ranking_config(scale, seed), ProtocolKind::Ranking)
        .expect("valid config")
        .run(scale.ranking_cycles());
    let mut cfg = ranking_config(scale, seed);
    cfg.distribution = AttributeDistribution::Pareto {
        scale: 1.0,
        shape: 1.5,
    };
    let pareto = Engine::new(cfg, ProtocolKind::Ranking)
        .expect("valid config")
        .run(scale.ranking_cycles());
    let mut table = Table::new(
        "ablation_distribution",
        &["cycle", "sdm_uniform", "sdm_pareto"],
    );
    for (a, b) in uniform.cycles.iter().zip(&pareto.cycles) {
        table.push(vec![a.cycle as f64, a.sdm, b.sdm]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scale_parameters_are_sane() {
        for s in [Scale::Paper, Scale::Small, Scale::Tiny] {
            assert!(s.n() >= 100);
            assert!(s.ordering_cycles() >= 10);
            assert!(s.ranking_cycles() >= s.ordering_cycles());
            assert!(s.n() / s.many_slices() >= 10, "≥10 nodes per slice");
        }
    }

    #[test]
    fn lemma41_table_bound_holds() {
        let t = lemma41_with(7, 300, &[1_000]);
        let bounds = t.column("bound").unwrap();
        let empirical = t.column("empirical").unwrap();
        for (b, e) in bounds.iter().zip(&empirical) {
            assert!(
                e <= &(b + 0.05),
                "empirical {e} above Chernoff bound {b} (+ MC slack)"
            );
        }
    }

    #[test]
    fn thm51_table_reaches_confidence() {
        let t = thm51_with(11, 150, &[0.04, 0.02]);
        let correct = t.column("empirical_correct").unwrap();
        for c in correct {
            assert!(c >= 0.90, "correct-slice rate {c} below requested band");
        }
    }
}
