//! Per-cycle cost of the full engine for each protocol.
//!
//! This is the throughput number that decides how long a `Paper`-scale
//! figure run takes; the ordering algorithms pay for the local-rank gain
//! computation, the ranking algorithms for the per-neighbor sample folding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslice_core::Partition;
use dslice_sim::{Engine, ProtocolKind, SimConfig};

fn engine(kind: ProtocolKind, n: usize) -> Engine {
    let cfg = SimConfig {
        n,
        view_size: 20,
        partition: Partition::equal(10).unwrap(),
        seed: 42,
        ..SimConfig::default()
    };
    let mut e = Engine::new(cfg, kind).unwrap();
    // Warm the overlay so the measured cycles are steady-state.
    for _ in 0..5 {
        e.step();
    }
    e
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cycle");
    group.sample_size(10);
    for kind in [
        ProtocolKind::Jk,
        ProtocolKind::ModJk,
        ProtocolKind::Ranking,
        ProtocolKind::RankingUniform,
        ProtocolKind::SlidingRanking { window: 1000 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("n1000", kind.label()),
            &kind,
            |b, &kind| {
                let mut e = engine(kind, 1000);
                b.iter(|| e.step());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
