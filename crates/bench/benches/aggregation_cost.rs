//! Microbenchmarks for the aggregation substrate (refs [12]/[13]): cost of
//! one push–pull averaging round at several population sizes, and one full
//! φ-quantile probe epoch. Establishes the per-round budget behind the
//! `baseline_quantile` cost table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslice_aggregation::{AggregateKind, QuantileSearch, Swarm};
use std::hint::black_box;

fn ramp(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

fn bench_swarm_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_round");
    for &n in &[100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("average", n), &n, |b, &n| {
            let values = ramp(n);
            b.iter_batched(
                || Swarm::new(AggregateKind::Average, &values, 1),
                |mut swarm| {
                    swarm.round();
                    black_box(swarm.variance())
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("max", n), &n, |b, &n| {
            let values = ramp(n);
            b.iter_batched(
                || Swarm::new(AggregateKind::Max, &values, 2),
                |mut swarm| {
                    swarm.round();
                    black_box(swarm.mean())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_quantile_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile_search");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::new("median", n), &n, |b, &n| {
            let values = ramp(n);
            let search = QuantileSearch {
                phi: 0.5,
                tolerance: 0.01,
                rounds_per_probe: 20,
                max_probes: 20,
            };
            b.iter(|| black_box(search.run(&values, 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_swarm_round, bench_quantile_search);
criterion_main!(benches);
