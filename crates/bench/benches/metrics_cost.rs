//! Cost of the evaluation oracles (GDM, SDM) and the node-local gain
//! machinery (LDM, local ranks) that mod-JK runs every cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslice_core::{metrics, Attribute, NodeId, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn population(n: usize, seed: u64) -> Vec<(NodeId, Attribute, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                NodeId::new(i as u64),
                Attribute::new(rng.gen_range(0.0..1e6)).unwrap(),
                rng.gen_range(0.0001..1.0),
            )
        })
        .collect()
}

fn bench_global_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_metrics");
    for &n in &[1_000usize, 10_000] {
        let pop = population(n, 7);
        let part = Partition::equal(100).unwrap();
        group.bench_with_input(BenchmarkId::new("gdm", n), &pop, |b, pop| {
            b.iter(|| metrics::gdm(pop));
        });
        group.bench_with_input(BenchmarkId::new("sdm", n), &pop, |b, pop| {
            b.iter(|| metrics::sdm(&part, pop));
        });
    }
    group.finish();
}

fn bench_local_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_metrics");
    for &c_size in &[10usize, 20, 40] {
        let members = population(c_size + 1, 9);
        group.bench_with_input(BenchmarkId::new("ldm", c_size), &members, |b, m| {
            b.iter(|| metrics::ldm(m));
        });
        group.bench_with_input(BenchmarkId::new("local_ranks", c_size), &members, |b, m| {
            b.iter(|| metrics::local_ranks(m));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_global_metrics, bench_local_metrics);
criterion_main!(benches);
