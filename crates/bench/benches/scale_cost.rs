//! Per-cycle cost of the engine at population scale.
//!
//! Complements `cycle_cost` (protocol comparison at n = 1000) with the
//! scale dimensions the slab/stream/shard architecture targets: larger
//! populations, shard counts, and the metrics cadence. The paper's figures
//! run at 10⁴ nodes; the scale roadmap targets 10⁵+, where cycle cost is
//! dominated by the membership phase and — without a cadence — the
//! O(n log n) evaluation oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslice_core::Partition;
use dslice_sim::{Engine, ProtocolKind, SimConfig};

fn engine(n: usize, shards: usize, metrics_every: usize) -> Engine {
    let cfg = SimConfig {
        n,
        view_size: 10,
        partition: Partition::equal(100).unwrap(),
        seed: 42,
        shards,
        metrics_every,
        ..SimConfig::default()
    };
    let mut e = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
    // Warm the overlay so the measured cycles are steady-state.
    for _ in 0..3 {
        e.step();
    }
    e
}

fn bench_population_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_cycle");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("population", n), &n, |b, &n| {
            let mut e = engine(n, 1, 1);
            b.iter(|| e.step());
        });
    }
    group.finish();
}

fn bench_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("n10k", shards), &shards, |b, &shards| {
            let mut e = engine(10_000, shards, 1);
            b.iter(|| e.step());
        });
    }
    group.finish();
}

fn bench_metrics_cadence(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_metrics_cadence");
    group.sample_size(10);
    for every in [1usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("n10k_every", every),
            &every,
            |b, &every| {
                let mut e = engine(10_000, 1, every);
                b.iter(|| e.step());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_population_scale,
    bench_shards,
    bench_metrics_cadence
);
criterion_main!(benches);
