//! Cost of one peer-sampling exchange (Cyclon variant vs Newscast vs
//! Lpbcast) — the membership traffic every protocol pays each cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslice_core::{Attribute, NodeId, ViewEntry};
use dslice_gossip::{CyclonSampler, LpbcastSampler, NewscastSampler, PeerSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded<S: PeerSampler>(mut sampler: S, c: usize, rng: &mut StdRng) -> S {
    for _ in 0..c {
        let id = rng.gen_range(1..10_000u64);
        sampler.view_mut().insert(ViewEntry::with_age(
            NodeId::new(id),
            rng.gen_range(0..5),
            Attribute::new(id as f64).unwrap(),
            rng.gen_range(0.0001..1.0),
        ));
    }
    sampler
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_exchange");
    for &view_size in &[10usize, 20, 40] {
        group.bench_with_input(
            BenchmarkId::new("cyclon", view_size),
            &view_size,
            |b, &vs| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut a = seeded(
                    CyclonSampler::new(NodeId::new(0), vs).unwrap(),
                    vs,
                    &mut rng,
                );
                let mut p = seeded(
                    CyclonSampler::new(NodeId::new(1), vs).unwrap(),
                    vs,
                    &mut rng,
                );
                let desc_a = ViewEntry::new(NodeId::new(0), Attribute::new(0.0).unwrap(), 0.5);
                let desc_p = ViewEntry::new(NodeId::new(1), Attribute::new(1.0).unwrap(), 0.5);
                b.iter(|| {
                    if let Some(req) = a.initiate(desc_a, &mut rng) {
                        let reply = p.handle_request(desc_p, NodeId::new(0), &req.entries);
                        a.handle_reply(req.partner, &reply);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("newscast", view_size),
            &view_size,
            |b, &vs| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut a = seeded(
                    NewscastSampler::new(NodeId::new(0), vs).unwrap(),
                    vs,
                    &mut rng,
                );
                let mut p = seeded(
                    NewscastSampler::new(NodeId::new(1), vs).unwrap(),
                    vs,
                    &mut rng,
                );
                let desc_a = ViewEntry::new(NodeId::new(0), Attribute::new(0.0).unwrap(), 0.5);
                let desc_p = ViewEntry::new(NodeId::new(1), Attribute::new(1.0).unwrap(), 0.5);
                b.iter(|| {
                    if let Some(req) = a.initiate(desc_a, &mut rng) {
                        let reply = p.handle_request(desc_p, NodeId::new(0), &req.entries);
                        a.handle_reply(req.partner, &reply);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lpbcast", view_size),
            &view_size,
            |b, &vs| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut a = seeded(
                    LpbcastSampler::new(NodeId::new(0), vs).unwrap(),
                    vs,
                    &mut rng,
                );
                let mut p = seeded(
                    LpbcastSampler::new(NodeId::new(1), vs).unwrap(),
                    vs,
                    &mut rng,
                );
                let desc_a = ViewEntry::new(NodeId::new(0), Attribute::new(0.0).unwrap(), 0.5);
                let desc_p = ViewEntry::new(NodeId::new(1), Attribute::new(1.0).unwrap(), 0.5);
                b.iter(|| {
                    if let Some(req) = a.initiate(desc_a, &mut rng) {
                        let reply = p.handle_request(desc_p, NodeId::new(0), &req.entries);
                        a.handle_reply(req.partner, &reply);
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
