//! Cost of a single protocol active step in isolation (no engine, no
//! membership): the marginal CPU a node spends per period.
//!
//! This isolates the algorithmic difference the paper discusses: mod-JK's
//! gain maximization is O(c log c) against JK's O(c) scan, and the ranking
//! algorithm's per-neighbor sample folding plus boundary search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslice_algorithms::{Ordering, Ranking};
use dslice_core::protocol::{MockContext, SliceProtocol};
use dslice_core::{Attribute, NodeId, Partition, View, ViewEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn view(c: usize, seed: u64) -> View {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = View::new(c).unwrap();
    for i in 0..c {
        v.insert(ViewEntry::new(
            NodeId::new(i as u64 + 10),
            Attribute::new(rng.gen_range(0.0..1e6)).unwrap(),
            rng.gen_range(0.0001..1.0),
        ));
    }
    v
}

fn bench_active_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_active_step");
    let part = Partition::equal(100).unwrap();
    for &vs in &[10usize, 20, 40] {
        let v = view(vs, 3);
        group.bench_with_input(BenchmarkId::new("jk", vs), &v, |b, v| {
            let mut node = Ordering::jk(NodeId::new(1), Attribute::new(5e5).unwrap(), 0.5);
            let mut ctx = MockContext::new(StdRng::seed_from_u64(4));
            b.iter(|| {
                node.on_active(v, &mut ctx);
                ctx.sent.clear();
            });
        });
        group.bench_with_input(BenchmarkId::new("mod-jk", vs), &v, |b, v| {
            let mut node = Ordering::mod_jk(NodeId::new(1), Attribute::new(5e5).unwrap(), 0.5);
            let mut ctx = MockContext::new(StdRng::seed_from_u64(5));
            b.iter(|| {
                node.on_active(v, &mut ctx);
                ctx.sent.clear();
            });
        });
        group.bench_with_input(BenchmarkId::new("ranking", vs), &v, |b, v| {
            let mut node = Ranking::new(
                NodeId::new(1),
                Attribute::new(5e5).unwrap(),
                0.5,
                part.clone(),
            );
            let mut ctx = MockContext::new(StdRng::seed_from_u64(6));
            b.iter(|| {
                node.on_active(v, &mut ctx);
                ctx.sent.clear();
                ctx.events.clear();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_active_step);
criterion_main!(benches);
