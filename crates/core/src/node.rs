//! Node identities.
//!
//! The paper's system model (§3.1) considers "a set of `n` uniquely
//! identified nodes"; the identifier doubles as the tie-breaker of the total
//! order over attribute values: node `i` precedes node `j` iff
//! `a_i < a_j`, or `a_i == a_j` and `i < j`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique node identifier.
///
/// Identifiers are plain `u64`s. The simulator allocates them monotonically
/// so that nodes joining under churn never reuse an identifier; the network
/// runtime derives them from the listen address. Ordering on `NodeId` is the
/// tie-breaking order of the paper's `A.sequence`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw integer value of this identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// A monotonically increasing allocator of [`NodeId`]s.
///
/// Churn models use this to hand out fresh identities to joining nodes;
/// identifiers are never reused within one run, matching the paper's
/// assumption that departing and arriving nodes are distinct entities.
#[derive(Debug, Clone)]
pub struct NodeIdAllocator {
    next: u64,
}

impl NodeIdAllocator {
    /// Creates an allocator whose first issued id is `first`.
    pub const fn starting_at(first: u64) -> Self {
        NodeIdAllocator { next: first }
    }

    /// Issues the next fresh identifier.
    pub fn allocate(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// Issues `count` fresh identifiers.
    pub fn allocate_many(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.allocate()).collect()
    }

    /// The id that the next call to [`allocate`](Self::allocate) will return.
    pub const fn peek(&self) -> NodeId {
        NodeId(self.next)
    }
}

impl Default for NodeIdAllocator {
    fn default() -> Self {
        NodeIdAllocator::starting_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_u64() {
        let id = NodeId::new(42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(NodeId::from(42u64), id);
        assert_eq!(id.as_u64(), 42);
    }

    #[test]
    fn node_id_ordering_is_numeric() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(100) > NodeId::new(99));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn allocator_is_monotonic_and_never_reuses() {
        let mut alloc = NodeIdAllocator::default();
        let a = alloc.allocate();
        let b = alloc.allocate();
        let batch = alloc.allocate_many(3);
        assert_eq!(a, NodeId::new(0));
        assert_eq!(b, NodeId::new(1));
        assert_eq!(batch, vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)]);
        assert_eq!(alloc.peek(), NodeId::new(5));
    }

    #[test]
    fn allocator_can_start_anywhere() {
        let mut alloc = NodeIdAllocator::starting_at(1000);
        assert_eq!(alloc.allocate(), NodeId::new(1000));
    }

    #[test]
    fn debug_and_display_formats() {
        let id = NodeId::new(9);
        assert_eq!(format!("{id:?}"), "n9");
        assert_eq!(format!("{id}"), "9");
    }
}
