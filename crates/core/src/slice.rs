//! Slices and partitions of the normalized rank space `(0, 1]`.
//!
//! The paper (§3.2) defines the slice `S_{l,u}` as the set of nodes whose
//! normalized rank `α_i / n` satisfies `l < α_i/n ≤ u`, with slices forming
//! adjacent intervals `(l_1, u_1], (l_2, u_2], …` partitioning `(0, 1]`. The
//! partitioning is global knowledge shared by all nodes.
//!
//! [`Partition`] owns the ordered interior boundaries and answers the two
//! queries every protocol needs:
//!
//! * [`Partition::slice_of`] — which slice does a normalized rank / random
//!   value fall into (lines 14, 19 of Fig. 2 and 16, 21 of Fig. 5)?
//! * [`Partition::boundary_distance`] — how far is an estimate from the
//!   closest slice boundary (`dist(·, b)` of Fig. 5, and the `d` of
//!   Theorem 5.1)?

use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tolerance used when validating that slice fractions sum to one.
const FRACTION_SUM_TOLERANCE: f64 = 1e-9;

/// Index of a slice within a [`Partition`] (0-based, ordered by rank).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SliceIndex(usize);

impl SliceIndex {
    /// Creates a slice index.
    pub const fn new(idx: usize) -> Self {
        SliceIndex(idx)
    }

    /// Returns the index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0
    }

    /// Absolute distance in slice units — the per-node term of the slice
    /// disorder measure for equal-size slices.
    pub fn distance(self, other: SliceIndex) -> usize {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for SliceIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A half-open rank interval `(lower, upper]`.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Slice {
    /// Lower boundary `l ∈ [0, 1)`, excluded.
    pub lower: f64,
    /// Upper boundary `u ∈ (0, 1]`, included.
    pub upper: f64,
}

impl Slice {
    /// Creates the slice `(lower, upper]`, validating `0 ≤ lower < upper ≤ 1`.
    pub fn new(lower: f64, upper: f64) -> Result<Self> {
        if !lower.is_finite() || !upper.is_finite() || !(0.0..1.0).contains(&lower) {
            return Err(Error::InvalidBoundaries(format!(
                "lower boundary {lower} must lie in [0, 1)"
            )));
        }
        if lower >= upper || upper > 1.0 {
            return Err(Error::InvalidBoundaries(format!(
                "upper boundary {upper} must lie in ({lower}, 1]"
            )));
        }
        Ok(Slice { lower, upper })
    }

    /// Tests membership: `lower < r ≤ upper`.
    pub fn contains(&self, r: f64) -> bool {
        self.lower < r && r <= self.upper
    }

    /// The length `u − l` of the interval — the fraction of the network the
    /// slice represents.
    pub fn length(&self) -> f64 {
        self.upper - self.lower
    }

    /// The midpoint `(l + u) / 2`, used by the slice disorder measure.
    pub fn midpoint(&self) -> f64 {
        (self.lower + self.upper) / 2.0
    }
}

impl fmt::Display for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.lower, self.upper)
    }
}

/// An ordered partitioning of `(0, 1]` into adjacent slices.
///
/// Internally stored as the strictly increasing *interior* boundaries
/// `b_1 < b_2 < … < b_{k−1}` in `(0, 1)`; slice `j` is
/// `(b_j, b_{j+1}]` with `b_0 = 0` and `b_k = 1`.
///
/// ```
/// use dslice_core::Partition;
///
/// // 100 equal slices, as in the paper's main experiments.
/// let part = Partition::equal(100).unwrap();
/// assert_eq!(part.len(), 100);
/// assert_eq!(part.slice_of(0.801).as_usize(), 80);
///
/// // "20% best nodes": boundaries at 0.8 (paper §1.2).
/// let part = Partition::from_boundaries(&[0.8]).unwrap();
/// assert_eq!(part.slice_of(0.85).as_usize(), 1);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Partition {
    /// Strictly increasing interior boundaries, all in `(0, 1)`.
    boundaries: Vec<f64>,
}

impl Partition {
    /// Creates `k` slices of equal length `1/k`.
    pub fn equal(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::EmptyPartition);
        }
        let boundaries = (1..k).map(|j| j as f64 / k as f64).collect();
        Ok(Partition { boundaries })
    }

    /// Creates a partition from explicit interior boundaries.
    ///
    /// Boundaries must be strictly increasing and lie strictly inside
    /// `(0, 1)`. An empty list yields the single slice `(0, 1]`.
    pub fn from_boundaries(boundaries: &[f64]) -> Result<Self> {
        for w in boundaries.windows(2) {
            if w[0] >= w[1] || w[0].is_nan() || w[1].is_nan() {
                return Err(Error::InvalidBoundaries(format!(
                    "boundaries must be strictly increasing, got {} then {}",
                    w[0], w[1]
                )));
            }
        }
        for &b in boundaries {
            if !(b.is_finite() && 0.0 < b && b < 1.0) {
                return Err(Error::InvalidBoundaries(format!(
                    "boundary {b} must lie strictly inside (0, 1)"
                )));
            }
        }
        Ok(Partition {
            boundaries: boundaries.to_vec(),
        })
    }

    /// Creates a partition from slice fractions, e.g. `[0.1, 0.4, 0.5]` for a
    /// 10% / 40% / 50% split. Fractions must be positive and sum to 1.
    pub fn from_fractions(fractions: &[f64]) -> Result<Self> {
        if fractions.is_empty() {
            return Err(Error::EmptyPartition);
        }
        let sum: f64 = fractions.iter().sum();
        if (sum - 1.0).abs() > FRACTION_SUM_TOLERANCE {
            return Err(Error::InvalidFractions(format!(
                "fractions must sum to 1, got {sum}"
            )));
        }
        let mut boundaries = Vec::with_capacity(fractions.len() - 1);
        let mut acc = 0.0;
        for (idx, &frac) in fractions[..fractions.len() - 1].iter().enumerate() {
            if frac <= 0.0 || !frac.is_finite() {
                return Err(Error::InvalidFractions(format!(
                    "fraction #{idx} is {frac}, must be positive"
                )));
            }
            acc += frac;
            boundaries.push(acc);
        }
        let last = *fractions.last().expect("non-empty");
        if last <= 0.0 || !last.is_finite() {
            return Err(Error::InvalidFractions(format!(
                "last fraction is {last}, must be positive"
            )));
        }
        Ok(Partition { boundaries })
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// A partition always has at least one slice.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the slice interval at `idx`, or `None` if out of range.
    pub fn slice(&self, idx: SliceIndex) -> Option<Slice> {
        let j = idx.as_usize();
        if j >= self.len() {
            return None;
        }
        let lower = if j == 0 { 0.0 } else { self.boundaries[j - 1] };
        let upper = if j == self.len() - 1 {
            1.0
        } else {
            self.boundaries[j]
        };
        Some(Slice { lower, upper })
    }

    /// Iterates over all slice intervals in rank order.
    pub fn slices(&self) -> impl Iterator<Item = Slice> + '_ {
        (0..self.len()).map(|j| self.slice(SliceIndex::new(j)).expect("in range"))
    }

    /// Maps a normalized rank (or random value) `r ∈ (0, 1]` to its slice:
    /// the unique `S_{l,u}` with `l < r ≤ u`.
    ///
    /// Values are clamped into `(0, 1]` (an `r` of exactly `0.0` — possible
    /// only for a degenerate estimate — maps to the first slice; values above
    /// 1 map to the last). This keeps protocol code total.
    pub fn slice_of(&self, r: f64) -> SliceIndex {
        // partition_point returns the count of boundaries b with b < r;
        // membership is l < r ≤ u, so a value equal to a boundary belongs to
        // the slice *below* it.
        let idx = self.boundaries.partition_point(|&b| b < r);
        SliceIndex::new(idx.min(self.len() - 1))
    }

    /// Distance from `r` to the closest *interior* slice boundary — the `d`
    /// of Theorem 5.1 and the `dist(·, b)` used to select `j1` in Fig. 5.
    ///
    /// For a single-slice partition there is no interior boundary and the
    /// distance is `+∞` (every node is trivially far from any boundary).
    pub fn boundary_distance(&self, r: f64) -> f64 {
        self.boundaries
            .iter()
            .map(|&b| (r - b).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// The closest interior boundary to `r`, if any.
    pub fn closest_boundary(&self, r: f64) -> Option<f64> {
        self.boundaries.iter().copied().min_by(|x, y| {
            (r - x)
                .abs()
                .partial_cmp(&(r - y).abs())
                .expect("boundaries are finite")
        })
    }

    /// The interior boundaries (strictly increasing, inside `(0,1)`).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Per-node term of the *slice disorder measure* (§4.4):
    /// `1/(u−l) · |(u+l)/2 − (û+l̂)/2|` where `(l,u]` is the node's correct
    /// slice and `(l̂,û]` its estimated slice.
    ///
    /// For equal-size slices this equals the absolute difference of slice
    /// indices, matching the paper's example (`|1 − 3| = 2`).
    pub fn sdm_term(&self, actual: SliceIndex, estimated: SliceIndex) -> f64 {
        let s = self.slice(actual).expect("actual slice in range");
        let e = self.slice(estimated).expect("estimated slice in range");
        (s.midpoint() - e.midpoint()).abs() / s.length()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partition[{} slices]", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_partition_has_uniform_lengths() {
        let part = Partition::equal(4).unwrap();
        assert_eq!(part.len(), 4);
        for s in part.slices() {
            assert!((s.length() - 0.25).abs() < 1e-12);
        }
        assert_eq!(part.slice(SliceIndex::new(0)).unwrap().lower, 0.0);
        assert_eq!(part.slice(SliceIndex::new(3)).unwrap().upper, 1.0);
    }

    #[test]
    fn zero_slices_rejected() {
        assert!(matches!(Partition::equal(0), Err(Error::EmptyPartition)));
    }

    #[test]
    fn single_slice_partition() {
        let part = Partition::equal(1).unwrap();
        assert_eq!(part.len(), 1);
        assert_eq!(part.slice_of(0.0001).as_usize(), 0);
        assert_eq!(part.slice_of(1.0).as_usize(), 0);
        assert_eq!(part.boundary_distance(0.5), f64::INFINITY);
        assert_eq!(part.closest_boundary(0.5), None);
    }

    #[test]
    fn slice_of_respects_half_open_intervals() {
        let part = Partition::equal(2).unwrap();
        // membership is l < r <= u: exactly 0.5 belongs to the first slice.
        assert_eq!(part.slice_of(0.5).as_usize(), 0);
        assert_eq!(part.slice_of(0.5 + 1e-12).as_usize(), 1);
        assert_eq!(part.slice_of(1.0).as_usize(), 1);
    }

    #[test]
    fn slice_of_clamps_out_of_range_estimates() {
        let part = Partition::equal(3).unwrap();
        assert_eq!(part.slice_of(0.0).as_usize(), 0);
        assert_eq!(part.slice_of(-0.5).as_usize(), 0);
        assert_eq!(part.slice_of(1.5).as_usize(), 2);
    }

    #[test]
    fn paper_top_20_percent_slice() {
        // §1.2: "a slice containing 20% of the best nodes … random values
        // greater than 0.8".
        let part = Partition::from_boundaries(&[0.8]).unwrap();
        assert_eq!(part.len(), 2);
        assert_eq!(part.slice_of(0.80).as_usize(), 0);
        assert_eq!(part.slice_of(0.81).as_usize(), 1);
    }

    #[test]
    fn from_fractions_builds_cumulative_boundaries() {
        let part = Partition::from_fractions(&[0.1, 0.4, 0.5]).unwrap();
        assert_eq!(part.len(), 3);
        let b = part.boundaries();
        assert!((b[0] - 0.1).abs() < 1e-12);
        assert!((b[1] - 0.5).abs() < 1e-12);
        assert_eq!(part.slice_of(0.05).as_usize(), 0);
        assert_eq!(part.slice_of(0.3).as_usize(), 1);
        assert_eq!(part.slice_of(0.99).as_usize(), 2);
    }

    #[test]
    fn from_fractions_rejects_bad_input() {
        assert!(Partition::from_fractions(&[]).is_err());
        assert!(Partition::from_fractions(&[0.5, 0.4]).is_err()); // sums to 0.9
        assert!(Partition::from_fractions(&[1.2, -0.2]).is_err());
        assert!(Partition::from_fractions(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn from_boundaries_rejects_bad_input() {
        assert!(Partition::from_boundaries(&[0.5, 0.5]).is_err());
        assert!(Partition::from_boundaries(&[0.7, 0.3]).is_err());
        assert!(Partition::from_boundaries(&[0.0]).is_err());
        assert!(Partition::from_boundaries(&[1.0]).is_err());
        assert!(Partition::from_boundaries(&[f64::NAN]).is_err());
        assert!(Partition::from_boundaries(&[]).is_ok());
    }

    #[test]
    fn slice_validation() {
        assert!(Slice::new(0.0, 1.0).is_ok());
        assert!(Slice::new(0.5, 0.5).is_err());
        assert!(Slice::new(-0.1, 0.5).is_err());
        assert!(Slice::new(0.2, 1.1).is_err());
        let s = Slice::new(0.25, 0.75).unwrap();
        assert!(s.contains(0.5));
        assert!(!s.contains(0.25)); // lower excluded
        assert!(s.contains(0.75)); // upper included
        assert!((s.midpoint() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_distance_matches_manual() {
        let part = Partition::equal(4).unwrap(); // boundaries 0.25, 0.5, 0.75
        assert!((part.boundary_distance(0.3) - 0.05).abs() < 1e-12);
        assert!((part.boundary_distance(0.5) - 0.0).abs() < 1e-12);
        assert!((part.boundary_distance(0.95) - 0.2).abs() < 1e-12);
        assert_eq!(part.closest_boundary(0.3), Some(0.25));
    }

    #[test]
    fn sdm_term_equals_index_distance_for_equal_slices() {
        // Paper §4.4 example: believed slice 3, actual slice 1 → distance 2.
        let part = Partition::equal(10).unwrap();
        let d = part.sdm_term(SliceIndex::new(0), SliceIndex::new(2));
        assert!((d - 2.0).abs() < 1e-9);
        let zero = part.sdm_term(SliceIndex::new(4), SliceIndex::new(4));
        assert!(zero.abs() < 1e-12);
    }

    #[test]
    fn slice_index_distance() {
        assert_eq!(SliceIndex::new(1).distance(SliceIndex::new(3)), 2);
        assert_eq!(SliceIndex::new(3).distance(SliceIndex::new(1)), 2);
        assert_eq!(SliceIndex::new(5).distance(SliceIndex::new(5)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SliceIndex::new(2).to_string(), "S2");
        assert_eq!(Slice::new(0.0, 0.5).unwrap().to_string(), "(0, 0.5]");
        assert_eq!(
            Partition::equal(3).unwrap().to_string(),
            "Partition[3 slices]"
        );
    }

    proptest! {
        #[test]
        fn slice_of_is_consistent_with_contains(
            k in 1usize..50,
            r in 0.0001f64..=1.0,
        ) {
            let part = Partition::equal(k).unwrap();
            let idx = part.slice_of(r);
            let slice = part.slice(idx).unwrap();
            prop_assert!(slice.contains(r), "r={r} not in {slice} (idx {idx:?})");
        }

        #[test]
        fn slices_tile_the_unit_interval(k in 1usize..40) {
            let part = Partition::equal(k).unwrap();
            let slices: Vec<_> = part.slices().collect();
            prop_assert_eq!(slices[0].lower, 0.0);
            prop_assert_eq!(slices[k - 1].upper, 1.0);
            for w in slices.windows(2) {
                prop_assert!((w[0].upper - w[1].lower).abs() < 1e-12);
            }
            let total: f64 = slices.iter().map(Slice::length).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn every_rank_maps_to_exactly_one_slice(
            k in 2usize..30,
            r in 0.0001f64..=1.0,
        ) {
            let part = Partition::equal(k).unwrap();
            let holders: Vec<_> = part
                .slices()
                .enumerate()
                .filter(|(_, s)| s.contains(r))
                .collect();
            prop_assert_eq!(holders.len(), 1);
            prop_assert_eq!(holders[0].0, part.slice_of(r).as_usize());
        }

        #[test]
        fn boundary_distance_is_nonnegative_and_tight(
            k in 2usize..30,
            r in 0.0f64..=1.0,
        ) {
            let part = Partition::equal(k).unwrap();
            let d = part.boundary_distance(r);
            prop_assert!(d >= 0.0);
            let b = part.closest_boundary(r).unwrap();
            prop_assert!(((r - b).abs() - d).abs() < 1e-12);
        }

        #[test]
        fn fractions_roundtrip(k in 1usize..20) {
            let fracs = vec![1.0 / k as f64; k];
            let from_frac = Partition::from_fractions(&fracs).unwrap();
            let equal = Partition::equal(k).unwrap();
            prop_assert_eq!(from_frac.len(), equal.len());
            for (a, b) in from_frac.boundaries().iter().zip(equal.boundaries()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
