//! The bounded neighbor table (*view*) of §4.2.
//!
//! > Every node `i` keeps track of some neighbors and their age. […] node `i`
//! > maintains an array containing the id, the age, the attribute value, and
//! > the random value of its neighbors. This array, denoted `N_i`, is called
//! > the view of node `i`. The views of all nodes have the same size, denoted
//! > by `c`.
//!
//! [`ViewEntry`] is the row of Table 1. The `value` field carries the random
//! value `r_j` for the ordering algorithms (§4) and the *rank estimate* for
//! the ranking algorithm (§5) — both live in `(0, 1]` and both are gossiped
//! the same way, so they share a field.
//!
//! Entries are **snapshots**: the attribute never changes (paper assumption),
//! but the value may go stale between gossip exchanges. The simulator decides
//! when snapshots are refreshed, which is exactly the staleness knob behind
//! the paper's concurrency study (§4.5.2).

use crate::{Attribute, Error, NodeId, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One row of a node's view: Table 1 of the paper.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ViewEntry {
    /// The identifier of the neighbor (`j`).
    pub id: NodeId,
    /// The age of the entry (`t_j`): 0 when the neighbor was (re-)inserted,
    /// incremented once per gossip cycle.
    pub age: u32,
    /// The attribute value of the neighbor (`a_j`) — immutable per the model.
    pub attribute: Attribute,
    /// The random value (`r_j`, ordering algorithms) or rank estimate
    /// (ranking algorithm) of the neighbor as of the snapshot.
    pub value: f64,
}

impl ViewEntry {
    /// Creates a fresh entry (age 0).
    pub fn new(id: NodeId, attribute: Attribute, value: f64) -> Self {
        ViewEntry {
            id,
            age: 0,
            attribute,
            value,
        }
    }

    /// Creates an entry with an explicit age (used when forwarding views).
    pub fn with_age(id: NodeId, age: u32, attribute: Attribute, value: f64) -> Self {
        ViewEntry {
            id,
            age,
            attribute,
            value,
        }
    }
}

/// A bounded set of [`ViewEntry`]s with at most one entry per neighbor.
///
/// Invariants (checked in debug builds and by property tests):
/// * at most `capacity` entries;
/// * entry ids are unique;
/// * a view owned by node `i` never contains an entry for `i` itself
///   (enforced by [`merge`](View::merge), which takes the owner's id).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct View {
    capacity: usize,
    entries: Vec<ViewEntry>,
}

impl View {
    /// Creates an empty view with the given capacity `c ≥ 1`.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(Error::ZeroViewCapacity);
        }
        Ok(View {
            capacity,
            entries: Vec::with_capacity(capacity),
        })
    }

    /// The view size bound `c`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the view is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &ViewEntry> {
        self.entries.iter()
    }

    /// Looks up the entry for `id`.
    pub fn get(&self, id: NodeId) -> Option<&ViewEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Whether the view contains an entry for `id`.
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// The neighbor ids currently in the view.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Increments every entry's age by one (line 1 of Fig. 3).
    pub fn increment_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The entry with the maximal age (line 2 of Fig. 3); ties broken by id
    /// for determinism. `None` on an empty view.
    pub fn oldest(&self) -> Option<&ViewEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.age.cmp(&b.age).then_with(|| a.id.cmp(&b.id)))
    }

    /// A uniformly random entry (used to pick `j2` in Fig. 5).
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&ViewEntry> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }

    /// Inserts or replaces the entry for `entry.id`.
    ///
    /// If the id is already present the entry is replaced. If the view is
    /// full, the oldest entry is evicted to make room (freshness-preferring
    /// truncation, the standard Cyclon policy).
    pub fn insert(&mut self, entry: ViewEntry) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == entry.id) {
            *existing = entry;
            return;
        }
        if self.entries.len() >= self.capacity {
            self.evict_oldest();
        }
        self.entries.push(entry);
    }

    /// Removes the entry for `id`, returning it if present.
    pub fn remove(&mut self, id: NodeId) -> Option<ViewEntry> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Retains only entries whose id satisfies the predicate (used by churn
    /// handling to drop departed neighbors).
    pub fn retain<F: FnMut(NodeId) -> bool>(&mut self, mut keep: F) {
        self.entries.retain(|e| keep(e.id));
    }

    /// Updates the value snapshot for `id` (if present), returning whether an
    /// entry was updated. Used by the simulator's "views are up-to-date when
    /// a message is sent" mode (§4.5.2).
    pub fn refresh_value(&mut self, id: NodeId, value: f64) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.value = value;
            true
        } else {
            false
        }
    }

    /// Refreshes every entry's value snapshot in one pass: `lookup` returns
    /// the current value published by a live neighbor, or `None` for a
    /// departed one, whose entry is dropped. Entry order is preserved.
    ///
    /// This is the bulk form of [`refresh_value`](View::refresh_value) used
    /// by the simulator's refresh phase — O(len) with no per-entry search
    /// and no id collection on the side.
    pub fn refresh_values<F: FnMut(NodeId) -> Option<f64>>(&mut self, mut lookup: F) {
        self.entries.retain_mut(|e| match lookup(e.id) {
            Some(value) => {
                e.value = value;
                true
            }
            None => false,
        });
    }

    /// The descriptor this node sends about itself in a view exchange:
    /// `⟨i, 0, a_i, r_i⟩` (line 3 of Fig. 3).
    pub fn self_descriptor(id: NodeId, attribute: Attribute, value: f64) -> ViewEntry {
        ViewEntry::new(id, attribute, value)
    }

    /// Merges an incoming view per lines 5–6 / 9–10 of Fig. 3:
    ///
    /// * entries whose id is already present are *duplicates* and discarded
    ///   (the resident entry is kept unless the incoming one is strictly
    ///   younger, in which case it refreshes the snapshot);
    /// * an entry describing the owner itself (`e_i`) is discarded;
    /// * the union is truncated back to `capacity` by evicting the oldest
    ///   entries.
    pub fn merge(&mut self, owner: NodeId, incoming: &[ViewEntry]) {
        for entry in incoming {
            if entry.id == owner {
                continue;
            }
            match self.entries.iter_mut().find(|e| e.id == entry.id) {
                Some(existing) => {
                    if entry.age < existing.age {
                        *existing = *entry;
                    }
                }
                None => self.entries.push(*entry),
            }
        }
        while self.entries.len() > self.capacity {
            self.evict_oldest();
        }
    }

    fn evict_oldest(&mut self) {
        if let Some((idx, _)) = self
            .entries
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.age.cmp(&b.age).then_with(|| a.id.cmp(&b.id)))
        {
            self.entries.swap_remove(idx);
        }
    }

    /// Checks the structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self, owner: Option<NodeId>) -> Result<()> {
        if self.entries.len() > self.capacity {
            return Err(Error::InvalidBoundaries(format!(
                "view overflow: {} > {}",
                self.entries.len(),
                self.capacity
            )));
        }
        for (i, a) in self.entries.iter().enumerate() {
            if Some(a.id) == owner {
                return Err(Error::UnknownNode(a.id));
            }
            for b in &self.entries[i + 1..] {
                if a.id == b.id {
                    return Err(Error::UnknownNode(a.id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn entry(id: u64, age: u32, value: f64) -> ViewEntry {
        ViewEntry::with_age(NodeId::new(id), age, attr(id as f64), value)
    }

    #[test]
    fn capacity_zero_rejected() {
        assert!(matches!(View::new(0), Err(Error::ZeroViewCapacity)));
    }

    #[test]
    fn refresh_values_updates_live_and_drops_dead_in_order() {
        let mut v = View::new(4).unwrap();
        v.insert(entry(1, 0, 0.1));
        v.insert(entry(2, 0, 0.2));
        v.insert(entry(3, 0, 0.3));
        v.refresh_values(|id| match id.as_u64() {
            1 => Some(0.9),
            3 => Some(0.7),
            _ => None,
        });
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(NodeId::new(1)).unwrap().value, 0.9);
        assert!(!v.contains(NodeId::new(2)));
        assert_eq!(v.get(NodeId::new(3)).unwrap().value, 0.7);
        // Surviving entries keep their relative order.
        let ids: Vec<u64> = v.ids().map(|i| i.as_u64()).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn insert_and_lookup() {
        let mut v = View::new(3).unwrap();
        v.insert(entry(1, 0, 0.5));
        v.insert(entry(2, 1, 0.6));
        assert_eq!(v.len(), 2);
        assert!(v.contains(NodeId::new(1)));
        assert_eq!(v.get(NodeId::new(2)).unwrap().age, 1);
        assert!(!v.contains(NodeId::new(3)));
    }

    #[test]
    fn insert_replaces_same_id() {
        let mut v = View::new(3).unwrap();
        v.insert(entry(1, 5, 0.5));
        v.insert(entry(1, 0, 0.9));
        assert_eq!(v.len(), 1);
        let e = v.get(NodeId::new(1)).unwrap();
        assert_eq!(e.age, 0);
        assert_eq!(e.value, 0.9);
    }

    #[test]
    fn insert_evicts_oldest_when_full() {
        let mut v = View::new(2).unwrap();
        v.insert(entry(1, 9, 0.1));
        v.insert(entry(2, 1, 0.2));
        v.insert(entry(3, 0, 0.3));
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId::new(1)), "oldest entry evicted");
        assert!(v.contains(NodeId::new(2)));
        assert!(v.contains(NodeId::new(3)));
    }

    #[test]
    fn oldest_breaks_ties_by_id() {
        let mut v = View::new(4).unwrap();
        v.insert(entry(5, 3, 0.1));
        v.insert(entry(2, 3, 0.2));
        v.insert(entry(9, 1, 0.3));
        assert_eq!(v.oldest().unwrap().id, NodeId::new(5));
    }

    #[test]
    fn increment_ages_saturates() {
        let mut v = View::new(2).unwrap();
        v.insert(entry(1, u32::MAX, 0.1));
        v.insert(entry(2, 0, 0.2));
        v.increment_ages();
        assert_eq!(v.get(NodeId::new(1)).unwrap().age, u32::MAX);
        assert_eq!(v.get(NodeId::new(2)).unwrap().age, 1);
    }

    #[test]
    fn remove_returns_entry() {
        let mut v = View::new(2).unwrap();
        v.insert(entry(1, 0, 0.1));
        let removed = v.remove(NodeId::new(1)).unwrap();
        assert_eq!(removed.id, NodeId::new(1));
        assert!(v.is_empty());
        assert!(v.remove(NodeId::new(1)).is_none());
    }

    #[test]
    fn retain_drops_departed() {
        let mut v = View::new(4).unwrap();
        for i in 1..=4 {
            v.insert(entry(i, 0, 0.1 * i as f64));
        }
        v.retain(|id| id.as_u64() % 2 == 0);
        assert_eq!(v.len(), 2);
        assert!(v.contains(NodeId::new(2)) && v.contains(NodeId::new(4)));
    }

    #[test]
    fn refresh_value_updates_snapshot() {
        let mut v = View::new(2).unwrap();
        v.insert(entry(1, 3, 0.1));
        assert!(v.refresh_value(NodeId::new(1), 0.8));
        assert_eq!(v.get(NodeId::new(1)).unwrap().value, 0.8);
        assert_eq!(v.get(NodeId::new(1)).unwrap().age, 3, "age untouched");
        assert!(!v.refresh_value(NodeId::new(9), 0.5));
    }

    #[test]
    fn merge_discards_self_and_duplicates() {
        let owner = NodeId::new(42);
        let mut v = View::new(4).unwrap();
        v.insert(entry(1, 2, 0.1));
        let incoming = vec![
            entry(42, 0, 0.9), // self pointer → discarded
            entry(1, 5, 0.7),  // duplicate, older → resident kept
            entry(2, 0, 0.2),  // new
        ];
        v.merge(owner, &incoming);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(NodeId::new(1)).unwrap().value, 0.1);
        assert!(v.contains(NodeId::new(2)));
        assert!(!v.contains(owner));
        v.check_invariants(Some(owner)).unwrap();
    }

    #[test]
    fn merge_prefers_younger_duplicate() {
        let owner = NodeId::new(42);
        let mut v = View::new(4).unwrap();
        v.insert(entry(1, 6, 0.1));
        v.merge(owner, &[entry(1, 0, 0.9)]);
        let e = v.get(NodeId::new(1)).unwrap();
        assert_eq!(e.age, 0);
        assert_eq!(e.value, 0.9);
    }

    #[test]
    fn merge_truncates_to_capacity_dropping_oldest() {
        let owner = NodeId::new(42);
        let mut v = View::new(3).unwrap();
        v.insert(entry(1, 9, 0.1));
        v.insert(entry(2, 1, 0.2));
        v.merge(owner, &[entry(3, 0, 0.3), entry(4, 5, 0.4)]);
        assert_eq!(v.len(), 3);
        assert!(!v.contains(NodeId::new(1)), "age-9 entry evicted first");
        v.check_invariants(Some(owner)).unwrap();
    }

    #[test]
    fn random_selection_is_uniformish() {
        let mut v = View::new(4).unwrap();
        for i in 1..=4 {
            v.insert(entry(i, 0, 0.1));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..4000 {
            counts[v.random(&mut rng).unwrap().id.as_u64() as usize] += 1;
        }
        for &c in &counts[1..] {
            assert!((800..1200).contains(&c), "count {c} not near 1000");
        }
    }

    #[test]
    fn random_on_empty_view_is_none() {
        let v = View::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(v.random(&mut rng).is_none());
        assert!(v.oldest().is_none());
    }

    #[test]
    fn invariant_detects_overflow_and_duplicates() {
        let mut v = View::new(2).unwrap();
        v.insert(entry(1, 0, 0.1));
        v.insert(entry(2, 0, 0.2));
        assert!(v.check_invariants(None).is_ok());
        assert!(v.check_invariants(Some(NodeId::new(1))).is_err());
    }

    proptest! {
        #[test]
        fn merge_never_exceeds_capacity_or_contains_owner(
            cap in 1usize..16,
            resident in proptest::collection::vec((0u64..30, 0u32..10, 0.01f64..1.0), 0..16),
            incoming in proptest::collection::vec((0u64..30, 0u32..10, 0.01f64..1.0), 0..16),
            owner in 0u64..30,
        ) {
            let owner = NodeId::new(owner);
            let mut v = View::new(cap).unwrap();
            for (id, age, val) in resident {
                let id = NodeId::new(id);
                if id != owner {
                    v.insert(ViewEntry::with_age(id, age, attr(1.0), val));
                }
            }
            let incoming: Vec<_> = incoming
                .into_iter()
                .map(|(id, age, val)| ViewEntry::with_age(NodeId::new(id), age, attr(1.0), val))
                .collect();
            v.merge(owner, &incoming);
            prop_assert!(v.check_invariants(Some(owner)).is_ok());
            prop_assert!(v.len() <= cap);
        }

        #[test]
        fn insert_keeps_ids_unique(
            cap in 1usize..10,
            ops in proptest::collection::vec((0u64..20, 0u32..5, 0.01f64..1.0), 0..40),
        ) {
            let mut v = View::new(cap).unwrap();
            for (id, age, val) in ops {
                v.insert(ViewEntry::with_age(NodeId::new(id), age, attr(0.0), val));
                prop_assert!(v.check_invariants(None).is_ok());
            }
        }
    }
}
