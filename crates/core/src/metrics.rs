//! The three disorder measures of the paper.
//!
//! * **Global disorder measure** (GDM, §4.2): `GDM(t) = (1/n) Σ_i (α_i − ρ_i(t))²`
//!   — how far the random-value order is from the attribute order, globally.
//! * **Local disorder measure** (LDM, §4.3) and the swap **gain** `G_{i,j}`
//!   (Eq. 1) — the node-local heuristic that mod-JK maximizes when choosing
//!   a swap partner.
//! * **Slice disorder measure** (SDM, §4.4):
//!   `SDM(t) = Σ_i 1/(u_i−l_i) · |(u_i+l_i)/2 − (û_i+l̂_i)/2|`
//!   — the application-level error: how many slice-widths separate each
//!   node's believed slice from its true slice.
//!
//! GDM and SDM are *evaluation oracles*: they use global knowledge and are
//! computed by the simulator, never by protocol code. The LDM/gain functions
//! are genuinely local and are used inside mod-JK.

use crate::attribute::AttributeKey;
use crate::{rank, Attribute, NodeId, Partition};
use std::collections::{HashMap, HashSet};

/// Global disorder measure from explicit rank pairs `(α_i, ρ_i)`.
///
/// Returns 0 for an empty population.
pub fn gdm_from_ranks<I>(ranks: I) -> f64
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for (alpha, rho) in ranks {
        let d = alpha as f64 - rho as f64;
        sum += d * d;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Global disorder measure of a population given each node's attribute and
/// current random value: computes `A.sequence` and `R.sequence` ranks and
/// applies the GDM formula.
pub fn gdm<'a, I>(nodes: I) -> f64
where
    I: IntoIterator<Item = &'a (NodeId, Attribute, f64)>,
{
    let nodes: Vec<_> = nodes.into_iter().copied().collect();
    let alpha = rank::attribute_ranks(nodes.iter().map(|&(id, a, _)| (id, a)));
    let rho = rank::value_ranks(nodes.iter().map(|&(id, _, r)| (id, r)));
    gdm_from_ranks(nodes.iter().map(|(id, _, _)| (alpha[id], rho[id])))
}

/// Computes the *local* sequences `LA.sequence_i` / `LR.sequence_i` over a
/// node's view plus itself, returning for each member its pair of 1-based
/// local indices `(ℓα, ℓρ)`.
///
/// Ties are broken by node id, mirroring the global sequences.
pub fn local_ranks(members: &[(NodeId, Attribute, f64)]) -> HashMap<NodeId, (usize, usize)> {
    let la = rank::attribute_ranks(members.iter().map(|&(id, a, _)| (id, a)));
    let lr = rank::value_ranks(members.iter().map(|&(id, _, r)| (id, r)));
    members
        .iter()
        .map(|(id, _, _)| (*id, (la[id], lr[id])))
        .collect()
}

/// Local disorder measure of node `i` (§4.3):
/// `LDM_i = 1/(c+1) Σ_{j ∈ N_i ∪ {i}} (ℓα_j − ℓρ_j)²`,
/// where `members` is `N_i ∪ {i}` and `c = |N_i|`.
pub fn ldm(members: &[(NodeId, Attribute, f64)]) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let ranks = local_ranks(members);
    let sum: f64 = ranks
        .values()
        .map(|&(la, lr)| {
            let d = la as f64 - lr as f64;
            d * d
        })
        .sum();
    sum / members.len() as f64
}

/// The closed-form swap gain `G_{i,j}` of Eq. (1):
///
/// `G_{i,j}·(c+1) = (ℓα_i−ℓρ_i)² + (ℓα_j−ℓρ_j)² − (ℓα_i−ℓρ_j)² − (ℓα_j−ℓρ_i)²`
///
/// i.e. the decrease of `LDM_i` obtained by swapping the local random-value
/// positions of `i` and `j`. `c_plus_1` is `|N_i ∪ {i}|`.
pub fn swap_gain(
    (la_i, lr_i): (usize, usize),
    (la_j, lr_j): (usize, usize),
    c_plus_1: usize,
) -> f64 {
    let (la_i, lr_i, la_j, lr_j) = (la_i as f64, lr_i as f64, la_j as f64, lr_j as f64);
    let before = (la_i - lr_i).powi(2) + (la_j - lr_j).powi(2);
    let after = (la_i - lr_j).powi(2) + (la_j - lr_i).powi(2);
    (before - after) / c_plus_1 as f64
}

/// The paper's simplified comparison score (derivation below Eq. 2):
/// maximizing `G_{i,j}` over `j` is equivalent to maximizing
/// `gain_j = ℓα_i·ℓρ_j + ℓα_j·ℓρ_i − ℓα_j·ℓρ_j`.
///
/// (Expanding Eq. 1, `G_{i,j}·(c+1)/2 = gain_j − ℓα_i·ℓρ_i`, and the dropped
/// term does not depend on `j`.)
pub fn gain_score((la_i, lr_i): (usize, usize), (la_j, lr_j): (usize, usize)) -> f64 {
    (la_i * lr_j + la_j * lr_i) as f64 - (la_j * lr_j) as f64
}

/// Slice disorder measure from `(true slice, estimated slice)` pairs.
pub fn sdm_from_slices<I>(partition: &Partition, pairs: I) -> f64
where
    I: IntoIterator<Item = (crate::SliceIndex, crate::SliceIndex)>,
{
    pairs
        .into_iter()
        .map(|(actual, estimated)| partition.sdm_term(actual, estimated))
        .sum()
}

/// Slice disorder measure of a population, given each node's attribute and
/// its current *estimate* (random value for the ordering algorithms, rank
/// estimate for the ranking algorithm).
///
/// True slices come from the attribute ranks; estimated slices from looking
/// the estimate up in the partition.
pub fn sdm<'a, I>(partition: &Partition, nodes: I) -> f64
where
    I: IntoIterator<Item = &'a (NodeId, Attribute, f64)>,
{
    let nodes: Vec<_> = nodes.into_iter().copied().collect();
    let truth = rank::true_slices(nodes.iter().map(|&(id, a, _)| (id, a)), partition);
    sdm_from_slices(
        partition,
        nodes
            .iter()
            .map(|(id, _, est)| (truth[id], partition.slice_of(*est))),
    )
}

/// An incrementally maintained `A.sequence`: the attribute ranks (and hence
/// the *true* slices) of a live population, updated on churn instead of
/// re-sorted from scratch on every evaluation.
///
/// Attributes are immutable (§3.1), so the attribute order of a population
/// only changes when nodes join or leave. Large-scale runtimes exploit that:
/// they [`rebuild`](RankCache::rebuild) once at start-up, fold each cycle's
/// churn plan in via [`apply_churn`](RankCache::apply_churn) (a linear merge,
/// no global re-sort), and then evaluate the SDM with [`sdm`](RankCache::sdm)
/// in O(n) — where the uncached [`sdm`] function pays an O(n log n) sort per
/// call. On churn-free cycles the maintenance cost is zero.
#[derive(Clone, Debug, Default)]
pub struct RankCache {
    /// Live nodes in `A.sequence` order (sorted by `(attribute, id)`).
    sorted: Vec<AttributeKey>,
    /// 1-based attribute rank per live node, renumbered after each churn.
    ranks: HashMap<NodeId, usize>,
}

impl RankCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes tracked.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the cache tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Rebuilds the cache from scratch: one O(n log n) sort.
    pub fn rebuild<I>(&mut self, nodes: I)
    where
        I: IntoIterator<Item = (NodeId, Attribute)>,
    {
        self.sorted = nodes
            .into_iter()
            .map(|(id, a)| AttributeKey::new(id, a))
            .collect();
        self.sorted.sort_unstable();
        self.renumber();
    }

    /// Folds one churn batch in: drops `leavers`, merges `joiners` into the
    /// sorted order. Costs O(n + j log j) for j joiners — no global re-sort.
    pub fn apply_churn(&mut self, leavers: &[NodeId], joiners: &[(NodeId, Attribute)]) {
        if leavers.is_empty() && joiners.is_empty() {
            return;
        }
        if !leavers.is_empty() {
            let gone: HashSet<NodeId> = leavers.iter().copied().collect();
            self.sorted.retain(|key| !gone.contains(&key.id));
        }
        if !joiners.is_empty() {
            let mut incoming: Vec<AttributeKey> = joiners
                .iter()
                .map(|&(id, a)| AttributeKey::new(id, a))
                .collect();
            incoming.sort_unstable();
            // Linear merge of the two sorted runs.
            let old = std::mem::take(&mut self.sorted);
            self.sorted = Vec::with_capacity(old.len() + incoming.len());
            let (mut a, mut b) = (old.into_iter().peekable(), incoming.into_iter().peekable());
            loop {
                match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => {
                        if x <= y {
                            self.sorted.push(a.next().expect("peeked"));
                        } else {
                            self.sorted.push(b.next().expect("peeked"));
                        }
                    }
                    (Some(_), None) => self.sorted.push(a.next().expect("peeked")),
                    (None, Some(_)) => self.sorted.push(b.next().expect("peeked")),
                    (None, None) => break,
                }
            }
        }
        self.renumber();
    }

    fn renumber(&mut self) {
        // Reuse the map's buckets across churn batches: the inserts are
        // unavoidable (every rank can shift), the reallocation is not.
        self.ranks.clear();
        self.ranks.reserve(self.sorted.len());
        for (idx, key) in self.sorted.iter().enumerate() {
            self.ranks.insert(key.id, idx + 1);
        }
    }

    /// The 1-based attribute rank `α_i` of a live node.
    pub fn rank(&self, id: NodeId) -> Option<usize> {
        self.ranks.get(&id).copied()
    }

    /// The *true* slice of a live node under `partition`: its normalized
    /// attribute rank looked up in the partition.
    pub fn true_slice(&self, partition: &Partition, id: NodeId) -> Option<crate::SliceIndex> {
        let alpha = self.rank(id)?;
        Some(partition.slice_of(rank::normalized(alpha, self.len())))
    }

    /// Slice disorder measure over `(id, estimate)` pairs, using the cached
    /// attribute ranks: O(n), no sorting.
    ///
    /// Every `id` must be tracked by the cache (panics otherwise — runtimes
    /// keep the cache in lock-step with the live population).
    pub fn sdm<I>(&self, partition: &Partition, estimates: I) -> f64
    where
        I: IntoIterator<Item = (NodeId, f64)>,
    {
        let n = self.len();
        estimates
            .into_iter()
            .map(|(id, est)| {
                let alpha = self.ranks[&id];
                let actual = partition.slice_of(rank::normalized(alpha, n));
                partition.sdm_term(actual, partition.slice_of(est))
            })
            .sum()
    }

    /// Fraction of `(id, estimate)` pairs whose believed slice equals their
    /// true slice: O(n) via the cached ranks. Returns 1.0 for an empty input.
    pub fn accuracy<I>(&self, partition: &Partition, estimates: I) -> f64
    where
        I: IntoIterator<Item = (NodeId, f64)>,
    {
        let n = self.len();
        let (mut total, mut correct) = (0usize, 0usize);
        for (id, est) in estimates {
            let alpha = self.ranks[&id];
            let actual = partition.slice_of(rank::normalized(alpha, n));
            if partition.slice_of(est) == actual {
                correct += 1;
            }
            total += 1;
        }
        if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Tracks per-node *believed* slices across observations and counts
/// changes — the stability requirement §3.2 attaches to slicing ("the
/// reference to slices introduces special requirements related to
/// stability"): an application holding a slice allocation cares as much
/// about nodes *flapping* between slices as about raw assignment accuracy.
///
/// Feed it one snapshot per cycle; it reports how many live nodes changed
/// their believed slice since the previous snapshot. Departed nodes are
/// forgotten; joiners count as changes only on their second appearance.
#[derive(Clone, Debug, Default)]
pub struct SliceTracker {
    believed: HashMap<NodeId, crate::SliceIndex>,
}

impl SliceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently tracked.
    pub fn len(&self) -> usize {
        self.believed.len()
    }

    /// Whether no node is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.believed.is_empty()
    }

    /// Folds in one population snapshot (`(id, attribute, estimate)`);
    /// returns the number of tracked nodes whose believed slice changed.
    pub fn observe<'a, I>(&mut self, partition: &Partition, nodes: I) -> usize
    where
        I: IntoIterator<Item = &'a (NodeId, Attribute, f64)>,
    {
        let mut changes = 0;
        let mut fresh: HashMap<NodeId, crate::SliceIndex> = HashMap::new();
        for &(id, _, est) in nodes {
            let slice = partition.slice_of(est);
            if let Some(&previous) = self.believed.get(&id) {
                if previous != slice {
                    changes += 1;
                }
            }
            fresh.insert(id, slice);
        }
        self.believed = fresh;
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SliceIndex;
    use proptest::prelude::*;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn node(id: u64, a: f64, r: f64) -> (NodeId, Attribute, f64) {
        (NodeId::new(id), attr(a), r)
    }

    #[test]
    fn gdm_zero_when_orders_match() {
        let nodes = vec![node(1, 10.0, 0.1), node(2, 20.0, 0.2), node(3, 30.0, 0.3)];
        assert_eq!(gdm(&nodes), 0.0);
    }

    #[test]
    fn gdm_of_paper_example() {
        // a = (50, 120, 25), r = (0.85, 0.1, 0.35):
        // alpha = (2, 3, 1), rho = (3, 1, 2) → ((2−3)² + (3−1)² + (1−2)²)/3 = 2.
        let nodes = vec![
            node(1, 50.0, 0.85),
            node(2, 120.0, 0.10),
            node(3, 25.0, 0.35),
        ];
        assert!((gdm(&nodes) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gdm_maximal_for_reversed_order() {
        // n nodes fully reversed: GDM = (1/n) Σ (2i−n−1)² maximal over permutations.
        let n = 5;
        let nodes: Vec<_> = (1..=n)
            .map(|i| node(i as u64, i as f64, 1.0 - i as f64 / 10.0))
            .collect();
        let reversed = gdm(&nodes);
        let expected: f64 = (1..=n)
            .map(|i| {
                let d = (i as f64) - (n - i + 1) as f64;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        assert!((reversed - expected).abs() < 1e-12);
    }

    #[test]
    fn gdm_empty_population() {
        assert_eq!(gdm_from_ranks(std::iter::empty()), 0.0);
    }

    #[test]
    fn ldm_zero_when_locally_ordered() {
        let members = vec![node(1, 1.0, 0.1), node(2, 2.0, 0.2), node(3, 3.0, 0.3)];
        assert_eq!(ldm(&members), 0.0);
    }

    #[test]
    fn ldm_counts_local_misorder() {
        // Two members swapped: each off by 1 → (1 + 1)/2 = 1.
        let members = vec![node(1, 1.0, 0.9), node(2, 2.0, 0.1)];
        assert!((ldm(&members) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ldm_empty() {
        assert_eq!(ldm(&[]), 0.0);
    }

    #[test]
    fn swap_gain_positive_for_misplaced_pair() {
        // i at local ranks (la=1, lr=2), j at (la=2, lr=1): swapping fixes both.
        let g = swap_gain((1, 2), (2, 1), 3);
        assert!(g > 0.0);
        // Perfect positions: no gain from swapping.
        let g0 = swap_gain((1, 1), (2, 2), 3);
        assert!(g0 <= 0.0);
    }

    #[test]
    fn gain_score_example_ordering() {
        // For fixed i, the j maximizing swap_gain must maximize gain_score.
        let i = (2, 5);
        let js = [(1, 1), (3, 2), (5, 3), (4, 6)];
        let by_gain = js
            .iter()
            .max_by(|a, b| {
                swap_gain(i, **a, 5)
                    .partial_cmp(&swap_gain(i, **b, 5))
                    .unwrap()
            })
            .unwrap();
        let by_score = js
            .iter()
            .max_by(|a, b| gain_score(i, **a).partial_cmp(&gain_score(i, **b)).unwrap())
            .unwrap();
        assert_eq!(by_gain, by_score);
    }

    #[test]
    fn sdm_zero_when_all_estimates_correct() {
        let part = Partition::equal(2).unwrap();
        // Ranks 1..4 of 4 → normalized 0.25, 0.5, 0.75, 1.0; estimates placed
        // in the matching slice.
        let nodes = vec![
            node(1, 1.0, 0.2),
            node(2, 2.0, 0.4),
            node(3, 3.0, 0.7),
            node(4, 4.0, 0.9),
        ];
        assert_eq!(sdm(&part, &nodes), 0.0);
    }

    #[test]
    fn sdm_counts_slice_distance() {
        let part = Partition::equal(4).unwrap();
        // Node 1 is rank 1/2 → normalized 0.5 → true slice index 1,
        // but estimate 0.9 → believed slice 3: distance 2.
        // Node 2 is rank 2/2 → slice 3, estimate 0.95 → slice 3: distance 0.
        let nodes = vec![node(1, 1.0, 0.9), node(2, 2.0, 0.95)];
        assert!((sdm(&part, &nodes) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sdm_from_slices_uses_partition_term() {
        let part = Partition::equal(10).unwrap();
        let pairs = vec![
            (SliceIndex::new(0), SliceIndex::new(2)),
            (SliceIndex::new(5), SliceIndex::new(5)),
        ];
        assert!((sdm_from_slices(&part, pairs) - 2.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn gdm_is_zero_iff_sorted_consistently(
            values in proptest::collection::vec((0.0001f64..1.0, -1e3f64..1e3), 2..60),
        ) {
            let nodes: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &(r, a))| node(i as u64, a, r))
                .collect();
            let g = gdm(&nodes);
            prop_assert!(g >= 0.0);
            let alpha = rank::attribute_ranks(nodes.iter().map(|&(id, a, _)| (id, a)));
            let rho = rank::value_ranks(nodes.iter().map(|&(id, _, r)| (id, r)));
            let aligned = nodes.iter().all(|(id, _, _)| alpha[id] == rho[id]);
            prop_assert_eq!(g == 0.0, aligned);
        }

        #[test]
        fn gain_equals_ldm_difference(
            members in proptest::collection::vec((-1e3f64..1e3, 0.0001f64..1.0), 2..12),
        ) {
            // Build N_i ∪ {i}; pick i = first member, j = second.
            let nodes: Vec<_> = members
                .iter()
                .enumerate()
                .map(|(k, &(a, r))| node(k as u64, a, r))
                .collect();
            let before = ldm(&nodes);
            let ranks = local_ranks(&nodes);
            let i = nodes[0].0;
            let j = nodes[1].0;
            let g = swap_gain(ranks[&i], ranks[&j], nodes.len());

            // Swap the random values of i and j and recompute the LDM.
            let mut after_nodes = nodes.clone();
            let ri = after_nodes[0].2;
            after_nodes[0].2 = after_nodes[1].2;
            after_nodes[1].2 = ri;
            let after = ldm(&after_nodes);

            // Equality of Eq. 1 holds whenever the swap only exchanges the two
            // local rho positions (true when the two values are adjacent in
            // the local R-order or no third value lies between them). In
            // general the closed form assumes exactly that exchange, so we
            // verify against a direct rank exchange instead:
            let mut exchanged: Vec<(usize, usize)> = Vec::new();
            for (id, _, _) in &nodes {
                let (la, lr) = ranks[id];
                let lr2 = if *id == i {
                    ranks[&j].1
                } else if *id == j {
                    ranks[&i].1
                } else {
                    lr
                };
                exchanged.push((la, lr2));
            }
            let ldm_exchanged: f64 = exchanged
                .iter()
                .map(|&(la, lr)| ((la as f64) - (lr as f64)).powi(2))
                .sum::<f64>() / nodes.len() as f64;
            prop_assert!((before - ldm_exchanged - g).abs() < 1e-9,
                "gain {g} != ldm drop {}", before - ldm_exchanged);
            // And the rank-exchange LDM matches the value-swap LDM whenever
            // the two r-values are adjacent in local order.
            let (lr_i, lr_j) = (ranks[&i].1, ranks[&j].1);
            if lr_i.abs_diff(lr_j) == 1 {
                prop_assert!((after - ldm_exchanged).abs() < 1e-9);
            }
        }

        #[test]
        fn argmax_gain_matches_argmax_score(
            members in proptest::collection::vec((-1e3f64..1e3, 0.0001f64..1.0), 3..12),
        ) {
            let nodes: Vec<_> = members
                .iter()
                .enumerate()
                .map(|(k, &(a, r))| node(k as u64, a, r))
                .collect();
            let ranks = local_ranks(&nodes);
            let i = nodes[0].0;
            let candidates = &nodes[1..];
            let best_by_gain = candidates
                .iter()
                .map(|(id, _, _)| swap_gain(ranks[&i], ranks[id], nodes.len()))
                .fold(f64::NEG_INFINITY, f64::max);
            let best_by_score = candidates
                .iter()
                .map(|(id, _, _)| gain_score(ranks[&i], ranks[id]))
                .fold(f64::NEG_INFINITY, f64::max);
            // The two maxima are attained by the same candidates.
            for (id, _, _) in candidates {
                let g = swap_gain(ranks[&i], ranks[id], nodes.len());
                let s = gain_score(ranks[&i], ranks[id]);
                prop_assert_eq!(
                    (g - best_by_gain).abs() < 1e-9,
                    (s - best_by_score).abs() < 1e-9,
                    "gain argmax and score argmax disagree"
                );
            }
        }

        #[test]
        fn sdm_nonnegative_and_zero_iff_exact(
            values in proptest::collection::vec((-1e3f64..1e3, 0.0001f64..1.0), 1..50),
            k in 1usize..8,
        ) {
            let nodes: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &(a, r))| node(i as u64, a, r))
                .collect();
            let part = Partition::equal(k).unwrap();
            let s = sdm(&part, &nodes);
            prop_assert!(s >= 0.0);
            let truth = rank::true_slices(nodes.iter().map(|&(id, a, _)| (id, a)), &part);
            let exact = nodes
                .iter()
                .all(|(id, _, r)| part.slice_of(*r) == truth[id]);
            prop_assert_eq!(s == 0.0, exact);
        }
    }

    #[test]
    fn rank_cache_matches_fresh_computation() {
        let part = Partition::equal(4).unwrap();
        let nodes = vec![
            node(1, 50.0, 0.1),
            node(2, 120.0, 0.9),
            node(3, 25.0, 0.4),
            node(4, 80.0, 0.6),
        ];
        let mut cache = RankCache::new();
        cache.rebuild(nodes.iter().map(|&(id, a, _)| (id, a)));
        assert_eq!(cache.len(), 4);
        let alpha = rank::attribute_ranks(nodes.iter().map(|&(id, a, _)| (id, a)));
        for (id, _, _) in &nodes {
            assert_eq!(cache.rank(*id), Some(alpha[id]));
        }
        let cached = cache.sdm(&part, nodes.iter().map(|&(id, _, est)| (id, est)));
        let fresh = sdm(&part, &nodes);
        assert!((cached - fresh).abs() < 1e-12);
        let truth = rank::true_slices(nodes.iter().map(|&(id, a, _)| (id, a)), &part);
        for (id, _, _) in &nodes {
            assert_eq!(cache.true_slice(&part, *id), Some(truth[id]));
        }
    }

    #[test]
    fn rank_cache_churn_merge_tracks_rebuild() {
        let mut cache = RankCache::new();
        let initial: Vec<(NodeId, Attribute)> = (0..20)
            .map(|i| (NodeId::new(i), attr((i as f64 * 7.3) % 11.0)))
            .collect();
        cache.rebuild(initial.iter().copied());
        // Leave 5 nodes, join 4 (including attribute ties with survivors).
        let leavers: Vec<NodeId> = [2u64, 7, 11, 13, 19].map(NodeId::new).into();
        let joiners: Vec<(NodeId, Attribute)> = (100..104u64)
            .map(|i| (NodeId::new(i), attr((i % 5) as f64)))
            .collect();
        cache.apply_churn(&leavers, &joiners);

        let mut reference = RankCache::new();
        reference.rebuild(
            initial
                .iter()
                .copied()
                .filter(|(id, _)| !leavers.contains(id))
                .chain(joiners.iter().copied()),
        );
        assert_eq!(cache.len(), reference.len());
        for (id, _) in initial.iter().chain(joiners.iter()) {
            assert_eq!(cache.rank(*id), reference.rank(*id), "rank of {id}");
        }
        assert_eq!(cache.rank(NodeId::new(2)), None, "leaver forgotten");
    }

    #[test]
    fn rank_cache_accuracy_counts_correct_beliefs() {
        let part = Partition::equal(2).unwrap();
        // Ranks 1, 2 of 2 → normalized 0.5 and 1.0 → slices 0 and 1.
        let nodes = [node(1, 1.0, 0.3), node(2, 2.0, 0.4)];
        let mut cache = RankCache::new();
        cache.rebuild(nodes.iter().map(|&(id, a, _)| (id, a)));
        // Node 1 believes slice 0 (correct), node 2 believes slice 0 (wrong).
        let acc = cache.accuracy(&part, nodes.iter().map(|&(id, _, est)| (id, est)));
        assert!((acc - 0.5).abs() < 1e-12);
        assert_eq!(cache.accuracy(&part, std::iter::empty()), 1.0);
    }

    proptest! {
        #[test]
        fn rank_cache_sdm_equals_uncached_sdm_under_churn(
            values in proptest::collection::vec((-1e3f64..1e3, 0.0001f64..1.0), 4..40),
            k in 1usize..6,
            leave in proptest::collection::vec(0usize..40, 0..10),
        ) {
            let part = Partition::equal(k).unwrap();
            let nodes: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &(a, r))| node(i as u64, a, r))
                .collect();
            let mut cache = RankCache::new();
            cache.rebuild(nodes.iter().map(|&(id, a, _)| (id, a)));
            // Churn: remove the chosen indices, add replacements.
            let leavers: Vec<NodeId> = leave
                .iter()
                .filter(|&&i| i < nodes.len())
                .map(|&i| nodes[i].0)
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .collect();
            let joiners: Vec<(NodeId, Attribute)> = leave
                .iter()
                .enumerate()
                .map(|(j, _)| (NodeId::new(1000 + j as u64), attr(j as f64 * 3.7 - 5.0)))
                .collect();
            cache.apply_churn(&leavers, &joiners);
            let survivors: Vec<_> = nodes
                .iter()
                .copied()
                .filter(|(id, _, _)| !leavers.contains(id))
                .chain(joiners.iter().map(|&(id, a)| (id, a, 0.5)))
                .collect();
            let cached = cache.sdm(&part, survivors.iter().map(|&(id, _, est)| (id, est)));
            let fresh = sdm(&part, &survivors);
            prop_assert!((cached - fresh).abs() < 1e-9, "cached {cached} vs fresh {fresh}");
        }
    }

    #[test]
    fn tracker_counts_changes_not_first_sightings() {
        let part = Partition::equal(2).unwrap();
        let mut t = SliceTracker::new();
        assert!(t.is_empty());
        let a = Attribute::new(1.0).unwrap();
        // First sighting: no change counted.
        let snap1 = [(NodeId::new(1), a, 0.2), (NodeId::new(2), a, 0.9)];
        assert_eq!(t.observe(&part, &snap1), 0);
        assert_eq!(t.len(), 2);
        // Node 1 crosses the boundary; node 2 stays.
        let snap2 = [(NodeId::new(1), a, 0.7), (NodeId::new(2), a, 0.8)];
        assert_eq!(t.observe(&part, &snap2), 1);
        // Stable snapshot: zero changes.
        assert_eq!(t.observe(&part, &snap2), 0);
    }

    #[test]
    fn tracker_forgets_departed_and_rediscovers_joiners() {
        let part = Partition::equal(2).unwrap();
        let a = Attribute::new(1.0).unwrap();
        let mut t = SliceTracker::new();
        t.observe(&part, &[(NodeId::new(1), a, 0.2)]);
        // Node 1 departs; node 2 joins.
        assert_eq!(t.observe(&part, &[(NodeId::new(2), a, 0.9)]), 0);
        assert_eq!(t.len(), 1);
        // Node 1 rejoins in the *other* slice: first sighting again, no change.
        assert_eq!(
            t.observe(&part, &[(NodeId::new(1), a, 0.9), (NodeId::new(2), a, 0.9)]),
            0
        );
    }
}
