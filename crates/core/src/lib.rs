//! # dslice-core
//!
//! Core model for the *distributed slicing* problem, reproducing
//! "Distributed Slicing in Dynamic Systems" (Fernández, Gramoli, Jiménez,
//! Kermarrec, Raynal — INRIA RR-6051 / ICDCS 2007).
//!
//! A network of `n` nodes, each holding an **attribute value** reflecting its
//! capability (bandwidth, uptime, storage…), must partition itself into
//! **slices**: adjacent intervals of the normalized attribute rank. Every
//! node must discover, with only gossip-sized local state, which slice it
//! currently belongs to — in the presence of churn and skewed attribute
//! distributions.
//!
//! This crate defines the vocabulary shared by every other crate of the
//! workspace:
//!
//! * [`NodeId`] — unique node identities, used to break attribute ties
//!   (paper §3.1).
//! * [`Attribute`] — totally-ordered, finite attribute values.
//! * [`Slice`] and [`Partition`] — the slice intervals `(l, u]` partitioning
//!   `(0, 1]` (paper §3.2).
//! * [`View`] / [`ViewEntry`] — the bounded neighbor table with ages, as
//!   introduced in §4.2 (Table 1 of the paper).
//! * [`metrics`] — the three disorder measures of the paper: the *global
//!   disorder measure* (GDM, §4.2), the *local disorder measure* and swap
//!   gain (LDM / `G_{i,j}`, §4.3), and the *slice disorder measure*
//!   (SDM, §4.4).
//! * [`protocol`] — the [`SliceProtocol`](protocol::SliceProtocol) trait and
//!   [`Context`](protocol::Context) abstraction through which the same
//!   protocol implementation runs inside the deterministic cycle simulator
//!   (`dslice-sim`) and the asynchronous network runtime (`dslice-net`).
//!
//! The crate is deliberately free of any scheduling or I/O concern: it can be
//! embedded in simulators, property tests and real deployments alike.
//!
//! ## Quick tour
//!
//! ```
//! use dslice_core::{Attribute, NodeId, Partition};
//!
//! // Three nodes with the attribute values of the paper's running example
//! // (§3.1): a1 = 50, a2 = 120, a3 = 25.
//! let nodes = [
//!     (NodeId::new(1), Attribute::new(50.0).unwrap()),
//!     (NodeId::new(2), Attribute::new(120.0).unwrap()),
//!     (NodeId::new(3), Attribute::new(25.0).unwrap()),
//! ];
//! let ranks = dslice_core::rank::attribute_ranks(nodes.iter().copied());
//! // Node 1 has the 2nd smallest attribute value: alpha_1 = 2.
//! assert_eq!(ranks[&NodeId::new(1)], 2);
//!
//! // Two equal slices over (0, 1]: S_{0,1/2} and S_{1/2,1}.
//! let part = Partition::equal(2).unwrap();
//! assert_eq!(part.slice_of(0.3).as_usize(), 0);
//! assert_eq!(part.slice_of(0.9).as_usize(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod attribute;
pub mod error;
pub mod message;
pub mod metrics;
pub mod node;
pub mod protocol;
pub mod rank;
pub mod slab;
pub mod slice;
pub mod view;

pub use attribute::Attribute;
pub use error::{Error, Result};
pub use message::ProtocolMsg;
pub use node::NodeId;
pub use slab::{NodeSlab, SlotLookup, TakenPair};
pub use slice::{Partition, Slice, SliceIndex};
pub use view::{View, ViewEntry};
