//! Dense slab storage for per-node runtime state.
//!
//! Runtimes that simulate large populations (the cycle engine of
//! `dslice-sim` targets 10⁵+ nodes) need three things from their node store
//! that a `BTreeMap<NodeId, T>` does not give them:
//!
//! * **O(1) lookup** on the message-delivery hot path (no tree descent);
//! * **cache-friendly iteration** — node state laid out contiguously, walked
//!   in slot order every cycle;
//! * **stable slots** during a cycle, so a node can be temporarily moved out
//!   (to appease the borrow checker during pairwise exchanges) and put back
//!   without disturbing any other node.
//!
//! [`NodeSlab`] provides exactly that: a `Vec<Option<(NodeId, T)>>` of
//! *slots*, a `NodeId → slot` index map, and a LIFO free list so that churn
//! reuses slots instead of growing the vector forever. All operations are
//! deterministic: slot assignment depends only on the sequence of inserts
//! and removes, never on hash iteration order (the index map is only ever
//! *queried*, not iterated).

use crate::NodeId;
use std::collections::HashMap;

/// A slot-addressed, id-indexed dense store of per-node state.
///
/// Iteration ([`iter`](NodeSlab::iter), [`iter_mut`](NodeSlab::iter_mut))
/// visits live nodes in **slot order**, which is the canonical deterministic
/// order runtimes use for phased processing; it is *not* id order once churn
/// has recycled slots.
#[derive(Debug, Clone)]
pub struct NodeSlab<T> {
    /// Slot storage. `None` marks a free (or temporarily vacated) slot.
    slots: Vec<Option<(NodeId, T)>>,
    /// Id → slot lookup. Entries persist while a node is [`take`](NodeSlab::take)n.
    index: HashMap<NodeId, usize>,
    /// Free slots, reused LIFO (deterministic).
    free: Vec<usize>,
}

impl<T> Default for NodeSlab<T> {
    fn default() -> Self {
        NodeSlab {
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
        }
    }
}

impl<T> NodeSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty slab with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSlab {
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// Number of live nodes (including temporarily taken ones).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slab holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of slots ever allocated (live + free). Memory use is bounded
    /// by the *peak* population, not the current one.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// The slot currently assigned to `id`, if live.
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Inserts `value` under `id`, reusing the most recently freed slot if
    /// any. Returns the assigned slot.
    ///
    /// Panics if `id` is already present — node identities are unique for
    /// the lifetime of a run (the allocator never reuses them).
    pub fn insert(&mut self, id: NodeId, value: T) -> usize {
        assert!(
            !self.index.contains_key(&id),
            "node {id} inserted twice into slab"
        );
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(
                    self.slots[slot].is_none(),
                    "free list points at a live slot"
                );
                self.slots[slot] = Some((id, value));
                slot
            }
            None => {
                self.slots.push(Some((id, value)));
                self.slots.len() - 1
            }
        };
        self.index.insert(id, slot);
        slot
    }

    /// Removes `id`, freeing its slot for reuse. Returns the value.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let slot = self.index.remove(&id)?;
        let (stored_id, value) = self.slots[slot]
            .take()
            .expect("indexed slot must be occupied");
        debug_assert_eq!(stored_id, id, "index and slot disagree");
        self.free.push(slot);
        Some(value)
    }

    /// Shared access to `id`'s state.
    pub fn get(&self, id: NodeId) -> Option<&T> {
        let slot = *self.index.get(&id)?;
        self.slots[slot].as_ref().map(|(_, v)| v)
    }

    /// Mutable access to `id`'s state.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        let slot = *self.index.get(&id)?;
        self.slots[slot].as_mut().map(|(_, v)| v)
    }

    /// Temporarily moves `id`'s state out of the slab, keeping its slot
    /// reserved (the node stays "live": `len`, `contains` and `slot_of` are
    /// unaffected, but `get` returns `None` until [`put_back`](NodeSlab::put_back)).
    ///
    /// This is the borrow-splitting primitive for pairwise interactions:
    /// take one node, mutate it against `&mut self` access to its partner,
    /// put it back — all O(1), with no slot churn.
    pub fn take(&mut self, id: NodeId) -> Option<(usize, T)> {
        let slot = *self.index.get(&id)?;
        let (_, value) = self.slots[slot].take()?;
        Some((slot, value))
    }

    /// Restores a node moved out by [`take`](NodeSlab::take) into its
    /// reserved slot.
    pub fn put_back(&mut self, slot: usize, id: NodeId, value: T) {
        debug_assert!(self.slots[slot].is_none(), "slot occupied on put_back");
        debug_assert_eq!(self.index.get(&id), Some(&slot), "slot not reserved");
        self.slots[slot] = Some((id, value));
    }

    /// Iterates live nodes in slot order as `(slot, id, &state)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, cell)| cell.as_ref().map(|(id, v)| (slot, *id, v)))
    }

    /// Iterates live nodes in slot order as `(slot, id, &mut state)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, NodeId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, cell)| cell.as_mut().map(|(id, v)| (slot, *id, v)))
    }

    /// Iterates live node ids in slot order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots
            .iter()
            .filter_map(|cell| cell.as_ref().map(|(id, _)| *id))
    }

    /// Splits the slot array into at most `count` contiguous chunks of
    /// equal slot span, for phase-parallel runtimes that fan live nodes out
    /// across workers (each [`SlabChunk`] is `Send` when `T` is).
    ///
    /// Chunks expose only `(slot, id, &mut state)` for their live cells —
    /// never the cells themselves — so workers can mutate node state but
    /// cannot desync the id → slot index or the free list.
    pub fn chunks_mut(&mut self, count: usize) -> Vec<SlabChunk<'_, T>> {
        chunk_slots(&mut self.slots, count)
    }

    /// Like [`chunks_mut`](NodeSlab::chunks_mut), but additionally hands out
    /// a read-only id → slot lookup that stays usable *while* the chunks
    /// borrow the slot storage (the borrows are split at the field level).
    ///
    /// This is the substrate for phases that mutate every node against an
    /// immutable per-slot snapshot of the whole population: workers walk
    /// their chunk mutably and resolve cross-node references through the
    /// lookup without touching any other node's state.
    pub fn chunks_mut_with_lookup(
        &mut self,
        count: usize,
    ) -> (Vec<SlabChunk<'_, T>>, SlotLookup<'_>) {
        let lookup = SlotLookup { index: &self.index };
        (chunk_slots(&mut self.slots, count), lookup)
    }

    /// Temporarily moves *both* endpoints of a pairwise exchange out of the
    /// slab (see [`take`](NodeSlab::take)), keeping their slots reserved.
    ///
    /// Returns `None` — with any partially taken state restored — when the
    /// endpoints alias (`a == b`) or either endpoint is absent or already
    /// taken. Pair-batch runtimes schedule conflict-free batches (no node in
    /// two pairs of one batch), so within a batch every `take_pair` succeeds
    /// and the extracted pairs can be processed on any thread in any order.
    pub fn take_pair(&mut self, a: NodeId, b: NodeId) -> Option<TakenPair<T>> {
        if a == b {
            return None;
        }
        let (a_slot, a_state) = self.take(a)?;
        match self.take(b) {
            Some((b_slot, b_state)) => Some(TakenPair {
                a_slot,
                a_id: a,
                a: a_state,
                b_slot,
                b_id: b,
                b: b_state,
            }),
            None => {
                self.put_back(a_slot, a, a_state);
                None
            }
        }
    }

    /// Restores a pair moved out by [`take_pair`](NodeSlab::take_pair) into
    /// its reserved slots.
    pub fn put_back_pair(&mut self, pair: TakenPair<T>) {
        self.put_back(pair.a_slot, pair.a_id, pair.a);
        self.put_back(pair.b_slot, pair.b_id, pair.b);
    }
}

/// Shared implementation of [`NodeSlab::chunks_mut`], operating on the slot
/// storage alone so callers can keep a concurrent borrow of the index.
fn chunk_slots<T>(slots: &mut [Option<(NodeId, T)>], count: usize) -> Vec<SlabChunk<'_, T>> {
    assert!(count >= 1, "chunk count must be at least 1");
    if slots.is_empty() {
        return Vec::new();
    }
    let chunk_len = slots.len().div_ceil(count);
    slots
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(index, cells)| SlabChunk {
            base: index * chunk_len,
            cells,
        })
        .collect()
}

/// Read-only id → slot lookup handed out by
/// [`NodeSlab::chunks_mut_with_lookup`]; valid while the chunks are live.
#[derive(Debug, Clone, Copy)]
pub struct SlotLookup<'a> {
    index: &'a HashMap<NodeId, usize>,
}

impl SlotLookup<'_> {
    /// The slot currently assigned to `id`, if live.
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }
}

/// Both endpoints of one pairwise exchange, temporarily owned outside the
/// slab (see [`NodeSlab::take_pair`]). Field names follow the exchange
/// roles: `a` initiates, `b` responds.
#[derive(Debug)]
pub struct TakenPair<T> {
    /// Initiator slot (global, reserved while taken).
    pub a_slot: usize,
    /// Initiator id.
    pub a_id: NodeId,
    /// Initiator state.
    pub a: T,
    /// Responder slot (global, reserved while taken).
    pub b_slot: usize,
    /// Responder id.
    pub b_id: NodeId,
    /// Responder state.
    pub b: T,
}

/// One contiguous range of a [`NodeSlab`]'s slots, handed to a worker by
/// [`NodeSlab::chunks_mut`]. Yields only live-node state; the slab's
/// internal invariants are not reachable through it.
#[derive(Debug)]
pub struct SlabChunk<'a, T> {
    base: usize,
    cells: &'a mut [Option<(NodeId, T)>],
}

impl<T> SlabChunk<'_, T> {
    /// Iterates this chunk's live nodes in slot order as
    /// `(slot, id, &mut state)`. Slot numbers are global (slab-wide).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, NodeId, &mut T)> {
        let base = self.base;
        self.cells
            .iter_mut()
            .enumerate()
            .filter_map(move |(offset, cell)| cell.as_mut().map(|(id, v)| (base + offset, *id, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut slab: NodeSlab<&str> = NodeSlab::new();
        assert!(slab.is_empty());
        let s0 = slab.insert(id(10), "a");
        let s1 = slab.insert(id(11), "b");
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(id(10)), Some(&"a"));
        assert_eq!(slab.slot_of(id(11)), Some(1));
        assert_eq!(slab.remove(id(10)), Some("a"));
        assert!(!slab.contains(id(10)));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.remove(id(10)), None);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        for i in 0..4 {
            slab.insert(id(i), i as u32);
        }
        slab.remove(id(1));
        slab.remove(id(3));
        // LIFO: the most recently freed slot (3) goes first.
        assert_eq!(slab.insert(id(10), 10), 3);
        assert_eq!(slab.insert(id(11), 11), 1);
        // No growth beyond the peak.
        assert_eq!(slab.slot_count(), 4);
        assert_eq!(slab.insert(id(12), 12), 4, "full slab grows");
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        for i in 0..5 {
            slab.insert(id(100 - i), i as u32);
        }
        slab.remove(id(98)); // slot 2 vacated
        let ids: Vec<u64> = slab.ids().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![100, 99, 97, 96]);
        slab.insert(id(5), 50); // reuses slot 2
        let ids: Vec<u64> = slab.ids().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![100, 99, 5, 97, 96]);
    }

    #[test]
    fn take_reserves_the_slot() {
        let mut slab: NodeSlab<String> = NodeSlab::new();
        slab.insert(id(1), "one".into());
        slab.insert(id(2), "two".into());
        let (slot, value) = slab.take(id(1)).unwrap();
        assert_eq!(value, "one");
        assert!(slab.contains(id(1)), "taken node stays live");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(id(1)), None, "state is out");
        assert!(slab.take(id(1)).is_none(), "cannot take twice");
        // The vacated slot is NOT on the free list: an insert must not steal it.
        assert_eq!(slab.insert(id(3), "three".into()), 2);
        slab.put_back(slot, id(1), value);
        assert_eq!(slab.get(id(1)), Some(&"one".to_string()));
    }

    #[test]
    fn iter_mut_reaches_every_live_node() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        for i in 0..3 {
            slab.insert(id(i), 0);
        }
        for (_, _, v) in slab.iter_mut() {
            *v += 1;
        }
        assert!(slab.iter().all(|(_, _, v)| *v == 1));
    }

    #[test]
    fn chunks_cover_every_live_node_exactly_once() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        for i in 0..10 {
            slab.insert(id(i), i as u32);
        }
        slab.remove(id(3));
        slab.remove(id(7));
        for count in [1, 2, 3, 4, 16] {
            let mut seen: Vec<(usize, u64)> = Vec::new();
            for mut chunk in slab.chunks_mut(count) {
                for (slot, node, v) in chunk.iter_mut() {
                    *v += 1; // mutation reaches the slab
                    seen.push((slot, node.as_u64()));
                }
            }
            // Global slot order, no duplicates, exactly the live set.
            assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "count {count}");
            let ids: Vec<u64> = seen.iter().map(|&(_, id)| id).collect();
            assert_eq!(ids, vec![0, 1, 2, 4, 5, 6, 8, 9], "count {count}");
        }
        assert!(slab.iter().all(|(_, i, v)| *v == i.as_u64() as u32 + 5));
        let empty: NodeSlab<u32> = NodeSlab::new();
        let mut none = empty;
        assert!(none.chunks_mut(4).is_empty());
    }

    #[test]
    fn take_pair_reserves_both_slots_and_rejects_conflicts() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        for i in 0..4 {
            slab.insert(id(i), i as u32);
        }
        let pair = slab.take_pair(id(1), id(3)).unwrap();
        assert_eq!((pair.a_id, pair.a, pair.b_id, pair.b), (id(1), 1, id(3), 3));
        assert_eq!(slab.len(), 4, "taken nodes stay live");
        // Either endpoint being out blocks an overlapping pair.
        assert!(slab.take_pair(id(0), id(1)).is_none());
        assert!(slab.get(id(0)).is_some(), "failed take_pair restored a");
        assert!(slab.take_pair(id(3), id(2)).is_none());
        assert!(
            slab.get(id(2)).is_some(),
            "failed take_pair restored b side"
        );
        // Self-pairs and missing endpoints are rejected.
        assert!(slab.take_pair(id(0), id(0)).is_none());
        assert!(slab.take_pair(id(0), id(99)).is_none());
        assert!(slab.get(id(0)).is_some());
        slab.put_back_pair(pair);
        assert_eq!(slab.get(id(1)), Some(&1));
        assert_eq!(slab.get(id(3)), Some(&3));
    }

    #[test]
    fn lookup_stays_usable_while_chunks_are_out() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        for i in 0..9 {
            slab.insert(id(i), i as u32);
        }
        slab.remove(id(4));
        let (chunks, lookup) = slab.chunks_mut_with_lookup(3);
        assert_eq!(chunks.len(), 3);
        let mut visited = 0;
        for mut chunk in chunks {
            for (slot, node, v) in chunk.iter_mut() {
                assert_eq!(lookup.slot_of(node), Some(slot));
                *v += 100;
                visited += 1;
            }
        }
        assert_eq!(visited, 8);
        assert!(!lookup.contains(id(4)));
        assert_eq!(slab.get(id(7)), Some(&107));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut slab: NodeSlab<u32> = NodeSlab::new();
        slab.insert(id(1), 1);
        slab.insert(id(1), 2);
    }
}
