//! Rank computations: `A.sequence`, `R.sequence` and normalized ranks.
//!
//! The paper defines two global sequences (§3.1, §4.1):
//!
//! * `A.sequence` — all nodes sorted by `(attribute, id)`; the index of node
//!   `i` in it is its **attribute-based rank** `α_i ∈ {1, …, n}`.
//! * `R.sequence` — all nodes sorted by their current random value; the index
//!   of node `i` is `ρ_i(t)`.
//!
//! These are *global* quantities used by the evaluation metrics (GDM, SDM)
//! and by oracle tests — protocol code never sees them.

use crate::attribute::AttributeKey;
use crate::{Attribute, NodeId, Partition, SliceIndex};
use std::collections::HashMap;

/// Computes attribute-based ranks `α_i` (1-based, per the paper).
///
/// Ties on the attribute value are broken by node id, making the rank a
/// bijection onto `{1, …, n}`.
///
/// ```
/// use dslice_core::{Attribute, NodeId};
/// let nodes = [
///     (NodeId::new(1), Attribute::new(50.0).unwrap()),
///     (NodeId::new(2), Attribute::new(120.0).unwrap()),
///     (NodeId::new(3), Attribute::new(25.0).unwrap()),
/// ];
/// let alpha = dslice_core::rank::attribute_ranks(nodes);
/// assert_eq!(alpha[&NodeId::new(3)], 1);
/// assert_eq!(alpha[&NodeId::new(1)], 2);
/// assert_eq!(alpha[&NodeId::new(2)], 3);
/// ```
pub fn attribute_ranks<I>(nodes: I) -> HashMap<NodeId, usize>
where
    I: IntoIterator<Item = (NodeId, Attribute)>,
{
    let mut keys: Vec<AttributeKey> = nodes
        .into_iter()
        .map(|(id, a)| AttributeKey::new(id, a))
        .collect();
    keys.sort_unstable();
    keys.iter()
        .enumerate()
        .map(|(idx, key)| (key.id, idx + 1))
        .collect()
}

/// Computes random-value ranks `ρ_i` (1-based): the index of each node in
/// `R.sequence`. Ties on the value are broken by node id so the result is a
/// bijection even if values collide.
pub fn value_ranks<I>(nodes: I) -> HashMap<NodeId, usize>
where
    I: IntoIterator<Item = (NodeId, f64)>,
{
    let mut pairs: Vec<(NodeId, f64)> = nodes.into_iter().collect();
    pairs.sort_unstable_by(|(ia, ra), (ib, rb)| {
        ra.partial_cmp(rb)
            .expect("random values are finite")
            .then_with(|| ia.cmp(ib))
    });
    pairs
        .iter()
        .enumerate()
        .map(|(idx, (id, _))| (*id, idx + 1))
        .collect()
}

/// The normalized rank `α_i / n` of a 1-based rank in a population of `n`.
///
/// This is the quantity the slicing problem asks every node to locate inside
/// the partition of `(0, 1]`.
pub fn normalized(rank: usize, n: usize) -> f64 {
    debug_assert!(n > 0 && rank >= 1 && rank <= n);
    rank as f64 / n as f64
}

/// Computes the *true* slice of every node: sort by attribute, normalize the
/// rank, and look the result up in the partition.
///
/// This is the oracle against which the slice disorder measure compares the
/// protocol estimates.
pub fn true_slices<I>(nodes: I, partition: &Partition) -> HashMap<NodeId, SliceIndex>
where
    I: IntoIterator<Item = (NodeId, Attribute)>,
{
    let ranks = attribute_ranks(nodes);
    let n = ranks.len();
    ranks
        .into_iter()
        .map(|(id, alpha)| (id, partition.slice_of(normalized(alpha, n))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    #[test]
    fn paper_running_example() {
        // §3.1: a1 = 50, a2 = 120, a3 = 25 → α1 = 2.
        let nodes = [
            (NodeId::new(1), attr(50.0)),
            (NodeId::new(2), attr(120.0)),
            (NodeId::new(3), attr(25.0)),
        ];
        let alpha = attribute_ranks(nodes);
        assert_eq!(alpha[&NodeId::new(1)], 2);
        assert_eq!(alpha[&NodeId::new(2)], 3);
        assert_eq!(alpha[&NodeId::new(3)], 1);
    }

    #[test]
    fn value_ranks_paper_example() {
        // §4.1: r1 = 0.85, r2 = 0.1, r3 = 0.35 → ρ1 = 3.
        let nodes = [
            (NodeId::new(1), 0.85),
            (NodeId::new(2), 0.10),
            (NodeId::new(3), 0.35),
        ];
        let rho = value_ranks(nodes);
        assert_eq!(rho[&NodeId::new(1)], 3);
        assert_eq!(rho[&NodeId::new(2)], 1);
        assert_eq!(rho[&NodeId::new(3)], 2);
    }

    #[test]
    fn ties_break_by_id() {
        let nodes = [
            (NodeId::new(9), attr(5.0)),
            (NodeId::new(3), attr(5.0)),
            (NodeId::new(6), attr(5.0)),
        ];
        let alpha = attribute_ranks(nodes);
        assert_eq!(alpha[&NodeId::new(3)], 1);
        assert_eq!(alpha[&NodeId::new(6)], 2);
        assert_eq!(alpha[&NodeId::new(9)], 3);
    }

    #[test]
    fn normalized_rank_endpoints() {
        assert!((normalized(1, 4) - 0.25).abs() < 1e-12);
        assert!((normalized(4, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn true_slices_of_height_example() {
        // Fig. 1: 10 persons, 2 slices → 5 shortest in S1, 5 tallest in S2.
        let heights = [1.5, 1.55, 1.6, 1.62, 1.65, 1.7, 1.75, 1.8, 1.9, 2.0];
        let nodes: Vec<_> = heights
            .iter()
            .enumerate()
            .map(|(i, &h)| (NodeId::new(i as u64 + 1), attr(h)))
            .collect();
        let part = Partition::equal(2).unwrap();
        let slices = true_slices(nodes, &part);
        for i in 1..=5u64 {
            assert_eq!(slices[&NodeId::new(i)].as_usize(), 0, "person {i} short");
        }
        for i in 6..=10u64 {
            assert_eq!(slices[&NodeId::new(i)].as_usize(), 1, "person {i} tall");
        }
    }

    #[test]
    fn empty_population_yields_empty_maps() {
        let alpha = attribute_ranks(std::iter::empty());
        assert!(alpha.is_empty());
        let rho = value_ranks(std::iter::empty());
        assert!(rho.is_empty());
    }

    proptest! {
        #[test]
        fn attribute_ranks_are_a_bijection(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let nodes: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId::new(i as u64), attr(v)))
                .collect();
            let n = nodes.len();
            let alpha = attribute_ranks(nodes);
            let mut seen: Vec<usize> = alpha.values().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (1..=n).collect::<Vec<_>>());
        }

        #[test]
        fn ranks_respect_attribute_order(values in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
            let nodes: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId::new(i as u64), attr(v)))
                .collect();
            let alpha = attribute_ranks(nodes.iter().copied());
            for (ia, aa) in &nodes {
                for (ib, ab) in &nodes {
                    if aa < ab {
                        prop_assert!(alpha[ia] < alpha[ib]);
                    }
                }
            }
        }

        #[test]
        fn value_ranks_are_a_bijection(values in proptest::collection::vec(0.0001f64..1.0, 1..200)) {
            let nodes: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId::new(i as u64), v))
                .collect();
            let n = nodes.len();
            let rho = value_ranks(nodes);
            let mut seen: Vec<usize> = rho.values().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (1..=n).collect::<Vec<_>>());
        }

        #[test]
        fn true_slice_population_sizes_are_balanced(
            n in 10usize..300,
            k in 1usize..10,
        ) {
            // With n nodes and k slices of equal size, each slice holds
            // floor(n/k) or ceil(n/k) nodes: ranks are exact, unlike random
            // values (the paper's §4.4 inaccuracy does not exist here).
            let nodes: Vec<_> = (0..n)
                .map(|i| (NodeId::new(i as u64), attr(i as f64)))
                .collect();
            let part = Partition::equal(k).unwrap();
            let slices = true_slices(nodes, &part);
            let mut counts = vec![0usize; k];
            for idx in slices.values() {
                counts[idx.as_usize()] += 1;
            }
            for &c in &counts {
                prop_assert!(c == n / k || c == n / k + 1 || c == n.div_ceil(k));
            }
        }
    }
}
