//! Error types shared across the workspace.

use std::fmt;

/// Convenient result alias for fallible `dslice` operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the core model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An attribute value was not a finite number (NaN or infinite).
    NonFiniteAttribute(f64),
    /// A partition was requested with zero slices.
    EmptyPartition,
    /// Partition boundaries were not strictly increasing within `(0, 1)`.
    InvalidBoundaries(String),
    /// Slice fractions did not sum to 1 (within tolerance) or contained a
    /// non-positive fraction.
    InvalidFractions(String),
    /// A normalized rank or random value fell outside `(0, 1]`.
    OutOfRange {
        /// Short description of the quantity that was out of range.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A protocol was configured with out-of-range parameters (window,
    /// decay factor, strike limit, ...).
    InvalidProtocol(String),
    /// A latency model was configured with out-of-range parameters (e.g. a
    /// uniform range whose minimum exceeds its maximum).
    InvalidLatency(String),
    /// A network-fault injection was configured with out-of-range
    /// parameters (band count, drop rate, region index, ...).
    InvalidFault(String),
    /// A view was created with a capacity of zero.
    ZeroViewCapacity,
    /// An operation referenced a node that does not exist.
    UnknownNode(crate::NodeId),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NonFiniteAttribute(v) => {
                write!(f, "attribute value must be finite, got {v}")
            }
            Error::EmptyPartition => write!(f, "a partition must contain at least one slice"),
            Error::InvalidBoundaries(msg) => write!(f, "invalid partition boundaries: {msg}"),
            Error::InvalidFractions(msg) => write!(f, "invalid slice fractions: {msg}"),
            Error::OutOfRange { what, value } => {
                write!(f, "{what} must lie in (0, 1], got {value}")
            }
            Error::InvalidProtocol(msg) => write!(f, "invalid protocol configuration: {msg}"),
            Error::InvalidLatency(msg) => write!(f, "invalid latency model: {msg}"),
            Error::InvalidFault(msg) => write!(f, "invalid network fault: {msg}"),
            Error::ZeroViewCapacity => write!(f, "view capacity must be at least 1"),
            Error::UnknownNode(id) => write!(f, "unknown node {id}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::NonFiniteAttribute(f64::NAN), "finite"),
            (Error::EmptyPartition, "at least one"),
            (
                Error::InvalidBoundaries("0.5 repeated".into()),
                "0.5 repeated",
            ),
            (Error::InvalidFractions("sum 0.9".into()), "sum 0.9"),
            (
                Error::InvalidProtocol("window must be at least 1".into()),
                "protocol",
            ),
            (
                Error::InvalidLatency("uniform range 5-2 is inverted".into()),
                "latency",
            ),
            (
                Error::InvalidFault("at least 2 bands".into()),
                "network fault",
            ),
            (
                Error::OutOfRange {
                    what: "random value",
                    value: 1.5,
                },
                "random value",
            ),
            (Error::ZeroViewCapacity, "capacity"),
            (Error::UnknownNode(NodeId::new(3)), "3"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_: &E) {}
        assert_std_error(&Error::EmptyPartition);
    }
}
