//! The protocol interface: how slicing algorithms plug into a runtime.
//!
//! A slicing protocol is a small state machine driven by two entry points —
//! the periodic *active thread* and the message-triggered *passive thread*
//! (the structure of Figs. 2 and 5 of the paper). Runtimes (the deterministic
//! cycle simulator in `dslice-sim`, the tokio runtime in `dslice-net`) own
//! the node's [`View`] and the transport; the protocol owns its estimate.
//!
//! The split keeps protocol implementations *identical* across runtimes,
//! which is what makes the simulator results transferable.

use crate::{Attribute, NodeId, Partition, ProtocolMsg, SliceIndex, View};
use rand::RngCore;

/// Statistics events a protocol reports to its runtime.
///
/// The paper's Figure 4(c) ("percentage of unsuccessful swaps") is computed
/// from the `Swap*` events.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Event {
    /// A swap proposal (`REQ`) was sent.
    SwapProposed,
    /// A swap was applied locally (either side of the exchange).
    SwapApplied,
    /// A swap message was received but the misplacement predicate no longer
    /// held — the paper's *unsuccessful swap* (§4.5.2).
    SwapUseless,
    /// An `UPD` attribute sample was sent (ranking algorithm).
    UpdateSent,
    /// An attribute sample was folded into the rank estimate.
    SampleAbsorbed,
    /// A swap proposal was abandoned unresolved — the partner never
    /// answered (dead, or it refused the transactional swap). Recorded by
    /// the liveness-tracking ordering variant when it clears a stale
    /// `pending` slot. On the wire path `SwapProposed` totals reconcile as
    /// `proposed = applied-by-initiator + useless + abandoned`; under the
    /// simulator's *atomic* delivery path a refused proposal is un-counted
    /// from `SwapProposed` before the replayed activation abandons it, so
    /// there the gross proposal count is `proposed + abandoned` and each
    /// abandon is one wasted activation.
    SwapAbandoned,
    /// An attribute sample was rejected by outlier-robust admission instead
    /// of being folded into the estimate (defended ranking variants).
    SampleRejected,
}

/// Runtime services offered to a protocol during a callback.
pub trait Context {
    /// Sends a message to another node. Delivery semantics (immediate,
    /// delayed, dropped on churn) belong to the runtime.
    fn send(&mut self, to: NodeId, msg: ProtocolMsg);

    /// The runtime's random number generator (deterministic in simulation).
    fn rng(&mut self) -> &mut dyn RngCore;

    /// Reports a statistics event.
    fn record(&mut self, event: Event);
}

/// A distributed slicing protocol instance, one per node.
///
/// Implementations in `dslice-algorithms`:
/// * `Jk` — the baseline ordering algorithm of Jelasity & Kermarrec.
/// * `ModJk` — the paper's improved ordering algorithm (§4).
/// * `Ranking` — the paper's rank-estimation algorithm (§5).
/// * `SlidingRanking` — the sliding-window variant (§5.3.4).
pub trait SliceProtocol: Send {
    /// This node's identifier.
    fn id(&self) -> NodeId;

    /// This node's (immutable) attribute value.
    fn attribute(&self) -> Attribute;

    /// The node's current normalized-rank estimate in `(0, 1]`: the random
    /// value `r_i` for ordering algorithms, `ℓ_i/g_i` for ranking.
    fn estimate(&self) -> f64;

    /// The value this node publishes in view entries about itself. Defaults
    /// to [`estimate`](Self::estimate); both families publish their estimate.
    fn published_value(&self) -> f64 {
        self.estimate()
    }

    /// The periodic active step (Fig. 2 lines 2–14, Fig. 5 lines 2–16).
    /// Called once per cycle *after* the membership layer refreshed `view`.
    fn on_active(&mut self, view: &View, ctx: &mut dyn Context);

    /// The passive step: a message arrived (Fig. 2 lines 15–19, Fig. 5
    /// lines 17–21).
    fn on_message(&mut self, view: &View, msg: ProtocolMsg, ctx: &mut dyn Context);

    /// The slice this node currently believes it belongs to.
    fn slice(&self, partition: &Partition) -> SliceIndex {
        partition.slice_of(self.estimate())
    }

    /// Transactional swap hook for the *simulator's* delivery semantics.
    ///
    /// The paper's cycle-based evaluation treats a stale swap proposal as
    /// "the message of `i` becomes useless and **the expected swap does not
    /// occur**" (§4.5.2) — an exchange either completes atomically or
    /// aborts, so the multiset of random values is conserved. The simulator
    /// implements that by resolving a delivered `SwapReq` through this hook
    /// with the proposer's *current* value: if the misplacement predicate
    /// holds, the callee adopts `other_value` and returns its own pre-swap
    /// value (which the runtime hands to the proposer via
    /// [`adopt_value`](Self::adopt_value)); otherwise it returns `None` and
    /// nothing changes anywhere.
    ///
    /// Over a real network (`dslice-net`) no such transaction exists: the
    /// raw Fig. 2 message path (`on_message`) runs instead, where
    /// half-completed exchanges can duplicate values — the honest cost of
    /// asynchrony that the paper's simulator abstracts away.
    ///
    /// The default (for estimate-based protocols, which never swap) refuses.
    fn try_atomic_swap(&mut self, _other_attr: Attribute, _other_value: f64) -> Option<f64> {
        None
    }

    /// Second half of the transactional swap: unconditionally adopt the
    /// value returned by the partner's [`try_atomic_swap`](Self::try_atomic_swap).
    /// Default: no-op (estimate-based protocols hold no swappable value).
    fn adopt_value(&mut self, _value: f64) {}

    /// Replaces the slice partition this node targets.
    ///
    /// §3.2 assumes "this partitioning is known by all nodes"; when the
    /// platform re-allocates resources it installs a *new* partitioning,
    /// and the point of rank-based slicing is that nothing else needs to
    /// change: estimates (random values, rank fractions) are
    /// partition-independent, so every node's new slice is just a fresh
    /// lookup. Protocols that *store* the partition (the ranking family
    /// uses it for `j1` boundary targeting) override this to swap it;
    /// the default no-op suits protocols that never consult it.
    fn set_partition(&mut self, _partition: &Partition) {}
}

/// A recording [`Context`] for unit tests and single-node driving.
///
/// Collects sent messages and events; hands out a caller-provided RNG.
#[derive(Debug)]
pub struct MockContext<R: RngCore> {
    /// Messages sent through this context, in order.
    pub sent: Vec<(NodeId, ProtocolMsg)>,
    /// Events recorded through this context, in order.
    pub events: Vec<Event>,
    rng: R,
}

impl<R: RngCore> MockContext<R> {
    /// Creates a mock context around the given RNG.
    pub fn new(rng: R) -> Self {
        MockContext {
            sent: Vec::new(),
            events: Vec::new(),
            rng,
        }
    }

    /// Number of recorded occurrences of `event`.
    pub fn count(&self, event: Event) -> usize {
        self.events.iter().filter(|e| **e == event).count()
    }

    /// Drains and returns the sent messages.
    pub fn take_sent(&mut self) -> Vec<(NodeId, ProtocolMsg)> {
        std::mem::take(&mut self.sent)
    }
}

impl<R: RngCore> Context for MockContext<R> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        self.sent.push((to, msg));
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }

    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixed {
        id: NodeId,
        a: Attribute,
        r: f64,
    }

    impl SliceProtocol for Fixed {
        fn id(&self) -> NodeId {
            self.id
        }
        fn attribute(&self) -> Attribute {
            self.a
        }
        fn estimate(&self) -> f64 {
            self.r
        }
        fn on_active(&mut self, _view: &View, ctx: &mut dyn Context) {
            ctx.record(Event::SwapProposed);
        }
        fn on_message(&mut self, _view: &View, _msg: ProtocolMsg, _ctx: &mut dyn Context) {}
    }

    #[test]
    fn default_slice_uses_estimate() {
        let p = Fixed {
            id: NodeId::new(1),
            a: Attribute::new(5.0).unwrap(),
            r: 0.77,
        };
        let part = Partition::equal(10).unwrap();
        assert_eq!(p.slice(&part).as_usize(), 7);
        assert_eq!(p.published_value(), 0.77);
    }

    #[test]
    fn mock_context_records() {
        let mut ctx = MockContext::new(StdRng::seed_from_u64(1));
        let mut p = Fixed {
            id: NodeId::new(1),
            a: Attribute::new(5.0).unwrap(),
            r: 0.5,
        };
        let view = View::new(4).unwrap();
        p.on_active(&view, &mut ctx);
        assert_eq!(ctx.count(Event::SwapProposed), 1);
        ctx.send(
            NodeId::new(2),
            ProtocolMsg::SwapAck {
                from: NodeId::new(1),
                r: 0.5,
            },
        );
        assert_eq!(ctx.take_sent().len(), 1);
        assert!(ctx.sent.is_empty());
        let _ = ctx.rng().next_u32();
    }
}
