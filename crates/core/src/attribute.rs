//! Attribute values and the total order over nodes.
//!
//! Each node `i` maintains an attribute value `a_i` reflecting its capability
//! according to a specific metric (paper §3.1). Attribute values "might have
//! an arbitrary skewed distribution"; the only structural requirement is a
//! total order, with node identifiers breaking ties:
//!
//! > we let `i` precede `j` if and only if `a_i < a_j`, or `a_i = a_j` and
//! > `i < j`.
//!
//! [`Attribute`] wraps a *finite* `f64` so the order is genuinely total (no
//! NaN), and [`AttributeKey`] packages the `(attribute, id)` lexicographic
//! pair that defines the paper's `A.sequence`.

use crate::{Error, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A finite, totally ordered attribute value.
///
/// Construction rejects NaN and infinities, which makes `Ord` sound.
///
/// ```
/// use dslice_core::Attribute;
/// let a = Attribute::new(50.0).unwrap();
/// let b = Attribute::new(120.0).unwrap();
/// assert!(a < b);
/// assert!(Attribute::new(f64::NAN).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Attribute(f64);

impl Attribute {
    /// Creates an attribute value, rejecting non-finite numbers.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() {
            Ok(Attribute(value))
        } else {
            Err(Error::NonFiniteAttribute(value))
        }
    }

    /// Returns the underlying float.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Eq for Attribute {}

impl PartialOrd for Attribute {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Attribute {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite by construction, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("attributes are finite")
    }
}

impl fmt::Debug for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Attribute {
    type Error = Error;

    fn try_from(value: f64) -> Result<Self> {
        Attribute::new(value)
    }
}

/// The lexicographic `(attribute, id)` key defining the paper's total order.
///
/// `A.sequence` is exactly the sorted order of `AttributeKey`s: node `i`
/// precedes `j` iff `a_i < a_j`, or `a_i == a_j` and `i < j`.
///
/// ```
/// use dslice_core::{Attribute, NodeId};
/// use dslice_core::attribute::AttributeKey;
///
/// let tie_low = AttributeKey::new(NodeId::new(1), Attribute::new(5.0).unwrap());
/// let tie_high = AttributeKey::new(NodeId::new(2), Attribute::new(5.0).unwrap());
/// assert!(tie_low < tie_high); // equal attributes: id breaks the tie
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AttributeKey {
    /// The attribute value (primary sort key).
    pub attribute: Attribute,
    /// The node identifier (tie-breaker).
    pub id: NodeId,
}

impl AttributeKey {
    /// Creates the ordering key for node `id` holding `attribute`.
    pub const fn new(id: NodeId, attribute: Attribute) -> Self {
        AttributeKey { attribute, id }
    }
}

impl PartialOrd for AttributeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttributeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.attribute
            .cmp(&other.attribute)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Evaluates the paper's *misplacement predicate* (§4.2):
/// neighbor `j` is misplaced with respect to `i` iff
/// `(a_j − a_i)(r_j − r_i) < 0`.
///
/// The predicate is symmetric in `i` and `j` and is the trigger condition of
/// the random-value swap in both JK and mod-JK.
///
/// ```
/// use dslice_core::Attribute;
/// use dslice_core::attribute::misplaced;
/// let (a_i, a_j) = (Attribute::new(50.0).unwrap(), Attribute::new(120.0).unwrap());
/// // i has the larger random value but the smaller attribute: misplaced.
/// assert!(misplaced(a_i, 0.85, a_j, 0.10));
/// assert!(!misplaced(a_i, 0.10, a_j, 0.85));
/// ```
pub fn misplaced(a_i: Attribute, r_i: f64, a_j: Attribute, r_j: f64) -> bool {
    (a_j.value() - a_i.value()) * (r_j - r_i) < 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_nan_and_infinities() {
        assert!(matches!(
            Attribute::new(f64::NAN),
            Err(Error::NonFiniteAttribute(v)) if v.is_nan()
        ));
        assert!(Attribute::new(f64::INFINITY).is_err());
        assert!(Attribute::new(f64::NEG_INFINITY).is_err());
        assert!(Attribute::new(0.0).is_ok());
        assert!(Attribute::new(-123.5).is_ok());
    }

    #[test]
    fn try_from_matches_new() {
        assert_eq!(Attribute::try_from(3.0).unwrap().value(), 3.0);
        assert!(Attribute::try_from(f64::NAN).is_err());
    }

    #[test]
    fn total_order_on_values() {
        let small = Attribute::new(-1.0).unwrap();
        let mid = Attribute::new(0.0).unwrap();
        let big = Attribute::new(10.0).unwrap();
        assert!(small < mid && mid < big);
        assert_eq!(mid.cmp(&mid), Ordering::Equal);
    }

    #[test]
    fn key_breaks_ties_by_id() {
        let a = Attribute::new(7.0).unwrap();
        let k1 = AttributeKey::new(NodeId::new(10), a);
        let k2 = AttributeKey::new(NodeId::new(20), a);
        assert!(k1 < k2);
    }

    #[test]
    fn key_orders_primarily_by_attribute() {
        let k_small = AttributeKey::new(NodeId::new(99), Attribute::new(1.0).unwrap());
        let k_big = AttributeKey::new(NodeId::new(1), Attribute::new(2.0).unwrap());
        assert!(k_small < k_big);
    }

    #[test]
    fn misplacement_paper_example() {
        // Paper §4.1: nodes 1,2,3 with a = (50, 120, 25), r = (0.85, 0.1, 0.35).
        let a1 = Attribute::new(50.0).unwrap();
        let a2 = Attribute::new(120.0).unwrap();
        let a3 = Attribute::new(25.0).unwrap();
        let (r1, r2, r3) = (0.85, 0.10, 0.35);
        // 1 and 2 are mutually misplaced (a1 < a2 but r1 > r2).
        assert!(misplaced(a1, r1, a2, r2));
        // 1 and 3: a3 < a1 and r3 < r1 — correctly ordered.
        assert!(!misplaced(a1, r1, a3, r3));
        // 2 and 3: a3 < a2 but r3 > r2 — misplaced.
        assert!(misplaced(a2, r2, a3, r3));
    }

    #[test]
    fn misplacement_with_equal_attribute_or_rank_is_false() {
        let a = Attribute::new(5.0).unwrap();
        assert!(!misplaced(a, 0.2, a, 0.9));
        let b = Attribute::new(9.0).unwrap();
        assert!(!misplaced(a, 0.5, b, 0.5));
    }

    proptest! {
        #[test]
        fn misplacement_is_symmetric(
            ai in -1e6f64..1e6, aj in -1e6f64..1e6,
            ri in 0.0001f64..1.0, rj in 0.0001f64..1.0,
        ) {
            let (ai, aj) = (Attribute::new(ai).unwrap(), Attribute::new(aj).unwrap());
            prop_assert_eq!(misplaced(ai, ri, aj, rj), misplaced(aj, rj, ai, ri));
        }

        #[test]
        fn misplacement_fixed_by_swapping(
            ai in -1e6f64..1e6, aj in -1e6f64..1e6,
            ri in 0.0001f64..1.0, rj in 0.0001f64..1.0,
        ) {
            let (ai, aj) = (Attribute::new(ai).unwrap(), Attribute::new(aj).unwrap());
            if misplaced(ai, ri, aj, rj) {
                // After swapping random values the pair is in order.
                prop_assert!(!misplaced(ai, rj, aj, ri));
            }
        }

        #[test]
        fn key_order_is_total_and_antisymmetric(
            a in -1e3f64..1e3, b in -1e3f64..1e3,
            ia in 0u64..50, ib in 0u64..50,
        ) {
            let ka = AttributeKey::new(NodeId::new(ia), Attribute::new(a).unwrap());
            let kb = AttributeKey::new(NodeId::new(ib), Attribute::new(b).unwrap());
            match ka.cmp(&kb) {
                Ordering::Less => prop_assert_eq!(kb.cmp(&ka), Ordering::Greater),
                Ordering::Greater => prop_assert_eq!(kb.cmp(&ka), Ordering::Less),
                Ordering::Equal => {
                    prop_assert_eq!(ka.id, kb.id);
                    prop_assert_eq!(ka.attribute, kb.attribute);
                }
            }
        }
    }
}
