//! Protocol messages.
//!
//! One enum covers every message of the paper:
//!
//! * `SwapReq` / `SwapAck` — the `(REQ, r_i, a_i)` / `(ACK, r_i)` pair of the
//!   ordering algorithms (Fig. 2, lines 9–10 and 15–16).
//! * `Update` — the one-way `(UPD, a_i)` message of the ranking algorithm
//!   (Fig. 5, lines 13–14).
//! * `ViewReq` / `ViewAck` — the `(REQ′, N)` / `(ACK′, N)` pair of the
//!   Cyclon-variant membership procedure (Fig. 3). The simulator performs
//!   view exchanges atomically, but the network runtime ships them as real
//!   messages.
//!
//! All variants are `serde`-serializable so `dslice-net` can put them on the
//! wire unchanged.

use crate::{Attribute, NodeId, ViewEntry};
use serde::{Deserialize, Serialize};

/// A message between two protocol instances.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProtocolMsg {
    /// Ordering algorithms: `send(REQ, r_i, a_i) to j` — a swap proposal
    /// carrying the sender's random value and attribute.
    SwapReq {
        /// The proposing node `i`.
        from: NodeId,
        /// The sender's random value `r_i` at send time.
        r: f64,
        /// The sender's attribute value `a_i`.
        a: Attribute,
    },
    /// Ordering algorithms: `send(ACK, r_i) to j` — the responder's random
    /// value *before* it applied the swap.
    SwapAck {
        /// The responding node.
        from: NodeId,
        /// The responder's pre-swap random value.
        r: f64,
    },
    /// Ranking algorithm: one-way `send(UPD, a_i)` — an attribute sample.
    Update {
        /// The sampling source.
        from: NodeId,
        /// The sender's attribute value.
        a: Attribute,
    },
    /// Membership: `send(REQ′, N_i \ {e_j} ∪ {⟨i,0,a_i,r_i⟩})`.
    ViewReq {
        /// The shuffling node.
        from: NodeId,
        /// The view entries offered to the peer.
        entries: Vec<ViewEntry>,
    },
    /// Membership: `send(ACK′, N_i)` — the peer's view in return.
    ViewAck {
        /// The responding node.
        from: NodeId,
        /// The responder's view entries.
        entries: Vec<ViewEntry>,
    },
}

impl ProtocolMsg {
    /// The sender of the message.
    pub fn from(&self) -> NodeId {
        match self {
            ProtocolMsg::SwapReq { from, .. }
            | ProtocolMsg::SwapAck { from, .. }
            | ProtocolMsg::Update { from, .. }
            | ProtocolMsg::ViewReq { from, .. }
            | ProtocolMsg::ViewAck { from, .. } => *from,
        }
    }

    /// A short static label for statistics and traces.
    pub fn kind(&self) -> MsgKind {
        match self {
            ProtocolMsg::SwapReq { .. } => MsgKind::SwapReq,
            ProtocolMsg::SwapAck { .. } => MsgKind::SwapAck,
            ProtocolMsg::Update { .. } => MsgKind::Update,
            ProtocolMsg::ViewReq { .. } => MsgKind::ViewReq,
            ProtocolMsg::ViewAck { .. } => MsgKind::ViewAck,
        }
    }

    /// Whether this message participates in a request/reply exchange whose
    /// payload can go stale in transit (the concurrency-sensitive messages
    /// of §4.5.2). `Update` payloads are attribute values, which never
    /// change, so they are immune by construction (§5, "Concurrency
    /// side-effect").
    pub fn staleness_sensitive(&self) -> bool {
        matches!(
            self,
            ProtocolMsg::SwapReq { .. } | ProtocolMsg::SwapAck { .. }
        )
    }
}

/// Message kinds, used as statistics keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MsgKind {
    /// Swap proposal (ordering algorithms).
    SwapReq,
    /// Swap acknowledgment (ordering algorithms).
    SwapAck,
    /// One-way attribute sample (ranking algorithm).
    Update,
    /// View shuffle request (membership).
    ViewReq,
    /// View shuffle reply (membership).
    ViewAck,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    #[test]
    fn from_extracts_sender() {
        let msgs = [
            ProtocolMsg::SwapReq {
                from: NodeId::new(1),
                r: 0.5,
                a: attr(10.0),
            },
            ProtocolMsg::SwapAck {
                from: NodeId::new(2),
                r: 0.25,
            },
            ProtocolMsg::Update {
                from: NodeId::new(3),
                a: attr(7.0),
            },
            ProtocolMsg::ViewReq {
                from: NodeId::new(4),
                entries: vec![],
            },
            ProtocolMsg::ViewAck {
                from: NodeId::new(5),
                entries: vec![],
            },
        ];
        let senders: Vec<u64> = msgs.iter().map(|m| m.from().as_u64()).collect();
        assert_eq!(senders, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn kinds_are_distinct() {
        let req = ProtocolMsg::SwapReq {
            from: NodeId::new(1),
            r: 0.5,
            a: attr(1.0),
        };
        let upd = ProtocolMsg::Update {
            from: NodeId::new(1),
            a: attr(1.0),
        };
        assert_eq!(req.kind(), MsgKind::SwapReq);
        assert_eq!(upd.kind(), MsgKind::Update);
        assert_ne!(req.kind(), upd.kind());
    }

    #[test]
    fn staleness_sensitivity_matches_paper() {
        let swap = ProtocolMsg::SwapReq {
            from: NodeId::new(1),
            r: 0.5,
            a: attr(1.0),
        };
        let ack = ProtocolMsg::SwapAck {
            from: NodeId::new(1),
            r: 0.5,
        };
        let upd = ProtocolMsg::Update {
            from: NodeId::new(1),
            a: attr(1.0),
        };
        assert!(swap.staleness_sensitive());
        assert!(ack.staleness_sensitive());
        assert!(!upd.staleness_sensitive());
    }
}
