//! # dslice-aggregation
//!
//! Gossip-based aggregation: the substrate behind two systems the paper's
//! related-work section positions slicing against, rebuilt here so the
//! benchmark harness can compare them under identical conditions.
//!
//! * **Push–pull averaging** (Jelasity, Montresor, Babaoglu, *Gossip-based
//!   aggregation in large dynamic networks*, ACM TOCS 2005 — ref \[12\] of
//!   the paper). Every node holds a local estimate; each cycle it exchanges
//!   the estimate with a random peer and both adopt the pairwise average.
//!   The estimate variance provably drops by an expected factor of
//!   `1/(2√e)` per cycle, so the network mean is learned in `O(log n)`
//!   cycles.
//! * **Epidemic min/max** — the same exchange with `min`/`max` in place of
//!   the average; converges to the exact extremum in `O(log n)` cycles.
//! * **Network-size estimation** — the inverse-of-the-average trick from
//!   ref \[12\]: one initiator holds `1.0`, everyone else `0.0`; the common
//!   average converges to `1/n`, so `n ≈ 1/estimate`. Slicing deliberately
//!   *avoids* needing `n` (§2 of the paper criticizes quantile-search
//!   methods for requiring it); this module exists to make that comparison
//!   concrete.
//! * **φ-quantile search** (Kempe, Dobra, Gehrke, FOCS 2003 — ref \[13\]) —
//!   the related-work baseline: find the attribute value of rank `⌈φ·n⌉` by
//!   bisection, with each probe's rank measured by gossip-averaging an
//!   indicator. [`quantile`] reproduces the paper's §2 argument that this
//!   answers a *global* question (one value) rather than the slicing
//!   problem's *per-node* question.
//!
//! Everything is deterministic given a seeded RNG, and every exchange is
//! message-shaped (initiate → respond → absorb), so the same state machines
//! run under the in-crate round driver ([`swarm::Swarm`]), the cycle
//! simulator, or a real transport.
//!
//! ## Example: learn the network mean in a handful of rounds
//!
//! ```
//! use dslice_aggregation::{AggregateKind, Swarm};
//!
//! let locals: Vec<f64> = (0..100).map(|i| i as f64).collect();
//! let mut swarm = Swarm::new(AggregateKind::Average, &locals, 42);
//! while swarm.variance() > 1e-9 {
//!     swarm.round();
//! }
//! // Every node now holds the exact mean, 49.5.
//! assert!(swarm.values().iter().all(|v| (v - 49.5).abs() < 1e-4));
//! assert!(swarm.rounds() < 40, "O(log n) convergence");
//! ```
//!
//! ## Example: find the median by gossip (ref \[13\])
//!
//! ```
//! use dslice_aggregation::{exact_quantile, QuantileSearch};
//!
//! let values: Vec<f64> = (1..=999).map(|i| i as f64).collect();
//! let result = QuantileSearch::new(0.5).run(&values, 7);
//! assert!((result.value - exact_quantile(&values, 0.5)).abs() < 5.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod epoch;
pub mod overlay_swarm;
pub mod protocol;
pub mod quantile;
pub mod size;
pub mod swarm;

pub use epoch::EpochedAggregator;
pub use overlay_swarm::OverlaySwarm;
pub use protocol::{AggregateKind, AggregationState, ExchangeOutcome};
pub use quantile::{exact_quantile, QuantileResult, QuantileSearch};
pub use size::{estimate_size, SizeEstimator};
pub use swarm::Swarm;
