//! Epoch management for continuous aggregation (ref \[12\], §4.2 "restart").
//!
//! A single averaging instance converges once and then goes stale: nodes
//! that join later, or whose local values change, are never reflected. Ref
//! \[12\] runs aggregation in fixed-length *epochs* — every `T` rounds the
//! estimate is archived and the state reseeded from the current local value.
//! The archived value is the freshest *completed* estimate, so consumers
//! never observe a half-converged one.
//!
//! The slicing paper's ranking algorithm solves the analogous staleness
//! problem with its sliding window (§5.3.4); the bench harness contrasts the
//! two mechanisms under the same churn.

use crate::protocol::{AggregateKind, AggregationState};

/// An aggregation state that restarts itself every `epoch_len` rounds.
#[derive(Clone, Copy, Debug)]
pub struct EpochedAggregator {
    state: AggregationState,
    epoch_len: usize,
    round_in_epoch: usize,
    epoch: u64,
    completed: Option<f64>,
}

impl EpochedAggregator {
    /// Creates an epoched aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(kind: AggregateKind, initial: f64, epoch_len: usize) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        EpochedAggregator {
            state: AggregationState::new(kind, initial),
            epoch_len,
            round_in_epoch: 0,
            epoch: 0,
            completed: None,
        }
    }

    /// The live (possibly half-converged) estimate of the current epoch.
    pub fn live_value(&self) -> f64 {
        self.state.value()
    }

    /// The estimate of the last *completed* epoch, if any.
    pub fn completed_value(&self) -> Option<f64> {
        self.completed
    }

    /// The current epoch number (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rounds elapsed within the current epoch.
    pub fn round_in_epoch(&self) -> usize {
        self.round_in_epoch
    }

    /// Mutable access to the state for driving exchanges.
    pub fn state_mut(&mut self) -> &mut AggregationState {
        &mut self.state
    }

    /// Advances the epoch clock by one round. When the epoch completes, the
    /// live value is archived and the state reseeded with `fresh_local`
    /// (the node's *current* local reading — this is how value changes and
    /// churn enter the next estimate).
    ///
    /// Returns `true` when a new epoch just started.
    pub fn tick(&mut self, fresh_local: f64) -> bool {
        self.round_in_epoch += 1;
        if self.round_in_epoch >= self.epoch_len {
            self.completed = Some(self.state.value());
            self.state.reset(fresh_local);
            self.round_in_epoch = 0;
            self.epoch += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::Swarm;

    #[test]
    fn completes_epochs_on_schedule() {
        let mut agg = EpochedAggregator::new(AggregateKind::Average, 5.0, 3);
        assert_eq!(agg.epoch(), 0);
        assert!(agg.completed_value().is_none());
        assert!(!agg.tick(5.0));
        assert!(!agg.tick(5.0));
        assert!(agg.tick(5.0), "third tick completes the epoch");
        assert_eq!(agg.epoch(), 1);
        assert_eq!(agg.completed_value(), Some(5.0));
        assert_eq!(agg.round_in_epoch(), 0);
    }

    #[test]
    fn restart_picks_up_changed_local_value() {
        let mut agg = EpochedAggregator::new(AggregateKind::Average, 5.0, 2);
        agg.tick(5.0);
        agg.tick(9.0); // epoch completes; reseed with the *new* local value
        assert_eq!(agg.live_value(), 9.0);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_length_panics() {
        let _ = EpochedAggregator::new(AggregateKind::Average, 1.0, 0);
    }

    #[test]
    fn epoched_population_tracks_a_moving_mean() {
        // Population values drift upward between epochs; the completed
        // estimate of each later epoch must track the drift.
        let n = 128;
        let epoch_len = 25;
        let mut locals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut swarm = Swarm::new(AggregateKind::Average, &locals, 11);
        let mut epochs: Vec<f64> = Vec::new();
        for epoch in 0..3 {
            for _ in 0..epoch_len {
                swarm.round();
            }
            // Archive the converged estimate (all nodes agree by now).
            let estimate = swarm.mean();
            epochs.push(estimate);
            // Drift: everyone's local value grows by 100 between epochs.
            for v in &mut locals {
                *v += 100.0;
            }
            swarm.reset(&locals);
            let _ = epoch;
        }
        assert!((epochs[0] - 63.5).abs() < 1e-6);
        assert!((epochs[1] - 163.5).abs() < 1e-6);
        assert!((epochs[2] - 263.5).abs() < 1e-6);
    }
}
