//! A deterministic round driver for a population of aggregation instances.
//!
//! Ref \[12\]'s analysis assumes each node initiates one push–pull exchange
//! per cycle with a uniformly random peer. [`Swarm`] reproduces exactly that
//! model (it plays the role PeerSim plays for the slicing protocols), so the
//! measured variance-reduction rate can be compared against the paper's
//! `1/(2√e)` prediction.

use crate::protocol::{AggregateKind, AggregationState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A population of aggregation states driven in synchronous rounds.
#[derive(Debug, Clone)]
pub struct Swarm {
    nodes: Vec<AggregationState>,
    kind: AggregateKind,
    rng: StdRng,
    rounds: usize,
}

impl Swarm {
    /// Creates a swarm computing `kind` over `initial` (one value per node).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty — an aggregate over nothing is
    /// meaningless and indicates a harness bug.
    pub fn new(kind: AggregateKind, initial: &[f64], seed: u64) -> Self {
        assert!(!initial.is_empty(), "swarm needs at least one node");
        Swarm {
            nodes: initial
                .iter()
                .map(|&v| AggregationState::new(kind, v))
                .collect(),
            kind,
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the swarm is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The aggregate kind.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// Current per-node estimates.
    pub fn values(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.value()).collect()
    }

    /// Mean of the current estimates. Under averaging this is invariant
    /// (mass conservation).
    pub fn mean(&self) -> f64 {
        self.nodes.iter().map(|n| n.value()).sum::<f64>() / self.nodes.len() as f64
    }

    /// Empirical variance of the current estimates — ref \[12\]'s progress
    /// measure.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.nodes
            .iter()
            .map(|n| {
                let d = n.value() - mean;
                d * d
            })
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Runs one synchronous round: every node, in random order, initiates a
    /// push–pull exchange with a uniformly random other node.
    pub fn round(&mut self) {
        let n = self.nodes.len();
        if n < 2 {
            self.rounds += 1;
            return;
        }
        // Random initiation order (Fisher–Yates), as in the cycle simulator.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            let mut j = self.rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let pushed = self.nodes[i].push_value();
            let reply = self.nodes[j].respond(pushed);
            self.nodes[i].absorb_reply(reply);
        }
        self.rounds += 1;
    }

    /// Runs rounds until the variance drops below `target` or `max_rounds`
    /// elapse; returns the number of rounds executed.
    pub fn run_until_variance(&mut self, target: f64, max_rounds: usize) -> usize {
        let mut executed = 0;
        while executed < max_rounds && self.variance() > target {
            self.round();
            executed += 1;
        }
        executed
    }

    /// Replaces every node's value (epoch restart across the population).
    pub fn reset(&mut self, initial: &[f64]) {
        assert_eq!(initial.len(), self.nodes.len(), "population size changed");
        for (node, &v) in self.nodes.iter_mut().zip(initial) {
            node.reset(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn averaging_converges_to_the_mean() {
        let values = ramp(256);
        let exact = AggregateKind::Average
            .exact(values.iter().copied())
            .unwrap();
        let mut swarm = Swarm::new(AggregateKind::Average, &values, 1);
        for _ in 0..40 {
            swarm.round();
        }
        for v in swarm.values() {
            assert!(
                (v - exact).abs() < 1e-6,
                "estimate {v} far from exact mean {exact}"
            );
        }
    }

    #[test]
    fn averaging_conserves_the_mean_every_round() {
        let values = ramp(128);
        let mut swarm = Swarm::new(AggregateKind::Average, &values, 2);
        let m0 = swarm.mean();
        for _ in 0..20 {
            swarm.round();
            assert!((swarm.mean() - m0).abs() < 1e-9 * m0.abs().max(1.0));
        }
    }

    #[test]
    fn variance_reduction_is_roughly_geometric() {
        // Ref [12]: expected variance drops by a factor ~1/(2√e) ≈ 0.303 per
        // round. Allow generous slack but insist on clear geometric decay.
        let values = ramp(4096);
        let mut swarm = Swarm::new(AggregateKind::Average, &values, 3);
        let v0 = swarm.variance();
        for _ in 0..10 {
            swarm.round();
        }
        let v10 = swarm.variance();
        let per_round = (v10 / v0).powf(0.1);
        assert!(
            per_round < 0.5,
            "variance shrank only {per_round:.3}× per round (expected ≈ 0.30)"
        );
    }

    #[test]
    fn min_and_max_converge_exactly() {
        let values = ramp(512);
        for (kind, exact) in [(AggregateKind::Min, 0.0), (AggregateKind::Max, 511.0)] {
            let mut swarm = Swarm::new(kind, &values, 4);
            for _ in 0..30 {
                swarm.round();
            }
            for v in swarm.values() {
                assert_eq!(v, exact, "{kind} failed to spread");
            }
        }
    }

    #[test]
    fn extrema_spread_in_logarithmic_rounds() {
        // Epidemic doubling: the number of holders of the extremum at least
        // doubles in expectation each round, so 512 nodes need ~9–20 rounds.
        let values = ramp(512);
        let mut swarm = Swarm::new(AggregateKind::Max, &values, 5);
        let mut rounds = 0;
        while swarm.values().iter().any(|&v| v != 511.0) {
            swarm.round();
            rounds += 1;
            assert!(rounds < 40, "max took more than 40 rounds to spread");
        }
        assert!(rounds >= 5, "spread implausibly fast ({rounds} rounds)");
    }

    #[test]
    fn run_until_variance_stops_at_target() {
        let values = ramp(256);
        let mut swarm = Swarm::new(AggregateKind::Average, &values, 6);
        let executed = swarm.run_until_variance(1e-3, 200);
        assert!(swarm.variance() <= 1e-3);
        assert!(executed > 0 && executed < 200);
    }

    #[test]
    fn reset_restores_initial_dispersion() {
        let values = ramp(64);
        let mut swarm = Swarm::new(AggregateKind::Average, &values, 7);
        for _ in 0..20 {
            swarm.round();
        }
        assert!(swarm.variance() < 1e-6);
        swarm.reset(&values);
        assert!(swarm.variance() > 100.0);
    }

    #[test]
    fn single_node_swarm_is_a_fixpoint() {
        let mut swarm = Swarm::new(AggregateKind::Average, &[42.0], 8);
        swarm.round();
        assert_eq!(swarm.values(), vec![42.0]);
        assert_eq!(swarm.rounds(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_swarm_panics() {
        let _ = Swarm::new(AggregateKind::Average, &[], 9);
    }

    #[test]
    fn deterministic_given_seed() {
        let values = ramp(100);
        let mut a = Swarm::new(AggregateKind::Average, &values, 10);
        let mut b = Swarm::new(AggregateKind::Average, &values, 10);
        for _ in 0..5 {
            a.round();
            b.round();
        }
        assert_eq!(a.values(), b.values());
    }
}
