//! Gossip-based φ-quantile search (ref \[13\], Kempe–Dobra–Gehrke style).
//!
//! The related-work baseline the paper positions slicing against (§2): find
//! the attribute value whose normalized rank is φ. The classic gossip
//! construction is bisection over the attribute range, with each probe's
//! rank measured by averaging an indicator (`1` if `a_i ≤ candidate`, else
//! `0`) across the network — the averaged value *is* the candidate's
//! normalized rank.
//!
//! The contrast the paper draws, which this module makes measurable:
//!
//! * quantile search answers a **global** question — *one* value per run,
//!   costing a full averaging epoch per probe — whereas slicing answers a
//!   **per-node** question (every node learns its slice) in a single
//!   continuously-running protocol;
//! * the bisection needs the global attribute *range* to start from, and
//!   rank-to-count conversions need a *size estimate* (§2: "use an
//!   approximation of the system size"), both of which are extra gossip
//!   machinery slicing never needs.
//!
//! [`QuantileSearch::run`] counts every gossip round it consumes so benches
//! can put the two approaches on the same cost axis.

use crate::protocol::AggregateKind;
use crate::swarm::Swarm;

/// Configuration for a φ-quantile search.
#[derive(Clone, Copy, Debug)]
pub struct QuantileSearch {
    /// Target normalized rank φ ∈ (0, 1].
    pub phi: f64,
    /// Stop once the probe's measured rank is within this distance of φ.
    pub tolerance: f64,
    /// Averaging rounds per probe (per ref \[12\], ~`log n` rounds give all
    /// nodes the epoch mean to high precision).
    pub rounds_per_probe: usize,
    /// Bisection probe budget.
    pub max_probes: usize,
}

impl QuantileSearch {
    /// A search for `phi` with defaults tuned for 10³–10⁴ node populations.
    pub fn new(phi: f64) -> Self {
        QuantileSearch {
            phi,
            tolerance: 0.005,
            rounds_per_probe: 30,
            max_probes: 40,
        }
    }
}

/// Outcome of a quantile search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantileResult {
    /// The attribute value the search settled on.
    pub value: f64,
    /// The measured normalized rank of `value` (should be ≈ φ).
    pub measured_rank: f64,
    /// Bisection probes executed.
    pub probes: usize,
    /// Total gossip rounds consumed (range discovery + all probes).
    pub gossip_rounds: usize,
}

impl QuantileSearch {
    /// Runs the search over a static population holding `values`.
    ///
    /// The measured rank is read from a *single* node (node 0) after each
    /// probe epoch — the information any one participant actually has —
    /// rather than from the exact population average.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `phi` is outside `(0, 1]`.
    pub fn run(&self, values: &[f64], seed: u64) -> QuantileResult {
        assert!(!values.is_empty(), "quantile of an empty population");
        assert!(
            self.phi > 0.0 && self.phi <= 1.0,
            "phi must lie in (0, 1], got {}",
            self.phi
        );
        let mut gossip_rounds = 0;

        // Phase 1: discover the attribute range by epidemic min/max. The
        // extremum reaches every node in O(log n) rounds; we run the same
        // budget as an averaging epoch and read node 0's values.
        let mut min_swarm = Swarm::new(AggregateKind::Min, values, seed ^ 0x5151);
        let mut max_swarm = Swarm::new(AggregateKind::Max, values, seed ^ 0xA3A3);
        for _ in 0..self.rounds_per_probe {
            min_swarm.round();
            max_swarm.round();
        }
        gossip_rounds += 2 * self.rounds_per_probe;
        let mut lo = min_swarm.values()[0];
        let mut hi = max_swarm.values()[0];

        // Phase 2: bisection, one indicator-averaging epoch per probe.
        let mut best = (lo, 0.0, f64::INFINITY); // (value, rank, |rank − φ|)
        let mut probes = 0;
        while probes < self.max_probes {
            let candidate = (lo + hi) / 2.0;
            let indicator: Vec<f64> = values
                .iter()
                .map(|&v| if v <= candidate { 1.0 } else { 0.0 })
                .collect();
            let mut swarm = Swarm::new(
                AggregateKind::Average,
                &indicator,
                seed.wrapping_add(probes as u64),
            );
            for _ in 0..self.rounds_per_probe {
                swarm.round();
            }
            gossip_rounds += self.rounds_per_probe;
            let rank = swarm.values()[0];
            probes += 1;

            let err = (rank - self.phi).abs();
            if err < best.2 {
                best = (candidate, rank, err);
            }
            if err <= self.tolerance {
                break;
            }
            if rank < self.phi {
                lo = candidate;
            } else {
                hi = candidate;
            }
            if (hi - lo).abs() < f64::EPSILON * lo.abs().max(1.0) {
                break; // range exhausted (discrete value distributions)
            }
        }

        QuantileResult {
            value: best.0,
            measured_rank: best.1,
            probes,
            gossip_rounds,
        }
    }
}

/// The exact φ-quantile of a value multiset (the `⌈φ·n⌉`-th smallest),
/// for verifying search results.
pub fn exact_quantile(values: &[f64], phi: f64) -> f64 {
    assert!(!values.is_empty());
    assert!(phi > 0.0 && phi <= 1.0);
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let k = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_quantile_on_small_sets() {
        let vs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(exact_quantile(&vs, 0.25), 10.0);
        assert_eq!(exact_quantile(&vs, 0.5), 20.0);
        assert_eq!(exact_quantile(&vs, 0.75), 30.0);
        assert_eq!(exact_quantile(&vs, 1.0), 40.0);
        assert_eq!(exact_quantile(&vs, 0.01), 10.0);
    }

    #[test]
    fn finds_the_median_of_a_uniform_population() {
        let mut rng = StdRng::seed_from_u64(21);
        let values: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let result = QuantileSearch::new(0.5).run(&values, 9);
        let exact = exact_quantile(&values, 0.5);
        assert!(
            (result.value - exact).abs() < 2.0,
            "search {:.2} vs exact {exact:.2}",
            result.value
        );
        assert!((result.measured_rank - 0.5).abs() < 0.01);
    }

    #[test]
    fn finds_tail_quantiles_of_a_skewed_population() {
        // Heavy-tailed (Pareto-like) values: the regime slicing targets.
        let mut rng = StdRng::seed_from_u64(22);
        let values: Vec<f64> = (0..2000)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0001..1.0);
                u.powf(-1.0 / 1.5) // Pareto(α = 1.5)
            })
            .collect();
        for phi in [0.1, 0.9] {
            let result = QuantileSearch::new(phi).run(&values, 23);
            assert!(
                (result.measured_rank - phi).abs() < 0.02,
                "phi = {phi}: measured rank {:.3}",
                result.measured_rank
            );
        }
    }

    #[test]
    fn counts_gossip_rounds() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let search = QuantileSearch::new(0.5);
        let result = search.run(&values, 5);
        // 2 epochs for range discovery + ≥1 probe epoch.
        assert!(result.gossip_rounds >= 3 * search.rounds_per_probe);
        assert!(result.probes >= 1);
        assert_eq!(
            result.gossip_rounds,
            (2 + result.probes) * search.rounds_per_probe
        );
    }

    #[test]
    fn respects_the_probe_budget() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let search = QuantileSearch {
            phi: 0.5,
            tolerance: 0.0, // unreachable: forces budget exhaustion
            rounds_per_probe: 10,
            max_probes: 5,
        };
        let result = search.run(&values, 6);
        assert_eq!(result.probes, 5);
    }

    #[test]
    fn constant_population_terminates() {
        let values = vec![7.0; 50];
        let result = QuantileSearch::new(0.5).run(&values, 8);
        assert_eq!(result.value, 7.0);
        assert!((result.measured_rank - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let _ = QuantileSearch::new(0.5).run(&[], 1);
    }

    #[test]
    #[should_panic(expected = "phi must lie")]
    fn bad_phi_panics() {
        let _ = QuantileSearch::new(1.5).run(&[1.0], 1);
    }
}
