//! Network-size estimation by inverse averaging (ref \[12\], §"COUNT").
//!
//! One designated initiator seeds its estimate with `1.0`, every other node
//! with `0.0`. Push–pull averaging drives every estimate to the common mean
//! `1/n`, so each node recovers `n ≈ 1/estimate` — without any node ever
//! enumerating the network.
//!
//! §2 of the slicing paper uses the *need* for such a size estimate as the
//! argument against quantile-search approaches ("solutions to the quantile
//! search problem … use an approximation of the system size"); this module
//! makes that dependency explicit and measurable.

use crate::protocol::{AggregateKind, AggregationState};

/// One node's participation in a size-estimation instance.
#[derive(Clone, Copy, Debug)]
pub struct SizeEstimator {
    state: AggregationState,
    initiator: bool,
}

impl SizeEstimator {
    /// Creates the estimator; exactly one node per instance must pass
    /// `initiator = true`.
    pub fn new(initiator: bool) -> Self {
        SizeEstimator {
            state: AggregationState::new(AggregateKind::Average, if initiator { 1.0 } else { 0.0 }),
            initiator,
        }
    }

    /// Whether this node seeded the counting token.
    pub fn is_initiator(&self) -> bool {
        self.initiator
    }

    /// Access to the underlying averaging state (drive it like any other
    /// aggregation exchange).
    pub fn state_mut(&mut self) -> &mut AggregationState {
        &mut self.state
    }

    /// The raw averaged token value (converges to `1/n`).
    pub fn token(&self) -> f64 {
        self.state.value()
    }

    /// The size estimate `1/token`, or `None` while the token is still zero
    /// (the counting wave has not reached this node yet).
    pub fn estimate(&self) -> Option<f64> {
        let t = self.state.value();
        if t > 0.0 {
            Some(1.0 / t)
        } else {
            None
        }
    }

    /// Restarts the epoch, reseeding the token.
    pub fn reset(&mut self) {
        self.state.reset(if self.initiator { 1.0 } else { 0.0 });
    }
}

/// Runs a complete size-estimation epoch over `n` nodes for `rounds`
/// synchronous rounds and returns every node's final estimate.
///
/// A convenience harness for tests, benches and the CLI; real deployments
/// drive [`SizeEstimator`] exchange by exchange.
pub fn estimate_size(n: usize, rounds: usize, seed: u64) -> Vec<Option<f64>> {
    use crate::swarm::Swarm;
    assert!(n >= 1);
    let mut initial = vec![0.0; n];
    initial[0] = 1.0;
    let mut swarm = Swarm::new(AggregateKind::Average, &initial, seed);
    for _ in 0..rounds {
        swarm.round();
    }
    swarm
        .values()
        .into_iter()
        .map(|t| if t > 0.0 { Some(1.0 / t) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initiator_starts_at_one_others_at_zero() {
        assert_eq!(SizeEstimator::new(true).token(), 1.0);
        assert_eq!(SizeEstimator::new(false).token(), 0.0);
        assert_eq!(SizeEstimator::new(true).estimate(), Some(1.0));
        assert_eq!(SizeEstimator::new(false).estimate(), None);
    }

    #[test]
    fn pairwise_exchange_halves_the_token() {
        let mut a = SizeEstimator::new(true);
        let mut b = SizeEstimator::new(false);
        let pushed = a.state_mut().push_value();
        let reply = b.state_mut().respond(pushed);
        a.state_mut().absorb_reply(reply);
        assert_eq!(a.token(), 0.5);
        assert_eq!(b.token(), 0.5);
        assert_eq!(a.estimate(), Some(2.0));
        assert_eq!(b.estimate(), Some(2.0));
    }

    #[test]
    fn full_epoch_estimates_network_size() {
        for &n in &[64usize, 500, 1000] {
            let estimates = estimate_size(n, 40, 42);
            for (i, est) in estimates.iter().enumerate() {
                let est = est.unwrap_or_else(|| panic!("node {i} never reached"));
                let rel = (est - n as f64).abs() / n as f64;
                assert!(
                    rel < 0.05,
                    "n = {n}: node {i} estimated {est:.1} (rel err {rel:.3})"
                );
            }
        }
    }

    #[test]
    fn estimate_tightens_with_rounds() {
        let n = 512;
        let worst = |rounds: usize| -> f64 {
            estimate_size(n, rounds, 7)
                .into_iter()
                .map(|e| e.map_or(f64::INFINITY, |e| (e - n as f64).abs() / n as f64))
                .fold(0.0f64, f64::max)
        };
        let coarse = worst(10);
        let fine = worst(40);
        assert!(
            fine < coarse,
            "40 rounds ({fine:.4}) not tighter than 10 ({coarse:.4})"
        );
        assert!(fine < 0.01);
    }

    #[test]
    fn reset_reseeds_the_token() {
        let mut a = SizeEstimator::new(true);
        a.state_mut().respond(0.0); // halves the token
        assert_eq!(a.token(), 0.5);
        a.reset();
        assert_eq!(a.token(), 1.0);
        let mut b = SizeEstimator::new(false);
        b.state_mut().respond(1.0);
        b.reset();
        assert_eq!(b.token(), 0.0);
    }

    #[test]
    fn singleton_network_estimates_one() {
        let estimates = estimate_size(1, 5, 3);
        assert_eq!(estimates, vec![Some(1.0)]);
    }
}
