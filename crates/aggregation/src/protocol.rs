//! The push–pull aggregation state machine of ref \[12\].
//!
//! One [`AggregationState`] lives on each node. An exchange is two messages:
//! the initiator pushes its current estimate, the responder replies with its
//! own pre-merge estimate, and both apply the same merge function. For the
//! average function this conserves the global sum exactly (*mass
//! conservation*), which is the invariant all of ref \[12\]'s correctness
//! rests on; the property tests pin it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which aggregate a gossip instance computes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Pairwise averaging: converges to the network mean.
    Average,
    /// Pairwise minimum: epidemic spread of the global minimum.
    Min,
    /// Pairwise maximum: epidemic spread of the global maximum.
    Max,
}

impl AggregateKind {
    /// The merge function applied by *both* ends of an exchange.
    ///
    /// Returns the post-merge value given the two pre-merge values. The
    /// function is symmetric, so both ends compute the same result.
    pub fn merge(self, a: f64, b: f64) -> f64 {
        match self {
            AggregateKind::Average => (a + b) / 2.0,
            AggregateKind::Min => a.min(b),
            AggregateKind::Max => a.max(b),
        }
    }

    /// The exact aggregate of a value multiset, for convergence checks.
    pub fn exact<I: IntoIterator<Item = f64>>(self, values: I) -> Option<f64> {
        let mut count = 0usize;
        let mut acc: Option<f64> = None;
        for v in values {
            count += 1;
            acc = Some(match (self, acc) {
                (AggregateKind::Average, Some(s)) => s + v,
                (AggregateKind::Min, Some(s)) => s.min(v),
                (AggregateKind::Max, Some(s)) => s.max(v),
                (_, None) => v,
            });
        }
        match self {
            AggregateKind::Average => acc.map(|s| s / count as f64),
            _ => acc,
        }
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateKind::Average => write!(f, "average"),
            AggregateKind::Min => write!(f, "min"),
            AggregateKind::Max => write!(f, "max"),
        }
    }
}

/// What happened during one exchange, as seen by the initiator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExchangeOutcome {
    /// The initiator's estimate before the exchange.
    pub before: f64,
    /// The initiator's estimate after the exchange.
    pub after: f64,
}

impl ExchangeOutcome {
    /// Absolute change effected by the exchange.
    pub fn delta(&self) -> f64 {
        (self.after - self.before).abs()
    }
}

/// Per-node aggregation state: the current estimate and the merge function.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AggregationState {
    kind: AggregateKind,
    value: f64,
}

impl AggregationState {
    /// Creates a state seeded with this node's local value.
    pub fn new(kind: AggregateKind, initial: f64) -> Self {
        AggregationState {
            kind,
            value: initial,
        }
    }

    /// The current estimate.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The aggregate being computed.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// Resets the estimate to a fresh local value (epoch restart).
    pub fn reset(&mut self, initial: f64) {
        self.value = initial;
    }

    /// Initiator side: the value to push to the chosen peer.
    pub fn push_value(&self) -> f64 {
        self.value
    }

    /// Responder side: absorb the pushed value, reply with the pre-merge
    /// local estimate (the *pull* half).
    pub fn respond(&mut self, pushed: f64) -> f64 {
        let reply = self.value;
        self.value = self.kind.merge(self.value, pushed);
        reply
    }

    /// Initiator side: absorb the responder's reply, completing the
    /// push–pull exchange.
    pub fn absorb_reply(&mut self, reply: f64) -> ExchangeOutcome {
        let before = self.value;
        self.value = self.kind.merge(self.value, reply);
        ExchangeOutcome {
            before,
            after: self.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_functions() {
        assert_eq!(AggregateKind::Average.merge(1.0, 3.0), 2.0);
        assert_eq!(AggregateKind::Min.merge(1.0, 3.0), 1.0);
        assert_eq!(AggregateKind::Max.merge(1.0, 3.0), 3.0);
    }

    #[test]
    fn exact_aggregates() {
        let vs = [3.0, 1.0, 2.0];
        assert_eq!(AggregateKind::Average.exact(vs), Some(2.0));
        assert_eq!(AggregateKind::Min.exact(vs), Some(1.0));
        assert_eq!(AggregateKind::Max.exact(vs), Some(3.0));
        assert_eq!(AggregateKind::Average.exact(std::iter::empty()), None);
    }

    #[test]
    fn push_pull_exchange_averages_both_ends() {
        let mut a = AggregationState::new(AggregateKind::Average, 10.0);
        let mut b = AggregationState::new(AggregateKind::Average, 2.0);
        let pushed = a.push_value();
        let reply = b.respond(pushed);
        let outcome = a.absorb_reply(reply);
        assert_eq!(a.value(), 6.0);
        assert_eq!(b.value(), 6.0);
        assert_eq!(outcome.before, 10.0);
        assert_eq!(outcome.after, 6.0);
        assert_eq!(outcome.delta(), 4.0);
    }

    #[test]
    fn reset_restarts_epoch() {
        let mut s = AggregationState::new(AggregateKind::Average, 1.0);
        s.respond(3.0);
        assert_ne!(s.value(), 1.0);
        s.reset(5.0);
        assert_eq!(s.value(), 5.0);
    }

    proptest! {
        /// Mass conservation: an averaging exchange never changes the sum of
        /// the two estimates (up to float rounding).
        #[test]
        fn averaging_conserves_mass(x in -1e9f64..1e9, y in -1e9f64..1e9) {
            let mut a = AggregationState::new(AggregateKind::Average, x);
            let mut b = AggregationState::new(AggregateKind::Average, y);
            let reply = b.respond(a.push_value());
            a.absorb_reply(reply);
            let sum_before = x + y;
            let sum_after = a.value() + b.value();
            prop_assert!((sum_before - sum_after).abs() <= 1e-6 * sum_before.abs().max(1.0));
        }

        /// Min/max exchanges are monotone in the right direction and
        /// idempotent at the fixpoint.
        #[test]
        fn extrema_are_monotone(x in -1e9f64..1e9, y in -1e9f64..1e9) {
            for kind in [AggregateKind::Min, AggregateKind::Max] {
                let mut a = AggregationState::new(kind, x);
                let mut b = AggregationState::new(kind, y);
                let reply = b.respond(a.push_value());
                a.absorb_reply(reply);
                let expected = kind.merge(x, y);
                prop_assert_eq!(a.value(), expected);
                prop_assert_eq!(b.value(), expected);
                // Re-exchanging changes nothing.
                let mut a2 = a;
                let mut b2 = b;
                let reply = b2.respond(a2.push_value());
                a2.absorb_reply(reply);
                prop_assert_eq!(a2.value(), expected);
                prop_assert_eq!(b2.value(), expected);
            }
        }

        /// The merge is symmetric: both ends land on the same value.
        #[test]
        fn exchange_is_symmetric(x in -1e9f64..1e9, y in -1e9f64..1e9) {
            for kind in [AggregateKind::Average, AggregateKind::Min, AggregateKind::Max] {
                let mut a = AggregationState::new(kind, x);
                let mut b = AggregationState::new(kind, y);
                let reply = b.respond(a.push_value());
                a.absorb_reply(reply);
                prop_assert_eq!(a.value(), b.value());
            }
        }
    }
}
