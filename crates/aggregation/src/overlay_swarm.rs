//! Aggregation over a real peer-sampling overlay.
//!
//! [`Swarm`](crate::Swarm) pairs nodes uniformly at random — the idealized
//! model of ref \[12\]'s analysis. Deployments don't have that oracle: they
//! pick partners from a bounded gossip view. Ref \[12\] reports (and the
//! slicing paper leans on, via Fig. 6(b)) that a good peer-sampling overlay
//! is *as good as* the oracle for aggregation; [`OverlaySwarm`] makes that
//! claim testable here by running the same push–pull exchanges with
//! partners drawn from per-node [`PeerSampler`] views.
//!
//! The pairing quality of the substrate is now part of the convergence
//! rate: Cyclon's swap-based shuffling approaches the oracle's
//! `1/(2√e)`-per-round variance decay, while a poorly-mixed overlay slows
//! it down — the same ordering the `ablation-sampler-ranking` table shows
//! for the slicing protocols.

use crate::protocol::{AggregateKind, AggregationState};
use dslice_core::{Attribute, NodeId, ViewEntry};
use dslice_gossip::{build_sampler, PeerSampler, SamplerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A population of aggregation states whose gossip partners come from a
/// peer-sampling overlay rather than a uniform oracle.
pub struct OverlaySwarm {
    nodes: Vec<AggregationState>,
    samplers: Vec<Box<dyn PeerSampler>>,
    rng: StdRng,
    rounds: usize,
}

impl std::fmt::Debug for OverlaySwarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlaySwarm")
            .field("population", &self.nodes.len())
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl OverlaySwarm {
    /// Builds the swarm: one aggregation state and one sampler per node,
    /// views bootstrapped with `bootstrap_degree` random neighbors each.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `view_size` is zero.
    pub fn new(
        kind: AggregateKind,
        initial: &[f64],
        sampler: SamplerKind,
        view_size: usize,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "swarm needs at least one node");
        let n = initial.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samplers: Vec<Box<dyn PeerSampler>> = (0..n)
            .map(|i| {
                build_sampler(sampler, NodeId::new(i as u64), view_size)
                    .expect("non-zero view size")
            })
            .collect();
        // Bootstrap: 3 random neighbors each (or fewer in tiny swarms).
        let degree = 3.min(n.saturating_sub(1)).min(view_size);
        for (i, sampler) in samplers.iter_mut().enumerate() {
            let mut entries = Vec::new();
            while entries.len() < degree {
                let j = rng.gen_range(0..n);
                if j != i
                    && !entries
                        .iter()
                        .any(|e: &ViewEntry| e.id == NodeId::new(j as u64))
                {
                    entries.push(Self::descriptor(j, initial[j]));
                }
            }
            sampler.bootstrap(&entries);
        }
        OverlaySwarm {
            nodes: initial
                .iter()
                .map(|&v| AggregationState::new(kind, v))
                .collect(),
            samplers,
            rng,
            rounds: 0,
        }
    }

    fn descriptor(i: usize, value: f64) -> ViewEntry {
        ViewEntry::new(
            NodeId::new(i as u64),
            Attribute::new(i as f64).expect("finite"),
            value,
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the swarm is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Current estimates.
    pub fn values(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.value()).collect()
    }

    /// Empirical variance of the estimates.
    pub fn variance(&self) -> f64 {
        let mean: f64 = self.nodes.iter().map(|n| n.value()).sum::<f64>() / self.nodes.len() as f64;
        self.nodes
            .iter()
            .map(|n| {
                let d = n.value() - mean;
                d * d
            })
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// One synchronous round: every node (random order) first runs its
    /// membership exchange, then a push–pull aggregation exchange with a
    /// partner drawn from its *view*.
    pub fn round(&mut self) {
        let n = self.nodes.len();
        if n < 2 {
            self.rounds += 1;
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            // Membership step (atomic, as in the cycle simulator).
            let self_entry = Self::descriptor(i, self.nodes[i].value());
            if let Some(req) = self.samplers[i].initiate(self_entry, &mut self.rng) {
                let p = req.partner.as_u64() as usize;
                let partner_entry = Self::descriptor(p, self.nodes[p].value());
                let reply = self.samplers[p].handle_request(
                    partner_entry,
                    NodeId::new(i as u64),
                    &req.entries,
                );
                self.samplers[i].handle_reply(req.partner, &reply);
            }
            // Aggregation exchange with a view partner.
            let Some(partner) = self.samplers[i].view().random(&mut self.rng).map(|e| e.id) else {
                continue;
            };
            let p = partner.as_u64() as usize;
            let pushed = self.nodes[i].push_value();
            let reply = self.nodes[p].respond(pushed);
            self.nodes[i].absorb_reply(reply);
        }
        self.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn converges_on_cyclon_views() {
        let values = ramp(256);
        let exact = AggregateKind::Average
            .exact(values.iter().copied())
            .unwrap();
        let mut swarm =
            OverlaySwarm::new(AggregateKind::Average, &values, SamplerKind::Cyclon, 8, 1);
        for _ in 0..60 {
            swarm.round();
        }
        for v in swarm.values() {
            assert!(
                (v - exact).abs() < 0.5,
                "estimate {v} far from mean {exact} on Cyclon views"
            );
        }
    }

    #[test]
    fn cyclon_views_approach_oracle_rate() {
        // Variance decay on Cyclon views within 3× of the uniform oracle's
        // (ref [12]'s overlay-vs-oracle claim, Fig. 6(b)'s analogue).
        use crate::swarm::Swarm;
        let values = ramp(512);
        let mut oracle = Swarm::new(AggregateKind::Average, &values, 2);
        let mut overlay =
            OverlaySwarm::new(AggregateKind::Average, &values, SamplerKind::Cyclon, 8, 2);
        for _ in 0..15 {
            oracle.round();
            overlay.round();
        }
        let v0 = values
            .iter()
            .map(|v| (v - 255.5) * (v - 255.5))
            .sum::<f64>()
            / 512.0;
        let oracle_rate = (oracle.variance() / v0).powf(1.0 / 15.0);
        let overlay_rate = (overlay.variance() / v0).powf(1.0 / 15.0);
        assert!(
            overlay_rate < oracle_rate.powf(1.0 / 3.0),
            "Cyclon-view decay {overlay_rate:.3}/round too far from oracle {oracle_rate:.3}"
        );
    }

    #[test]
    fn min_spreads_on_lpbcast_views() {
        let values = ramp(200);
        let mut swarm = OverlaySwarm::new(AggregateKind::Min, &values, SamplerKind::Lpbcast, 8, 3);
        for _ in 0..80 {
            swarm.round();
        }
        let holders = swarm.values().iter().filter(|&&v| v == 0.0).count();
        assert!(
            holders > 180,
            "min reached only {holders}/200 nodes over Lpbcast"
        );
    }

    #[test]
    fn single_node_is_a_fixpoint() {
        let mut swarm =
            OverlaySwarm::new(AggregateKind::Average, &[7.0], SamplerKind::Cyclon, 4, 4);
        swarm.round();
        assert_eq!(swarm.values(), vec![7.0]);
        assert_eq!(swarm.len(), 1);
        assert!(!swarm.is_empty());
    }
}
