//! Golden determinism: a scenario report is pure simulated state, so the
//! same program must produce **byte-identical** JSON across reruns and at
//! every shard count. This is the invariant that makes the committed
//! goldens under `docs/scenarios/goldens/` (and `scenario_matrix --check`)
//! meaningful.

use dslice_obs::TraceConfig;
use dslice_scenario::{Scenario, ScenarioReport};
use dslice_sim::{AttackerSpec, AttributeDistribution, LatencyModel, ProtocolKind};

/// A small but eventful program touching every event kind, sized so the
/// full determinism matrix stays fast in debug builds.
fn eventful(seed: u64) -> Scenario {
    Scenario::new("determinism-probe")
        .population(160)
        .view_size(8)
        .slices(5)
        .seed(seed)
        .sample_every(7)
        .for_cycles(70)
        .at_cycle(10)
        .flash_crowd(0.25)
        .at_cycle(20)
        .regional_failure(0.15)
        .at_cycle(25)
        .shift_distribution(AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 1.5,
        })
        .at_cycle(30)
        .leave(12)
        .join(12)
        .at_cycle(40)
        .lying_nodes(0.1, 6.0)
        .at_cycle(45)
        .lying_boundary_nodes(0.05, 4.0)
        .at_cycle(50)
        .mass_leave(0.1)
        .at_cycle(55)
        .repartition(3)
        .at_cycle(58)
        .partition_bands_until(2, 66)
        .at_cycle(59)
        .region_latency(1, LatencyModel::Uniform { min: 1, max: 2 })
        .at_cycle(60)
        .drop_rate(0.05)
        .at_cycle(62)
        .adaptive_liars(0.05, AttackerSpec::Colluder { target: 0.9 })
}

#[test]
fn reports_are_byte_identical_across_reruns() {
    let a = eventful(42).run().unwrap().to_json();
    let b = eventful(42).run().unwrap().to_json();
    assert_eq!(a, b, "same program, same seed, same bytes");
    // And a different seed genuinely changes the run (the test would be
    // vacuous if the report ignored the simulation).
    let c = eventful(43).run().unwrap().to_json();
    assert_ne!(a, c, "a different seed must change the trajectory");
}

#[test]
fn reports_are_byte_identical_at_every_shard_count() {
    let reference = eventful(7).run().unwrap().to_json();
    for shards in [2usize, 3, 4, 8] {
        let mut cfg = eventful(7).config().clone();
        cfg.shards = shards;
        let sharded = eventful(7).with_config(cfg).run().unwrap().to_json();
        assert_eq!(
            reference, sharded,
            "shard count {shards} leaked into the report"
        );
    }
}

#[test]
fn ordering_protocol_reports_are_deterministic_too() {
    let probe = || {
        eventful(11)
            .with_protocol(ProtocolKind::ModJk)
            .view_size(12)
    };
    let a = probe().run().unwrap().to_json();
    let b = probe().run().unwrap().to_json();
    assert_eq!(a, b);
    let mut cfg = probe().config().clone();
    cfg.shards = 4;
    let c = probe().with_config(cfg).run().unwrap().to_json();
    assert_eq!(a, c);
}

#[test]
fn defended_protocol_variants_are_shard_invariant() {
    // The hardened variants carry extra per-node state (decay totals,
    // raw-value windows, strike books); none of it may observe the shard
    // layout.
    let variants = [
        ProtocolKind::decay(0.998),
        ProtocolKind::SlidingRanking { window: 512 },
        ProtocolKind::RobustRanking { window: 64 },
        ProtocolKind::ModJkLive {
            strike_limit: 2,
            cooldown: 64,
        },
    ];
    for kind in variants {
        let probe = || {
            let view = match kind {
                ProtocolKind::ModJkLive { .. } => 12,
                _ => 8,
            };
            eventful(19).with_protocol(kind).view_size(view)
        };
        let reference = probe().run().unwrap().to_json();
        for shards in [2usize, 4, 8] {
            let mut cfg = probe().config().clone();
            cfg.shards = shards;
            let sharded = probe().with_config(cfg).run().unwrap().to_json();
            assert_eq!(
                reference, sharded,
                "{kind:?}: shard count {shards} leaked into the report"
            );
        }
    }
}

#[test]
fn tracing_is_invisible_in_the_report_bytes() {
    // The flight recorder must be pure observation: a traced run's report —
    // the same bytes the goldens pin — is identical to the untraced run's,
    // at the default sampling and at a sparse stride, and at shard count 4.
    let plain = eventful(42).run().unwrap().to_json();
    let (traced, recorder) = eventful(42).run_traced(TraceConfig::on()).unwrap();
    assert_eq!(plain, traced.to_json(), "tracing perturbed the report");
    assert!(!recorder.is_empty(), "the recorder must actually record");
    let (sampled, sparse) = eventful(42)
        .run_traced(TraceConfig::on().with_sample_every(8))
        .unwrap();
    assert_eq!(
        plain,
        sampled.to_json(),
        "sampled tracing perturbed the report"
    );
    assert!(
        sparse.recorded() < recorder.recorded(),
        "sampling must thin the event stream"
    );
    let mut cfg = eventful(42).config().clone();
    cfg.shards = 4;
    let (sharded, _) = eventful(42)
        .with_config(cfg)
        .run_traced(TraceConfig::on())
        .unwrap();
    assert_eq!(plain, sharded.to_json(), "traced sharded run diverged");
}

#[test]
fn metrics_registries_are_deterministic_across_shard_counts() {
    // The exported registry — histograms included — derives from simulated
    // state only, so its Prometheus rendering must be byte-identical at
    // shard counts 1/2/4/8.
    let reference = eventful(7)
        .run()
        .unwrap()
        .metrics_registry()
        .to_prometheus();
    assert!(dslice_obs::validate_prometheus(&reference).unwrap() > 20);
    for shards in [2usize, 4, 8] {
        let mut cfg = eventful(7).config().clone();
        cfg.shards = shards;
        let sharded = eventful(7)
            .with_config(cfg)
            .run()
            .unwrap()
            .metrics_registry()
            .to_prometheus();
        assert_eq!(
            reference, sharded,
            "shard count {shards} leaked into metrics"
        );
    }
}

/// Full-size, so `#[ignore]`d out of tier-1 like the library shard sweep:
/// a *traced* library run must reproduce its committed golden byte-for-byte.
#[test]
#[ignore = "full library scenario against the committed golden; run in release"]
fn traced_library_run_matches_the_committed_golden_bytes() {
    use dslice_scenario::library;
    let golden_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/scenarios/goldens");
    for scenario in library::all() {
        let name = scenario.name().to_string();
        let golden = std::fs::read_to_string(format!("{golden_dir}/{name}.json"))
            .unwrap_or_else(|e| panic!("golden for `{name}`: {e}"));
        let (report, _) = scenario.run_traced(TraceConfig::on()).unwrap();
        assert_eq!(
            report.to_json(),
            golden,
            "`{name}`: tracing broke the golden"
        );
    }
}

#[test]
fn reports_roundtrip_losslessly_through_the_golden_format() {
    let report = eventful(42).run().unwrap();
    let parsed = ScenarioReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(
        parsed.to_json(),
        report.to_json(),
        "re-serialization is stable"
    );
}

#[test]
fn compiled_schedules_are_byte_identical_across_reruns() {
    let a = serde_json::to_string_pretty(&eventful(0).compile().unwrap()).unwrap();
    let b = serde_json::to_string_pretty(&eventful(0).compile().unwrap()).unwrap();
    assert_eq!(a, b);
}

/// The committed goldens are written by a shard-1 run; every library
/// scenario must reproduce them byte-for-byte at 2/4/8 shards too.
/// Full-size library runs are slow in debug builds, so this sweep is
/// `#[ignore]`d out of tier-1 and exercised by CI's release-mode
/// ignored-test job.
#[test]
#[ignore = "full library at three shard counts; run in release"]
fn library_reports_are_shard_invariant() {
    use dslice_scenario::library;
    for scenario in library::all() {
        let name = scenario.name().to_string();
        let reference = scenario.run().unwrap().to_json();
        for shards in [2usize, 4, 8] {
            let rerun = library::all()
                .into_iter()
                .find(|s| s.name() == name)
                .expect("library is stable");
            let mut cfg = rerun.config().clone();
            cfg.shards = shards;
            let sharded = rerun.with_config(cfg).run().unwrap().to_json();
            assert_eq!(
                reference, sharded,
                "`{name}`: shard count {shards} leaked into the report"
            );
        }
    }
}
