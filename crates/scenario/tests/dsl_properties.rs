//! Property tests for the scenario DSL compiler: any random event program
//! that compiles yields a schedule that is cycle-ordered, preserves
//! authoring order within a cycle, and carries a population projection that
//! exactly replays the event arithmetic without ever emptying the system.

use dslice_scenario::{population_delta, Scenario, ScenarioEvent};
use dslice_sim::{AttackerSpec, AttributeDistribution};
use proptest::prelude::*;

/// Strategy for one random (but individually valid) scenario event.
fn event_strategy() -> impl Strategy<Value = ScenarioEvent> {
    prop_oneof![
        (1usize..25).prop_map(|count| ScenarioEvent::Join { count }),
        (1usize..6).prop_map(|count| ScenarioEvent::Leave { count }),
        (0.05f64..1.5).prop_map(|fraction| ScenarioEvent::FlashCrowd { fraction }),
        (0.05f64..0.35).prop_map(|fraction| ScenarioEvent::MassLeave { fraction }),
        (0.05f64..0.35).prop_map(|fraction| ScenarioEvent::RegionalFailure { fraction }),
        prop_oneof![
            Just(AttributeDistribution::Uniform { lo: 0.0, hi: 1.0 }),
            Just(AttributeDistribution::Pareto {
                scale: 1.0,
                shape: 1.5
            }),
            Just(AttributeDistribution::Exponential { rate: 0.5 }),
        ]
        .prop_map(|distribution| ScenarioEvent::ShiftDistribution { distribution }),
        (0.05f64..0.9, 1.0f64..20.0).prop_map(|(fraction, inflation)| {
            ScenarioEvent::Corrupt {
                fraction,
                inflation,
            }
        }),
        (0.05f64..0.9, 1.0f64..20.0).prop_map(|(fraction, inflation)| {
            ScenarioEvent::CorruptBoundary {
                fraction,
                inflation,
            }
        }),
        (1usize..9).prop_map(|slices| ScenarioEvent::Repartition { slices }),
        (2usize..5).prop_map(|bands| ScenarioEvent::PartitionBands {
            bands,
            heal_at: None,
        }),
        Just(ScenarioEvent::Heal),
        (0.0f64..0.5).prop_map(|rate| ScenarioEvent::DropRate { rate }),
        (0.05f64..0.9, 0.5f64..0.99).prop_map(|(fraction, target)| {
            ScenarioEvent::AdaptiveLiars {
                fraction,
                attacker: AttackerSpec::Colluder { target },
            }
        }),
    ]
}

/// Builds a scenario from a random program of `(cycle, event)` pairs.
fn program(n: usize, cycles: usize, events: &[(usize, ScenarioEvent)]) -> Scenario {
    let mut s = Scenario::new("prop")
        .population(n)
        .view_size(6)
        .slices(4)
        .for_cycles(cycles);
    for (cycle, event) in events {
        s = s.at_cycle(*cycle);
        s = match event.clone() {
            ScenarioEvent::Join { count } => s.join(count),
            ScenarioEvent::Leave { count } => s.leave(count),
            ScenarioEvent::FlashCrowd { fraction } => s.flash_crowd(fraction),
            ScenarioEvent::MassLeave { fraction } => s.mass_leave(fraction),
            ScenarioEvent::RegionalFailure { fraction } => s.regional_failure(fraction),
            ScenarioEvent::ShiftDistribution { distribution } => s.shift_distribution(distribution),
            ScenarioEvent::Corrupt {
                fraction,
                inflation,
            } => s.lying_nodes(fraction, inflation),
            ScenarioEvent::CorruptBoundary {
                fraction,
                inflation,
            } => s.lying_boundary_nodes(fraction, inflation),
            ScenarioEvent::Repartition { slices } => s.repartition(slices),
            ScenarioEvent::PartitionBands { bands, heal_at } => match heal_at {
                Some(at) => s.partition_bands_until(bands, at),
                None => s.partition_bands(bands),
            },
            ScenarioEvent::Heal => s.heal(),
            ScenarioEvent::DropRate { rate } => s.drop_rate(rate),
            ScenarioEvent::RegionLatency { region, model } => s.region_latency(region, model),
            ScenarioEvent::AdaptiveLiars { fraction, attacker } => {
                s.adaptive_liars(fraction, attacker)
            }
        };
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever program compiles is cycle-ordered, in range, complete (no
    /// event dropped or invented), authoring-order-stable within a cycle,
    /// and population-consistent: the projection replays the exact
    /// per-cycle arithmetic and never lets the system empty out.
    #[test]
    fn compiled_schedules_are_ordered_and_population_consistent(
        n in 30usize..150,
        cycles in 10usize..60,
        raw in proptest::collection::vec((1usize..60, event_strategy()), 0..12),
    ) {
        let scenario = program(n, cycles, &raw);
        let Ok(schedule) = scenario.compile() else {
            // Rejections (out-of-range cycles, emptying programs) are a
            // valid outcome; the properties below govern what *compiles*.
            return Ok(());
        };

        // Cycle-ordered, in range, nothing lost or invented.
        prop_assert_eq!(schedule.events.len(), raw.len());
        for pair in schedule.events.windows(2) {
            prop_assert!(pair[0].cycle <= pair[1].cycle, "schedule out of order");
        }
        for te in &schedule.events {
            prop_assert!((1..=cycles).contains(&te.cycle), "cycle {} out of range", te.cycle);
        }
        // Stable within a cycle: per-cycle subsequences preserve authoring
        // order.
        for cycle in 1..=cycles {
            let authored: Vec<&ScenarioEvent> =
                raw.iter().filter(|(c, _)| *c == cycle).map(|(_, e)| e).collect();
            let compiled: Vec<&ScenarioEvent> = schedule
                .events
                .iter()
                .filter(|te| te.cycle == cycle)
                .map(|te| &te.event)
                .collect();
            prop_assert_eq!(authored, compiled, "cycle {} reordered", cycle);
        }

        // Population consistency: replay the arithmetic per cycle group.
        let mut pop = n;
        let mut replayed = Vec::new();
        let mut i = 0;
        while i < schedule.events.len() {
            let cycle = schedule.events[i].cycle;
            let n0 = pop;
            let mut remaining = n0;
            let mut joined = 0usize;
            while i < schedule.events.len() && schedule.events[i].cycle == cycle {
                let (leave, join) = population_delta(&schedule.events[i].event, n0);
                prop_assert!(
                    leave < remaining,
                    "compiled schedule empties the population at cycle {}", cycle
                );
                remaining -= leave;
                joined += join;
                i += 1;
            }
            let after = remaining + joined;
            if after != pop {
                replayed.push((cycle, after));
            }
            pop = after;
        }
        let projection: Vec<(usize, usize)> =
            schedule.projection.iter().map(|p| (p.cycle, p.n)).collect();
        prop_assert_eq!(projection, replayed, "projection disagrees with replay");
        prop_assert_eq!(schedule.final_population(), pop);
        prop_assert!(schedule.min_population() >= 1);

        // Compilation is a pure function of the program.
        prop_assert_eq!(scenario.compile().unwrap(), schedule);
    }

    /// `fraction_count` matches the churn-schedule convention for every
    /// population and fraction: zero iff the fraction is non-positive (or
    /// the population empty), otherwise `round(n·f)` floored at 1.
    #[test]
    fn fraction_count_is_rounded_and_floored(
        n in 0usize..10_000,
        fraction in -0.5f64..2.0,
    ) {
        let count = dslice_scenario::fraction_count(n, fraction);
        if fraction <= 0.0 || n == 0 {
            prop_assert_eq!(count, 0);
        } else {
            let expected = ((n as f64 * fraction).round() as usize).max(1);
            prop_assert_eq!(count, expected);
        }
    }
}
