//! [`ScriptedChurn`]: the churn model a compiled [`Schedule`] drives.
//!
//! The engine's churn phase asks its model for a plan at the start of every
//! cycle; this model answers from the script. All fraction counts are taken
//! against the **start-of-cycle population** and departures are capped so at
//! least one node survives — the same arithmetic
//! [`Scenario::compile`](crate::Scenario::compile) used for its population
//! projection, so a compiled schedule executes exactly as projected.
//!
//! Leaver selection and regional-failure band placement draw from the RNG
//! the engine hands in (its sequential stream), so scripted runs stay
//! byte-identical at any shard count.

use crate::dsl::{fraction_count, ScenarioEvent, Schedule};
use dslice_core::{Attribute, NodeId};
use dslice_sim::churn::{ChurnModel, ChurnPlan};
use dslice_sim::AttributeDistribution;
use rand::Rng;
use std::collections::BTreeMap;

/// Executes the churn events of a compiled [`Schedule`].
#[derive(Clone, Debug)]
pub struct ScriptedChurn {
    /// Churn events per cycle, in authoring order.
    by_cycle: BTreeMap<usize, Vec<ScenarioEvent>>,
    /// Current joiner distribution (shift events replace it).
    distribution: AttributeDistribution,
}

impl ScriptedChurn {
    /// Builds the model from a compiled schedule and the base joiner
    /// distribution. Control events in the schedule are ignored — the
    /// scenario runner applies those to the engine directly.
    pub fn new(schedule: &Schedule, base_distribution: AttributeDistribution) -> Self {
        let mut by_cycle: BTreeMap<usize, Vec<ScenarioEvent>> = BTreeMap::new();
        for te in &schedule.events {
            if te.event.is_churn() {
                by_cycle.entry(te.cycle).or_default().push(te.event.clone());
            }
        }
        ScriptedChurn {
            by_cycle,
            distribution: base_distribution,
        }
    }

    /// The joiner distribution currently in effect.
    pub fn distribution(&self) -> &AttributeDistribution {
        &self.distribution
    }

    /// Draws `count` distinct leavers from `candidates`, removing them.
    fn draw_leavers(
        candidates: &mut Vec<(NodeId, Attribute)>,
        count: usize,
        rng: &mut dyn rand::RngCore,
        out: &mut Vec<NodeId>,
    ) {
        let count = count.min(candidates.len());
        if count == 0 {
            return;
        }
        let mut picked = rand::seq::index::sample(&mut *rng, candidates.len(), count)
            .into_iter()
            .collect::<Vec<usize>>();
        // Remove highest indices first so earlier picks stay valid.
        picked.sort_unstable_by(|a, b| b.cmp(a));
        for idx in picked {
            out.push(candidates.swap_remove(idx).0);
        }
    }
}

impl ChurnModel for ScriptedChurn {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        let Some(events) = self.by_cycle.get(&cycle).cloned() else {
            return ChurnPlan::quiet();
        };
        let n0 = population.len();
        let mut candidates: Vec<(NodeId, Attribute)> = population.to_vec();
        let mut leavers: Vec<NodeId> = Vec::new();
        let mut joiners: Vec<Attribute> = Vec::new();

        for event in events {
            match event {
                ScenarioEvent::Join { count } => {
                    for _ in 0..count {
                        joiners.push(self.distribution.sample(&mut *rng));
                    }
                }
                ScenarioEvent::Leave { count } => {
                    let count = count.min(candidates.len().saturating_sub(1));
                    Self::draw_leavers(&mut candidates, count, rng, &mut leavers);
                }
                ScenarioEvent::FlashCrowd { fraction } => {
                    for _ in 0..fraction_count(n0, fraction) {
                        joiners.push(self.distribution.sample(&mut *rng));
                    }
                }
                ScenarioEvent::MassLeave { fraction } => {
                    let count =
                        fraction_count(n0, fraction).min(candidates.len().saturating_sub(1));
                    Self::draw_leavers(&mut candidates, count, rng, &mut leavers);
                }
                ScenarioEvent::RegionalFailure { fraction } => {
                    let count =
                        fraction_count(n0, fraction).min(candidates.len().saturating_sub(1));
                    if count == 0 {
                        continue;
                    }
                    // The failing "region" is a contiguous attribute band:
                    // sort the survivors by (attribute, id) and crash a
                    // random window of `count` of them together.
                    candidates
                        .sort_unstable_by(|(ia, aa), (ib, ab)| aa.cmp(ab).then_with(|| ia.cmp(ib)));
                    let start = rng.gen_range(0..=candidates.len() - count);
                    for (id, _) in candidates.drain(start..start + count) {
                        leavers.push(id);
                    }
                }
                ScenarioEvent::ShiftDistribution { distribution } => {
                    self.distribution = distribution;
                }
                // Control events are the runner's business.
                ScenarioEvent::Corrupt { .. }
                | ScenarioEvent::CorruptBoundary { .. }
                | ScenarioEvent::Repartition { .. }
                | ScenarioEvent::PartitionBands { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::DropRate { .. }
                | ScenarioEvent::RegionLatency { .. }
                | ScenarioEvent::AdaptiveLiars { .. } => {}
            }
        }
        ChurnPlan { leavers, joiners }
    }

    fn label(&self) -> &'static str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> Vec<(NodeId, Attribute)> {
        (0..n)
            .map(|i| (NodeId::new(i as u64), Attribute::new(i as f64).unwrap()))
            .collect()
    }

    fn model(s: Scenario) -> ScriptedChurn {
        let schedule = s.compile().unwrap();
        ScriptedChurn::new(&schedule, AttributeDistribution::default())
    }

    #[test]
    fn quiet_outside_scripted_cycles() {
        let mut m = model(
            Scenario::new("t")
                .population(100)
                .for_cycles(50)
                .at_cycle(10)
                .join(5),
        );
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.plan(9, &population(100), &mut rng).is_quiet());
        assert!(m.plan(11, &population(100), &mut rng).is_quiet());
        let plan = m.plan(10, &population(100), &mut rng);
        assert_eq!(plan.joiners.len(), 5);
        assert!(plan.leavers.is_empty());
    }

    #[test]
    fn same_cycle_events_compose_without_overlap() {
        let mut m = model(
            Scenario::new("t")
                .population(100)
                .for_cycles(50)
                .at_cycle(10)
                .leave(30)
                .mass_leave(0.3) // 30 of the original 100
                .join(5),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let plan = m.plan(10, &population(100), &mut rng);
        assert_eq!(plan.leavers.len(), 60);
        assert_eq!(plan.joiners.len(), 5);
        // All leavers distinct.
        let mut ids: Vec<u64> = plan.leavers.iter().map(|id| id.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60);
    }

    #[test]
    fn regional_failure_crashes_a_contiguous_attribute_band() {
        let mut m = model(
            Scenario::new("t")
                .population(100)
                .for_cycles(50)
                .at_cycle(10)
                .regional_failure(0.2),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let plan = m.plan(10, &population(100), &mut rng);
        assert_eq!(plan.leavers.len(), 20);
        // Attributes equal ids here, so a contiguous band means consecutive ids.
        let mut ids: Vec<u64> = plan.leavers.iter().map(|id| id.as_u64()).collect();
        ids.sort_unstable();
        assert_eq!(
            ids.last().unwrap() - ids.first().unwrap(),
            19,
            "leavers {ids:?} must form one contiguous attribute band"
        );
    }

    #[test]
    fn shift_changes_joiner_distribution_for_later_cycles() {
        let shifted = AttributeDistribution::Uniform { lo: 1e6, hi: 2e6 };
        let mut m = model(
            Scenario::new("t")
                .population(100)
                .for_cycles(50)
                .at_cycle(10)
                .join(3)
                .at_cycle(20)
                .shift_distribution(shifted)
                .at_cycle(30)
                .join(3),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let before = m.plan(10, &population(100), &mut rng);
        assert!(before.joiners.iter().all(|a| a.value() < 1e6));
        m.plan(20, &population(100), &mut rng);
        let after = m.plan(30, &population(100), &mut rng);
        assert!(after.joiners.iter().all(|a| a.value() >= 1e6));
    }

    #[test]
    fn departures_never_empty_the_population() {
        let mut m = model(
            Scenario::new("t")
                .population(100)
                .for_cycles(50)
                .at_cycle(10)
                .leave(99),
        );
        let mut rng = StdRng::seed_from_u64(5);
        // The engine's real population may be smaller than projected if an
        // outside force shrank it; the cap still holds.
        let plan = m.plan(10, &population(10), &mut rng);
        assert_eq!(plan.leavers.len(), 9, "one survivor at minimum");
    }

    #[test]
    fn plans_are_deterministic_in_the_rng() {
        let build = || {
            model(
                Scenario::new("t")
                    .population(200)
                    .for_cycles(50)
                    .at_cycle(5)
                    .mass_leave(0.25)
                    .flash_crowd(0.1),
            )
        };
        let mut a = build();
        let mut b = build();
        let pa = a.plan(5, &population(200), &mut StdRng::seed_from_u64(9));
        let pb = b.plan(5, &population(200), &mut StdRng::seed_from_u64(9));
        assert_eq!(pa, pb);
    }
}
