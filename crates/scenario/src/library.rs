//! The committed scenario library: every scenario `scenario_matrix` runs,
//! CI pins as a golden, and `docs/SCENARIOS.md` catalogs.
//!
//! Conventions:
//!
//! * names are kebab-case and double as report/golden/markdown file stems;
//! * ranking scenarios use the paper's ranking view size (10), ordering
//!   scenarios the ordering view size (20);
//! * every scenario has a distinct seed, a trajectory sample every 10
//!   cycles, and `time_phases` **off** (reports must be byte-deterministic);
//! * populations are a few hundred nodes — big enough for meaningful
//!   disorder statistics, small enough that the full matrix runs in
//!   seconds in CI.
//!
//! To add a scenario: write a constructor here, add it to [`all`], run
//! `cargo run --release --bin scenario_matrix -- --update` to regenerate
//! the goldens, and document it in `docs/SCENARIOS.md` plus a markdown
//! analysis under `docs/scenarios/` (the matrix's `--check` mode fails CI
//! until the golden exists).

use crate::dsl::Scenario;
use dslice_sim::{AttackerSpec, AttributeDistribution, ProtocolKind};

/// Base shape shared by the ranking-family scenarios.
fn ranking_base(name: &str, n: usize, seed: u64) -> Scenario {
    Scenario::new(name)
        .population(n)
        .view_size(10)
        .slices(10)
        .seed(seed)
        .sample_every(10)
}

/// The control: a static population, no events — the convergence
/// trajectory every dynamic scenario is compared against.
pub fn baseline_static() -> Scenario {
    ranking_base("baseline-static", 600, 101).for_cycles(240)
}

/// A flash crowd doubles the population mid-run: 500 converged nodes are
/// joined by 500 strangers at cycle 120 in a single churn step.
pub fn flash_crowd() -> Scenario {
    ranking_base("flash-crowd", 500, 102)
        .for_cycles(260)
        .at_cycle(120)
        .flash_crowd(1.0)
}

/// A mass departure: 40% of the population leaves at once (uniformly at
/// random) at cycle 140 — uncorrelated, so ranks compress evenly.
pub fn mass_departure() -> Scenario {
    ranking_base("mass-departure", 800, 103)
        .for_cycles(260)
        .at_cycle(140)
        .mass_leave(0.4)
}

/// A correlated regional failure: a contiguous attribute band of 25% of
/// the population — one "data center" of similar-capacity machines —
/// crashes at cycle 130, shifting every survivor's true rank at once.
pub fn regional_failure() -> Scenario {
    ranking_base("regional-failure", 600, 104)
        .for_cycles(260)
        .at_cycle(130)
        .regional_failure(0.25)
}

/// A sustained churn burst: 0.5% of the population is replaced every cycle
/// from cycle 40 through 80 (the paper's burst shape, scripted through the
/// DSL), then the system is left to re-converge.
pub fn churn_burst() -> Scenario {
    let mut s = ranking_base("churn-burst", 600, 105).for_cycles(240);
    for cycle in 40..=80 {
        s = s.at_cycle(cycle).leave(3).join(3);
    }
    s
}

/// The joiner distribution shifts from uniform to heavy-tailed Pareto at
/// cycle 100, and rolling churn (4% every 4 cycles) gradually rotates the
/// population onto the new shape — the rank estimate must keep tracking a
/// moving attribute landscape.
pub fn shifting_distribution() -> Scenario {
    let mut s = ranking_base("shifting-distribution", 600, 106)
        .for_cycles(300)
        .at_cycle(100)
        .shift_distribution(AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 1.5,
        });
    for cycle in (104..=200).step_by(4) {
        s = s.at_cycle(cycle).leave(24).join(24);
    }
    s
}

/// The adversarial scenario for the ranking family: at cycle 120, 20% of a
/// converged population starts claiming 10× its rank and poisoning its
/// outgoing attribute samples.
pub fn lying_nodes() -> Scenario {
    ranking_base("lying-nodes", 600, 107)
        .for_cycles(260)
        .at_cycle(120)
        .lying_nodes(0.2, 10.0)
}

/// The same attack against the ordering family (mod-JK): liars claim
/// inflated random values, refuse every swap, and inject their claim into
/// honest nodes through poisoned exchanges.
pub fn lying_ordering() -> Scenario {
    Scenario::new("lying-ordering")
        .population(600)
        .view_size(20)
        .slices(10)
        .seed(108)
        .sample_every(10)
        .with_protocol(ProtocolKind::ModJk)
        .for_cycles(260)
        .at_cycle(120)
        .lying_nodes(0.2, 10.0)
}

/// The platform re-allocates resources: a converged 10-slice system is
/// re-partitioned into 4 slices at cycle 150. Rank estimates are
/// partition-independent, so accuracy should recover instantly.
pub fn repartition() -> Scenario {
    ranking_base("repartition", 600, 109)
        .for_cycles(240)
        .at_cycle(150)
        .repartition(4)
}

/// Everything at once: a flash crowd, then a regional failure, then a
/// distribution shift, then lying nodes — the kitchen-sink robustness
/// check.
pub fn combined_stress() -> Scenario {
    ranking_base("combined-stress", 500, 110)
        .for_cycles(300)
        .at_cycle(80)
        .flash_crowd(0.5)
        .at_cycle(140)
        .regional_failure(0.2)
        .at_cycle(180)
        .shift_distribution(AttributeDistribution::Exponential { rate: 0.5 })
        .at_cycle(200)
        .join(60)
        .leave(60)
        .at_cycle(220)
        .lying_nodes(0.1, 5.0)
}

// ----- defended variants ---------------------------------------------------
//
// Each scenario below re-runs one of the adversarial workloads above with a
// hardened protocol variant; the pairing (same shape, same shock cycle,
// different protocol) makes the goldens directly comparable.

/// [`regional_failure`] under exponential sample aging: the decayed
/// estimator forgets the pre-shock evidence geometrically instead of
/// harmonically, so survivors' rank estimates recover within the run
/// instead of being anchored by a dead region forever.
pub fn regional_failure_decay() -> Scenario {
    ranking_base("regional-failure-decay", 600, 111)
        .with_protocol(ProtocolKind::decay(0.998))
        .for_cycles(260)
        .at_cycle(130)
        .regional_failure(0.25)
}

/// [`regional_failure`] under the sliding-window estimator (§5.3.4) at a
/// window small enough to turn over post-shock — the paper's own aging
/// mechanism, pinned here as the decay variant's baseline.
pub fn regional_failure_sliding() -> Scenario {
    ranking_base("regional-failure-sliding", 600, 112)
        .with_protocol(ProtocolKind::SlidingRanking { window: 512 })
        .for_cycles(260)
        .at_cycle(130)
        .regional_failure(0.25)
}

/// [`shifting_distribution`] under exponential sample aging: the rolling
/// churn keeps moving true ranks, and decayed evidence tracks the moving
/// target instead of averaging over the whole history.
pub fn shifting_distribution_decay() -> Scenario {
    let mut s = ranking_base("shifting-distribution-decay", 600, 113)
        .with_protocol(ProtocolKind::decay(0.998))
        .for_cycles(300)
        .at_cycle(100)
        .shift_distribution(AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 1.5,
        });
    for cycle in (104..=200).step_by(4) {
        s = s.at_cycle(cycle).leave(24).join(24);
    }
    s
}

/// [`lying_nodes`] under outlier-robust sample admission: inflated samples
/// fall outside the Tukey fences of each node's recent raw-value window
/// and are rejected before they can poison the counters.
pub fn lying_nodes_robust() -> Scenario {
    ranking_base("lying-nodes-robust", 600, 114)
        .with_protocol(ProtocolKind::RobustRanking { window: 64 })
        .for_cycles(260)
        .at_cycle(120)
        .lying_nodes(0.2, 10.0)
}

/// [`lying_ordering`] under the swap-liveness defense: partners whose
/// proposals repeatedly go unresolved are excluded from selection for a
/// cooldown, so mod-JK routes around the swap-refusing liars instead of
/// wedging against them.
pub fn lying_ordering_live() -> Scenario {
    Scenario::new("lying-ordering-live")
        .population(600)
        .view_size(20)
        .slices(10)
        .seed(115)
        .sample_every(10)
        .with_protocol(ProtocolKind::ModJkLive {
            strike_limit: 2,
            cooldown: 64,
        })
        .for_cycles(260)
        .at_cycle(120)
        .lying_nodes(0.2, 10.0)
}

/// The targeted adversary: corrupt the 10% of honest nodes whose true
/// ranks sit nearest the slice boundaries — maximum slice displacement per
/// corrupted node — against the undefended ranking protocol.
pub fn boundary_corruption() -> Scenario {
    ranking_base("boundary-corruption", 600, 116)
        .for_cycles(260)
        .at_cycle(120)
        .lying_boundary_nodes(0.1, 10.0)
}

/// [`boundary_corruption`] with the outlier-robust filter in place.
pub fn boundary_corruption_robust() -> Scenario {
    ranking_base("boundary-corruption-robust", 600, 117)
        .with_protocol(ProtocolKind::RobustRanking { window: 64 })
        .for_cycles(260)
        .at_cycle(120)
        .lying_boundary_nodes(0.1, 10.0)
}

// ----- adaptive adversaries and network faults -----------------------------
//
// The escalation tier: attackers that probe the defenses instead of lying
// blindly, and wide-area network faults the cycle model abstracts away.
// These scenarios opt into per-cycle defense tracking, so their trajectories
// carry `samples_rejected` / `swaps_abandoned` columns.

/// Shared shape of the colluding-liar trio: 20% of a converged population
/// turns into [`Colluder`](dslice_sim::AttackerSpec::Colluder)s at cycle
/// 120 — coordinated inflation pitched at the 95th percentile, sized to
/// stay *just inside* the Tukey fences — and the three defense tiers face
/// the identical attack under the same seed-per-scenario convention.
fn colluding(name: &str, seed: u64, protocol: ProtocolKind) -> Scenario {
    Scenario::new(name)
        .population(600)
        .view_size(10)
        .slices(5)
        .seed(seed)
        .sample_every(10)
        .track_defense()
        .with_protocol(protocol)
        .for_cycles(260)
        .at_cycle(120)
        .adaptive_liars(0.2, AttackerSpec::Colluder { target: 0.95 })
}

/// Colluders against the fence-only robust filter: inflation calibrated to
/// sit inside the fences is admitted, so the defense that beat blind liars
/// leaks — the golden that motivates the trimmed tier.
pub fn colluding_liars_robust() -> Scenario {
    colluding(
        "colluding-liars-robust",
        118,
        ProtocolKind::RobustRanking { window: 64 },
    )
}

/// The same colluders against trimmed-mean aggregation: the top quantile of
/// every window is discarded wholesale, fences or not, so in-fence
/// inflation is rejected and honest accuracy holds near the baseline.
pub fn colluding_liars_trimmed() -> Scenario {
    colluding(
        "colluding-liars-trimmed",
        119,
        ProtocolKind::trimmed(128, 0.1),
    )
}

/// The composed defense: Tukey fences against far-out inflation *and*
/// quantile trimming against in-fence collusion.
pub fn colluding_liars_fence_trim() -> Scenario {
    colluding(
        "colluding-liars-fence-trim",
        120,
        ProtocolKind::fenced_trimmed(128, 0.1),
    )
}

/// Shared shape of the partition/heal pair: the network splits into two
/// attribute bands at cycle 80 (each island sees a censored sample stream,
/// so rank estimates skew toward the island's local order) and heals at
/// cycle 200, leaving 100 cycles to recover.
fn partition_heal(name: &str, seed: u64, protocol: ProtocolKind) -> Scenario {
    Scenario::new(name)
        .population(600)
        .view_size(10)
        .slices(5)
        .seed(seed)
        .sample_every(10)
        .track_defense()
        .with_protocol(protocol)
        .for_cycles(300)
        .at_cycle(80)
        .partition_bands_until(2, 200)
}

/// Partition/heal against the undefended ranking estimator: the harmonic
/// sample counters anchor every estimate to the partition-era evidence, so
/// recovery after the heal is glacial.
pub fn partition_heal_ranking() -> Scenario {
    partition_heal("partition-heal-ranking", 121, ProtocolKind::Ranking)
}

/// Partition/heal under exponential sample aging: decayed evidence forgets
/// the censored partition-era stream geometrically, so post-heal accuracy
/// climbs back above 0.85 within the run.
pub fn partition_heal_decay() -> Scenario {
    partition_heal("partition-heal-decay", 122, ProtocolKind::decay(0.99))
}

/// A lossy wide-area network: from cycle 60 on, 15% of all routed messages
/// are dropped. The ranking family's one-way samples are individually
/// expendable, so convergence slows but does not stall.
pub fn lossy_network_ranking() -> Scenario {
    Scenario::new("lossy-network-ranking")
        .population(600)
        .view_size(10)
        .slices(10)
        .seed(123)
        .sample_every(10)
        .track_defense()
        .for_cycles(260)
        .at_cycle(60)
        .drop_rate(0.15)
}

/// Shared shape of the throttler pair: 20% of the population starts
/// answering only every 2nd swap proposal (staying under a strike limit of
/// 2) while claiming 10× rank inflation, against `mod-jk-live` at the
/// given tuning.
fn throttling(name: &str, seed: u64, strike_limit: u32, cooldown: u32) -> Scenario {
    Scenario::new(name)
        .population(600)
        .view_size(20)
        .slices(10)
        .seed(seed)
        .sample_every(10)
        .track_defense()
        .with_protocol(ProtocolKind::ModJkLive {
            strike_limit,
            cooldown,
        })
        .for_cycles(260)
        .at_cycle(120)
        .adaptive_liars(
            0.2,
            AttackerSpec::Throttler {
                accept_period: 2,
                inflation: 10.0,
            },
        )
}

/// Throttlers against the original `mod-jk-live` tuning (2 strikes, 64
/// cooldown): answering every 2nd probe resets the strike counter before
/// the ban lands, so the defense never fires and honest proposals keep
/// burning against wedged partners.
pub fn throttling_ordering_live() -> Scenario {
    throttling("throttling-ordering-live", 124, 2, 64)
}

/// The re-tuned defense (1 strike, 128 cooldown): a single unresolved
/// proposal now bans the partner, so every-2nd-answer throttling is caught
/// and the useless-swap rate falls back toward the blind-liar level.
pub fn throttling_ordering_live_tuned() -> Scenario {
    throttling("throttling-ordering-live-tuned", 125, 1, 128)
}

/// Drifting liars against the fence-only filter: each epoch the attacker
/// halves or raises its inflation based on observed rejection feedback,
/// walking its claims down until they slip inside the fences.
pub fn drifting_liars_robust() -> Scenario {
    Scenario::new("drifting-liars-robust")
        .population(600)
        .view_size(10)
        .slices(5)
        .seed(126)
        .sample_every(10)
        .track_defense()
        .with_protocol(ProtocolKind::RobustRanking { window: 64 })
        .for_cycles(260)
        .at_cycle(120)
        .adaptive_liars(
            0.2,
            AttackerSpec::Drifter {
                inflation: 8.0,
                step: 0.25,
                epoch: 8,
            },
        )
}

/// Every scenario in the matrix, in the order `scenario_matrix` runs them.
pub fn all() -> Vec<Scenario> {
    vec![
        baseline_static(),
        flash_crowd(),
        mass_departure(),
        regional_failure(),
        churn_burst(),
        shifting_distribution(),
        lying_nodes(),
        lying_ordering(),
        repartition(),
        combined_stress(),
        regional_failure_decay(),
        regional_failure_sliding(),
        shifting_distribution_decay(),
        lying_nodes_robust(),
        lying_ordering_live(),
        boundary_corruption(),
        boundary_corruption_robust(),
        colluding_liars_robust(),
        colluding_liars_trimmed(),
        colluding_liars_fence_trim(),
        partition_heal_ranking(),
        partition_heal_decay(),
        lossy_network_ranking(),
        throttling_ordering_live(),
        throttling_ordering_live_tuned(),
        drifting_liars_robust(),
    ]
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name() == name)
}

/// The names of every scenario in the matrix.
pub fn names() -> Vec<String> {
    all().iter().map(|s| s.name().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn library_holds_at_least_eight_distinct_scenarios() {
        let scenarios = all();
        assert!(scenarios.len() >= 8, "matrix needs ≥ 8 scenarios");
        let names: HashSet<&str> = scenarios.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), scenarios.len(), "names must be unique");
        // The acceptance-critical four are present.
        for required in [
            "flash-crowd",
            "regional-failure",
            "shifting-distribution",
            "lying-nodes",
        ] {
            assert!(names.contains(required), "missing `{required}`");
        }
        // Every defended variant rides next to its undefended counterpart.
        for defended in [
            "regional-failure-decay",
            "regional-failure-sliding",
            "shifting-distribution-decay",
            "lying-nodes-robust",
            "lying-ordering-live",
            "boundary-corruption",
            "boundary-corruption-robust",
        ] {
            assert!(names.contains(defended), "missing `{defended}`");
        }
        // The adaptive-adversary / network-fault tier is present too.
        for escalated in [
            "colluding-liars-robust",
            "colluding-liars-trimmed",
            "colluding-liars-fence-trim",
            "partition-heal-ranking",
            "partition-heal-decay",
            "lossy-network-ranking",
            "throttling-ordering-live",
            "throttling-ordering-live-tuned",
            "drifting-liars-robust",
        ] {
            assert!(names.contains(escalated), "missing `{escalated}`");
        }
    }

    #[test]
    fn every_scenario_compiles() {
        for s in all() {
            let schedule = s
                .compile()
                .unwrap_or_else(|e| panic!("scenario `{}` failed to compile: {e}", s.name()));
            assert!(schedule.min_population() >= 1);
            assert!(
                !s.config().time_phases,
                "`{}`: golden scenarios must not time phases",
                s.name()
            );
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: HashSet<u64> = all().iter().map(|s| s.config().seed).collect();
        assert_eq!(seeds.len(), all().len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lying-nodes").is_some());
        assert!(by_name("does-not-exist").is_none());
        assert_eq!(names().len(), all().len());
    }
}
