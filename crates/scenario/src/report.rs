//! Structured scenario reports: what a run emits, what CI uploads, what the
//! goldens under `docs/scenarios/goldens/` pin byte-for-byte.
//!
//! A report is pure simulated state — disorder/accuracy trajectory, event
//! log, message totals — so it is deterministic for a given scenario, at any
//! shard count. Wall-clock phase timings are host noise, so they ride in an
//! `Option` that stays `None` unless the scenario explicitly opts in
//! (golden scenarios never do).

use crate::dsl::TimedEvent;
use dslice_obs::{Registry, COUNT_BUCKETS};
use dslice_sim::{CycleStats, PhaseTimings};

/// One sampled point of the run's trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// The cycle this point was sampled after.
    pub cycle: usize,
    /// Live population size.
    pub n: usize,
    /// Slice disorder measure over the full population.
    pub sdm: f64,
    /// Global disorder measure over the full population.
    pub gdm: f64,
    /// Fraction of all nodes in their true slice.
    pub accuracy: f64,
    /// Fraction of *honest* nodes in their true slice (equals `accuracy`
    /// while nobody lies).
    pub honest_accuracy: f64,
    /// Live lying nodes at this point.
    pub liars: usize,
    /// Nodes that left during this cycle.
    pub left: usize,
    /// Nodes that joined during this cycle.
    pub joined: usize,
    /// Nodes whose believed slice changed this cycle (§3.2 stability).
    pub slice_changes: usize,
    /// Attribute samples rejected by outlier-robust admission *during the
    /// sampled cycle* (defended ranking variants only; 0 otherwise).
    pub samples_rejected: u64,
    /// Swap proposals abandoned unresolved *during the sampled cycle*
    /// (liveness-tracking ordering variant only; 0 otherwise).
    pub swaps_abandoned: u64,
}

impl serde::Serialize for TrajectoryPoint {
    /// Hand-written on the same scheme as [`Totals`]: the ten original
    /// columns serialize exactly as the derived impl always did, and the
    /// per-cycle defense counters are appended **only when non-zero** —
    /// undefended scenarios can never record them, so their goldens stay
    /// byte-identical.
    fn to_value(&self) -> serde::Value {
        let mut map: Vec<(String, serde::Value)> = vec![
            ("cycle".into(), serde::Serialize::to_value(&self.cycle)),
            ("n".into(), serde::Serialize::to_value(&self.n)),
            ("sdm".into(), serde::Serialize::to_value(&self.sdm)),
            ("gdm".into(), serde::Serialize::to_value(&self.gdm)),
            (
                "accuracy".into(),
                serde::Serialize::to_value(&self.accuracy),
            ),
            (
                "honest_accuracy".into(),
                serde::Serialize::to_value(&self.honest_accuracy),
            ),
            ("liars".into(), serde::Serialize::to_value(&self.liars)),
            ("left".into(), serde::Serialize::to_value(&self.left)),
            ("joined".into(), serde::Serialize::to_value(&self.joined)),
            (
                "slice_changes".into(),
                serde::Serialize::to_value(&self.slice_changes),
            ),
        ];
        for (name, v) in [
            ("samples_rejected", self.samples_rejected),
            ("swaps_abandoned", self.swaps_abandoned),
        ] {
            if v != 0 {
                map.push((name.to_string(), serde::Serialize::to_value(&v)));
            }
        }
        serde::Value::Map(map)
    }
}

impl serde::Deserialize for TrajectoryPoint {
    /// Mirror of the conditional [`serde::Serialize`] impl: the defense
    /// counters default to 0 when absent, so pre-defense goldens parse.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct TrajectoryPoint"))?;
        let count = |name: &str| -> Result<usize, serde::Error> {
            serde::Deserialize::from_value(serde::__field(m, name))
                .map_err(|e| serde::Error::custom(format!("TrajectoryPoint.{name}: {e}")))
        };
        let metric = |name: &str| -> Result<f64, serde::Error> {
            serde::Deserialize::from_value(serde::__field(m, name))
                .map_err(|e| serde::Error::custom(format!("TrajectoryPoint.{name}: {e}")))
        };
        let optional = |name: &str| -> Result<u64, serde::Error> {
            match serde::__field(m, name) {
                serde::Value::Null => Ok(0),
                present => serde::Deserialize::from_value(present)
                    .map_err(|e| serde::Error::custom(format!("TrajectoryPoint.{name}: {e}"))),
            }
        };
        Ok(TrajectoryPoint {
            cycle: count("cycle")?,
            n: count("n")?,
            sdm: metric("sdm")?,
            gdm: metric("gdm")?,
            accuracy: metric("accuracy")?,
            honest_accuracy: metric("honest_accuracy")?,
            liars: count("liars")?,
            left: count("left")?,
            joined: count("joined")?,
            slice_changes: count("slice_changes")?,
            samples_rejected: optional("samples_rejected")?,
            swaps_abandoned: optional("swaps_abandoned")?,
        })
    }
}

/// Event and message counters accumulated over the whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Swap proposals sent (ordering family).
    pub swaps_proposed: u64,
    /// Swaps applied (either side).
    pub swaps_applied: u64,
    /// Unsuccessful swaps (§4.5.2).
    pub swaps_useless: u64,
    /// One-way `UPD` attribute samples sent (ranking family).
    pub updates_sent: u64,
    /// Attribute samples folded into rank estimates.
    pub samples_absorbed: u64,
    /// Messages dropped (loss model or departed endpoints).
    pub dropped_messages: u64,
    /// Total departures over the run.
    pub left: u64,
    /// Total arrivals over the run.
    pub joined: u64,
    /// Total believed-slice changes over the run.
    pub slice_changes: u64,
    /// Swap proposals abandoned unresolved (liveness-tracking ordering
    /// variant only; 0 for every paper-faithful protocol).
    pub swaps_abandoned: u64,
    /// Attribute samples rejected by outlier-robust admission (defended
    /// ranking variants only; 0 otherwise).
    pub samples_rejected: u64,
}

impl Totals {
    /// Folds one cycle's statistics in.
    pub fn accumulate(&mut self, stats: &CycleStats) {
        self.swaps_proposed += stats.events.swaps_proposed;
        self.swaps_applied += stats.events.swaps_applied;
        self.swaps_useless += stats.events.swaps_useless;
        self.updates_sent += stats.events.updates_sent;
        self.samples_absorbed += stats.events.samples_absorbed;
        self.dropped_messages += stats.dropped_messages;
        self.left += stats.left as u64;
        self.joined += stats.joined as u64;
        self.slice_changes += stats.slice_changes as u64;
        self.swaps_abandoned += stats.events.swaps_abandoned;
        self.samples_rejected += stats.events.samples_rejected;
    }
}

/// Field order of the nine original counters, shared by both hand-written
/// impls below so they cannot drift apart.
const TOTALS_FIELDS: [&str; 9] = [
    "swaps_proposed",
    "swaps_applied",
    "swaps_useless",
    "updates_sent",
    "samples_absorbed",
    "dropped_messages",
    "left",
    "joined",
    "slice_changes",
];

impl serde::Serialize for Totals {
    /// Hand-written to keep the golden files stable: the nine original
    /// counters serialize exactly as the derived impl always did, and the
    /// defense counters (`swaps_abandoned`, `samples_rejected`) are appended
    /// **only when non-zero** — undefended scenarios can never record them,
    /// so their goldens stay byte-identical.
    fn to_value(&self) -> serde::Value {
        let base = [
            self.swaps_proposed,
            self.swaps_applied,
            self.swaps_useless,
            self.updates_sent,
            self.samples_absorbed,
            self.dropped_messages,
            self.left,
            self.joined,
            self.slice_changes,
        ];
        let mut map: Vec<(String, serde::Value)> = TOTALS_FIELDS
            .iter()
            .zip(base)
            .map(|(name, v)| (name.to_string(), serde::Serialize::to_value(&v)))
            .collect();
        for (name, v) in [
            ("swaps_abandoned", self.swaps_abandoned),
            ("samples_rejected", self.samples_rejected),
        ] {
            if v != 0 {
                map.push((name.to_string(), serde::Serialize::to_value(&v)));
            }
        }
        serde::Value::Map(map)
    }
}

impl serde::Deserialize for Totals {
    /// Mirror of the conditional [`serde::Serialize`] impl: the defense
    /// counters default to 0 when absent, so pre-defense goldens parse.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct Totals"))?;
        let strict = |name: &str| -> Result<u64, serde::Error> {
            serde::Deserialize::from_value(serde::__field(m, name))
                .map_err(|e| serde::Error::custom(format!("Totals.{name}: {e}")))
        };
        let optional = |name: &str| -> Result<u64, serde::Error> {
            match serde::__field(m, name) {
                serde::Value::Null => Ok(0),
                present => serde::Deserialize::from_value(present)
                    .map_err(|e| serde::Error::custom(format!("Totals.{name}: {e}"))),
            }
        };
        let mut base = [0u64; 9];
        for (slot, name) in base.iter_mut().zip(TOTALS_FIELDS) {
            *slot = strict(name)?;
        }
        let [swaps_proposed, swaps_applied, swaps_useless, updates_sent, samples_absorbed, dropped_messages, left, joined, slice_changes] =
            base;
        Ok(Totals {
            swaps_proposed,
            swaps_applied,
            swaps_useless,
            updates_sent,
            samples_absorbed,
            dropped_messages,
            left,
            joined,
            slice_changes,
            swaps_abandoned: optional("swaps_abandoned")?,
            samples_rejected: optional("samples_rejected")?,
        })
    }
}

/// The structured result of one scenario run.
///
/// Serde is hand-written (not derived) to pin the golden byte shape: untimed
/// reports end with exactly `"phase_us": null` — the derived shape every
/// golden was committed with — while timed reports additionally carry the
/// nanosecond block under `phase_ns` (with `phase_us` kept, floor-divided,
/// for one deprecation cycle).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (the report/golden file stem).
    pub name: String,
    /// Protocol label (`jk`, `mod-jk`, `ranking`, …).
    pub protocol: String,
    /// Run seed.
    pub seed: u64,
    /// Initial population size.
    pub initial_n: usize,
    /// Population size at the end of the run.
    pub final_n: usize,
    /// Slices in the partition at the end of the run.
    pub slices: usize,
    /// Run length in cycles.
    pub cycles: usize,
    /// The compiled event schedule the run executed (cycle-ordered).
    pub events: Vec<TimedEvent>,
    /// Sampled SDM/accuracy trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Whole-run event and message totals.
    pub totals: Totals,
    /// Final slice disorder measure.
    pub final_sdm: f64,
    /// Final global disorder measure.
    pub final_gdm: f64,
    /// Final full-population accuracy.
    pub final_accuracy: f64,
    /// Final honest-only accuracy.
    pub final_honest_accuracy: f64,
    /// Live lying nodes at the end of the run.
    pub liars: usize,
    /// Per-phase wall-clock totals over the run, in nanoseconds — host
    /// noise, present only when the scenario opted into timing; never part
    /// of goldens (which pin the untimed `"phase_us": null` shape).
    pub phase_ns: Option<PhaseTimings>,
}

/// Field order of the scalar golden columns, shared by both hand-written
/// impls below so they cannot drift apart.
const REPORT_HEAD_FIELDS: [&str; 7] = [
    "name",
    "protocol",
    "seed",
    "initial_n",
    "final_n",
    "slices",
    "cycles",
];

/// The µs timing keys, in the order the pre-PR-10 derived impl emitted them.
const PHASE_US_FIELDS: [&str; 7] = [
    "churn_us",
    "drain_us",
    "membership_us",
    "refresh_us",
    "active_us",
    "delivery_us",
    "metrics_us",
];

impl serde::Serialize for ScenarioReport {
    fn to_value(&self) -> serde::Value {
        let mut map: Vec<(String, serde::Value)> = vec![
            ("name".into(), self.name.to_value()),
            ("protocol".into(), self.protocol.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("initial_n".into(), self.initial_n.to_value()),
            ("final_n".into(), self.final_n.to_value()),
            ("slices".into(), self.slices.to_value()),
            ("cycles".into(), self.cycles.to_value()),
            ("events".into(), self.events.to_value()),
            ("trajectory".into(), self.trajectory.to_value()),
            ("totals".into(), self.totals.to_value()),
            ("final_sdm".into(), self.final_sdm.to_value()),
            ("final_gdm".into(), self.final_gdm.to_value()),
            ("final_accuracy".into(), self.final_accuracy.to_value()),
            (
                "final_honest_accuracy".into(),
                self.final_honest_accuracy.to_value(),
            ),
            ("liars".into(), self.liars.to_value()),
        ];
        match &self.phase_ns {
            // The exact byte the goldens pin: a literal null, last.
            None => map.push(("phase_us".into(), serde::Value::Null)),
            Some(t) => {
                let us: Vec<(String, serde::Value)> = PHASE_US_FIELDS
                    .iter()
                    .zip(t.rows_us())
                    .map(|(name, (_, us))| (name.to_string(), us.to_value()))
                    .collect();
                map.push(("phase_us".into(), serde::Value::Map(us)));
                map.push(("phase_ns".into(), t.to_value()));
            }
        }
        serde::Value::Map(map)
    }
}

impl serde::Deserialize for ScenarioReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct ScenarioReport"))?;
        let ctx = |name: &str, e: serde::Error| {
            serde::Error::custom(format!("ScenarioReport.{name}: {e}"))
        };
        // Validate the head columns exist (same strictness the derived impl
        // had), then read each typed field.
        for name in REPORT_HEAD_FIELDS {
            if matches!(serde::__field(m, name), serde::Value::Null) {
                return Err(serde::Error::custom(format!(
                    "ScenarioReport.{name}: missing"
                )));
            }
        }
        // Timings: prefer the nanosecond block; fall back to a pre-PR-10
        // microsecond block (×1000) so old timed manifests still parse.
        let phase_ns = match serde::__field(m, "phase_ns") {
            serde::Value::Null => match serde::__field(m, "phase_us") {
                serde::Value::Null => None,
                us => {
                    let um = us.as_map().ok_or_else(|| {
                        serde::Error::custom("ScenarioReport.phase_us: expected map or null")
                    })?;
                    let mut t = PhaseTimings::default();
                    let slots = [
                        &mut t.churn_ns,
                        &mut t.drain_ns,
                        &mut t.membership_ns,
                        &mut t.refresh_ns,
                        &mut t.active_ns,
                        &mut t.delivery_ns,
                        &mut t.metrics_ns,
                    ];
                    for (slot, name) in slots.into_iter().zip(PHASE_US_FIELDS) {
                        let us_v = u64::from_value(serde::__field(um, name))
                            .map_err(|e| ctx("phase_us", e))?;
                        *slot = us_v * 1000;
                    }
                    Some(t)
                }
            },
            ns => Some(PhaseTimings::from_value(ns).map_err(|e| ctx("phase_ns", e))?),
        };
        Ok(ScenarioReport {
            name: String::from_value(serde::__field(m, "name")).map_err(|e| ctx("name", e))?,
            protocol: String::from_value(serde::__field(m, "protocol"))
                .map_err(|e| ctx("protocol", e))?,
            seed: u64::from_value(serde::__field(m, "seed")).map_err(|e| ctx("seed", e))?,
            initial_n: usize::from_value(serde::__field(m, "initial_n"))
                .map_err(|e| ctx("initial_n", e))?,
            final_n: usize::from_value(serde::__field(m, "final_n"))
                .map_err(|e| ctx("final_n", e))?,
            slices: usize::from_value(serde::__field(m, "slices")).map_err(|e| ctx("slices", e))?,
            cycles: usize::from_value(serde::__field(m, "cycles")).map_err(|e| ctx("cycles", e))?,
            events: Vec::from_value(serde::__field(m, "events")).map_err(|e| ctx("events", e))?,
            trajectory: Vec::from_value(serde::__field(m, "trajectory"))
                .map_err(|e| ctx("trajectory", e))?,
            totals: Totals::from_value(serde::__field(m, "totals"))
                .map_err(|e| ctx("totals", e))?,
            final_sdm: f64::from_value(serde::__field(m, "final_sdm"))
                .map_err(|e| ctx("final_sdm", e))?,
            final_gdm: f64::from_value(serde::__field(m, "final_gdm"))
                .map_err(|e| ctx("final_gdm", e))?,
            final_accuracy: f64::from_value(serde::__field(m, "final_accuracy"))
                .map_err(|e| ctx("final_accuracy", e))?,
            final_honest_accuracy: f64::from_value(serde::__field(m, "final_honest_accuracy"))
                .map_err(|e| ctx("final_honest_accuracy", e))?,
            liars: usize::from_value(serde::__field(m, "liars")).map_err(|e| ctx("liars", e))?,
            phase_ns,
        })
    }
}

impl ScenarioReport {
    /// Serializes the report as pretty-printed JSON (the golden format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The trajectory point with the worst (highest) SDM — scenarios shock
    /// the system and this is the shock's peak.
    pub fn peak_sdm(&self) -> Option<&TrajectoryPoint> {
        self.trajectory
            .iter()
            .max_by(|a, b| a.sdm.total_cmp(&b.sdm))
    }

    /// Exports the report under the `dslice_scenario_*` metric namespace:
    /// final gauges, whole-run totals as counters, per-phase timing counters
    /// (when timed), and deterministic per-sample activity histograms.
    ///
    /// Everything here derives from simulated state (except the opt-in
    /// `phase_ns` block), so for an untimed scenario the rendered registry
    /// is byte-identical across reruns and shard counts.
    pub fn metrics_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.gauge_set(
            "dslice_scenario_final_n",
            "Final population.",
            self.final_n as f64,
        );
        reg.gauge_set(
            "dslice_scenario_cycles",
            "Run length in cycles.",
            self.cycles as f64,
        );
        reg.gauge_set(
            "dslice_scenario_final_sdm",
            "Final slice disorder measure.",
            self.final_sdm,
        );
        reg.gauge_set(
            "dslice_scenario_final_gdm",
            "Final global disorder measure.",
            self.final_gdm,
        );
        reg.gauge_set(
            "dslice_scenario_final_accuracy",
            "Final full-population accuracy.",
            self.final_accuracy,
        );
        reg.gauge_set(
            "dslice_scenario_final_honest_accuracy",
            "Final honest-only accuracy.",
            self.final_honest_accuracy,
        );
        reg.gauge_set(
            "dslice_scenario_liars",
            "Live lying nodes at the end.",
            self.liars as f64,
        );
        for (name, help, v) in [
            (
                "dslice_scenario_swaps_proposed_total",
                "Swap proposals sent.",
                self.totals.swaps_proposed,
            ),
            (
                "dslice_scenario_swaps_applied_total",
                "Swaps applied.",
                self.totals.swaps_applied,
            ),
            (
                "dslice_scenario_swaps_useless_total",
                "Unsuccessful swaps.",
                self.totals.swaps_useless,
            ),
            (
                "dslice_scenario_updates_sent_total",
                "UPD samples sent.",
                self.totals.updates_sent,
            ),
            (
                "dslice_scenario_samples_absorbed_total",
                "Samples absorbed.",
                self.totals.samples_absorbed,
            ),
            (
                "dslice_scenario_dropped_messages_total",
                "Messages dropped.",
                self.totals.dropped_messages,
            ),
            (
                "dslice_scenario_left_total",
                "Departures.",
                self.totals.left,
            ),
            (
                "dslice_scenario_joined_total",
                "Arrivals.",
                self.totals.joined,
            ),
            (
                "dslice_scenario_slice_changes_total",
                "Believed-slice changes.",
                self.totals.slice_changes,
            ),
            (
                "dslice_scenario_swaps_abandoned_total",
                "Swaps abandoned unresolved.",
                self.totals.swaps_abandoned,
            ),
            (
                "dslice_scenario_samples_rejected_total",
                "Samples rejected by admission.",
                self.totals.samples_rejected,
            ),
        ] {
            reg.counter_add(name, help, v);
        }
        for p in &self.trajectory {
            reg.observe(
                "dslice_scenario_slice_changes_per_sample",
                "Believed-slice changes per sampled cycle.",
                &COUNT_BUCKETS,
                p.slice_changes as f64,
            );
            reg.observe(
                "dslice_scenario_joined_per_sample",
                "Arrivals per sampled cycle.",
                &COUNT_BUCKETS,
                p.joined as f64,
            );
        }
        if let Some(t) = &self.phase_ns {
            for (phase, ns) in t.rows() {
                reg.counter_add(
                    &dslice_obs::labeled("dslice_scenario_phase_ns_total", "phase", phase),
                    "Wall-clock nanoseconds spent per engine phase.",
                    ns,
                );
            }
        }
        reg
    }

    /// One-line human summary for matrix output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<24} {:>8} {:>7} {:>6} {:>10.3} {:>9.3} {:>9.3}",
            self.name,
            self.protocol,
            self.cycles,
            self.final_n,
            self.final_sdm,
            self.final_accuracy,
            self.final_honest_accuracy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::ScenarioEvent;

    fn report() -> ScenarioReport {
        ScenarioReport {
            name: "t".into(),
            protocol: "ranking".into(),
            seed: 7,
            initial_n: 100,
            final_n: 120,
            slices: 4,
            cycles: 50,
            events: vec![TimedEvent {
                cycle: 10,
                event: ScenarioEvent::FlashCrowd { fraction: 0.2 },
            }],
            trajectory: vec![
                TrajectoryPoint {
                    cycle: 10,
                    n: 120,
                    sdm: 5.0,
                    gdm: 1.0,
                    accuracy: 0.8,
                    honest_accuracy: 0.8,
                    liars: 0,
                    left: 0,
                    joined: 20,
                    slice_changes: 3,
                    samples_rejected: 0,
                    swaps_abandoned: 0,
                },
                TrajectoryPoint {
                    cycle: 50,
                    n: 120,
                    sdm: 1.5,
                    gdm: 0.0,
                    accuracy: 0.95,
                    honest_accuracy: 0.95,
                    liars: 0,
                    left: 0,
                    joined: 0,
                    slice_changes: 0,
                    samples_rejected: 0,
                    swaps_abandoned: 0,
                },
            ],
            totals: Totals::default(),
            final_sdm: 1.5,
            final_gdm: 0.0,
            final_accuracy: 0.95,
            final_honest_accuracy: 0.95,
            liars: 0,
            phase_ns: None,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let r = report();
        let parsed = ScenarioReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn untimed_report_pins_the_golden_null_shape() {
        // The goldens all end with `"phase_us": null` as the last key; the
        // hand-written impl must keep emitting exactly that, and no
        // `phase_ns` key at all.
        let json = report().to_json();
        assert!(json.trim_end().ends_with("\"phase_us\": null\n}"), "{json}");
        assert!(!json.contains("phase_ns"), "golden drift: {json}");
    }

    #[test]
    fn timed_report_roundtrips_with_both_blocks() {
        let mut r = report();
        r.phase_ns = Some(PhaseTimings {
            churn_ns: 999, // floors to 0 µs
            membership_ns: 2_500,
            ..PhaseTimings::default()
        });
        let json = r.to_json();
        assert!(json.contains("\"churn_us\": 0"));
        assert!(json.contains("\"membership_us\": 2"));
        assert!(json.contains("\"membership_ns\": 2500"));
        let parsed = ScenarioReport::from_json(&json).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn pre_pr10_microsecond_block_still_parses() {
        // A timed report written before the nanosecond migration: only a
        // `phase_us` map. It parses with each phase scaled back to ns.
        let mut json = report().to_json();
        json = json.replace(
            "\"phase_us\": null",
            "\"phase_us\": {\"churn_us\": 1, \"drain_us\": 0, \"membership_us\": 3,\
             \"refresh_us\": 0, \"active_us\": 0, \"delivery_us\": 0, \"metrics_us\": 0}",
        );
        let parsed = ScenarioReport::from_json(&json).unwrap();
        let t = parsed.phase_ns.unwrap();
        assert_eq!(t.churn_ns, 1_000);
        assert_eq!(t.membership_ns, 3_000);
    }

    #[test]
    fn peak_sdm_finds_the_shock() {
        let r = report();
        assert_eq!(r.peak_sdm().unwrap().cycle, 10);
    }

    #[test]
    fn totals_accumulate_cycle_stats() {
        let mut totals = Totals::default();
        let mut stats = CycleStats {
            cycle: 1,
            n: 100,
            sdm: 0.0,
            gdm: 0.0,
            events: Default::default(),
            dropped_messages: 2,
            left: 1,
            joined: 3,
            slice_changes: 4,
            timings: None,
        };
        stats.events.updates_sent = 10;
        stats.events.swaps_abandoned = 1;
        stats.events.samples_rejected = 5;
        totals.accumulate(&stats);
        totals.accumulate(&stats);
        assert_eq!(totals.updates_sent, 20);
        assert_eq!(totals.dropped_messages, 4);
        assert_eq!(totals.joined, 6);
        assert_eq!(totals.slice_changes, 8);
        assert_eq!(totals.swaps_abandoned, 2);
        assert_eq!(totals.samples_rejected, 10);
    }

    #[test]
    fn defense_counters_serialize_only_when_nonzero() {
        // Zero defense counters → invisible on the wire, so every
        // pre-defense golden stays byte-identical.
        let quiet = Totals {
            swaps_proposed: 3,
            ..Totals::default()
        };
        let json = serde_json::to_string(&quiet).unwrap();
        assert!(!json.contains("swaps_abandoned"), "golden drift: {json}");
        assert!(!json.contains("samples_rejected"), "golden drift: {json}");
        let parsed: Totals = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, quiet);

        // Non-zero counters round-trip.
        let loud = Totals {
            swaps_abandoned: 7,
            samples_rejected: 11,
            ..quiet.clone()
        };
        let json = serde_json::to_string(&loud).unwrap();
        assert!(json.contains("\"swaps_abandoned\""));
        assert!(json.contains("\"samples_rejected\""));
        let parsed: Totals = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, loud);
    }

    #[test]
    fn trajectory_defense_counters_serialize_only_when_nonzero() {
        let mut point = report().trajectory[0].clone();
        let json = serde_json::to_string(&point).unwrap();
        assert!(!json.contains("samples_rejected"), "golden drift: {json}");
        assert!(!json.contains("swaps_abandoned"), "golden drift: {json}");
        let parsed: TrajectoryPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, point);

        point.samples_rejected = 4;
        point.swaps_abandoned = 2;
        let json = serde_json::to_string(&point).unwrap();
        assert!(json.contains("\"samples_rejected\""));
        assert!(json.contains("\"swaps_abandoned\""));
        let parsed: TrajectoryPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, point);
    }

    #[test]
    fn pre_defense_trajectory_json_still_parses() {
        // The exact shape the derived impl used to emit (no defense keys).
        let json = r#"{"cycle":10,"n":120,"sdm":5.0,"gdm":1.0,"accuracy":0.8,
            "honest_accuracy":0.8,"liars":0,"left":0,"joined":20,
            "slice_changes":3}"#;
        let parsed: TrajectoryPoint = serde_json::from_str(json).unwrap();
        assert_eq!(parsed, report().trajectory[0]);
        // A truncated record (missing an original column) is still an error.
        let truncated = r#"{"cycle":10}"#;
        let err = serde_json::from_str::<TrajectoryPoint>(truncated)
            .unwrap_err()
            .to_string();
        assert!(err.contains("TrajectoryPoint.n"), "got: {err}");
    }

    #[test]
    fn pre_defense_totals_json_still_parses() {
        // The exact shape the derived impl used to emit (no defense keys).
        let json = r#"{"swaps_proposed":1,"swaps_applied":2,"swaps_useless":3,
            "updates_sent":4,"samples_absorbed":5,"dropped_messages":6,
            "left":7,"joined":8,"slice_changes":9}"#;
        let parsed: Totals = serde_json::from_str(json).unwrap();
        assert_eq!(parsed.slice_changes, 9);
        assert_eq!(parsed.swaps_abandoned, 0);
        assert_eq!(parsed.samples_rejected, 0);
        // A truncated record (missing an original counter) is still an error.
        let truncated = r#"{"swaps_proposed":1}"#;
        let err = serde_json::from_str::<Totals>(truncated)
            .unwrap_err()
            .to_string();
        assert!(err.contains("swaps_applied"), "got: {err}");
    }
}
