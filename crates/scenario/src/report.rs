//! Structured scenario reports: what a run emits, what CI uploads, what the
//! goldens under `docs/scenarios/goldens/` pin byte-for-byte.
//!
//! A report is pure simulated state — disorder/accuracy trajectory, event
//! log, message totals — so it is deterministic for a given scenario, at any
//! shard count. Wall-clock phase timings are host noise, so they ride in an
//! `Option` that stays `None` unless the scenario explicitly opts in
//! (golden scenarios never do).

use crate::dsl::TimedEvent;
use dslice_sim::{CycleStats, PhaseTimings};
use serde::{Deserialize, Serialize};

/// One sampled point of the run's trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// The cycle this point was sampled after.
    pub cycle: usize,
    /// Live population size.
    pub n: usize,
    /// Slice disorder measure over the full population.
    pub sdm: f64,
    /// Global disorder measure over the full population.
    pub gdm: f64,
    /// Fraction of all nodes in their true slice.
    pub accuracy: f64,
    /// Fraction of *honest* nodes in their true slice (equals `accuracy`
    /// while nobody lies).
    pub honest_accuracy: f64,
    /// Live lying nodes at this point.
    pub liars: usize,
    /// Nodes that left during this cycle.
    pub left: usize,
    /// Nodes that joined during this cycle.
    pub joined: usize,
    /// Nodes whose believed slice changed this cycle (§3.2 stability).
    pub slice_changes: usize,
    /// Attribute samples rejected by outlier-robust admission *during the
    /// sampled cycle* (defended ranking variants only; 0 otherwise).
    pub samples_rejected: u64,
    /// Swap proposals abandoned unresolved *during the sampled cycle*
    /// (liveness-tracking ordering variant only; 0 otherwise).
    pub swaps_abandoned: u64,
}

impl serde::Serialize for TrajectoryPoint {
    /// Hand-written on the same scheme as [`Totals`]: the ten original
    /// columns serialize exactly as the derived impl always did, and the
    /// per-cycle defense counters are appended **only when non-zero** —
    /// undefended scenarios can never record them, so their goldens stay
    /// byte-identical.
    fn to_value(&self) -> serde::Value {
        let mut map: Vec<(String, serde::Value)> = vec![
            ("cycle".into(), serde::Serialize::to_value(&self.cycle)),
            ("n".into(), serde::Serialize::to_value(&self.n)),
            ("sdm".into(), serde::Serialize::to_value(&self.sdm)),
            ("gdm".into(), serde::Serialize::to_value(&self.gdm)),
            (
                "accuracy".into(),
                serde::Serialize::to_value(&self.accuracy),
            ),
            (
                "honest_accuracy".into(),
                serde::Serialize::to_value(&self.honest_accuracy),
            ),
            ("liars".into(), serde::Serialize::to_value(&self.liars)),
            ("left".into(), serde::Serialize::to_value(&self.left)),
            ("joined".into(), serde::Serialize::to_value(&self.joined)),
            (
                "slice_changes".into(),
                serde::Serialize::to_value(&self.slice_changes),
            ),
        ];
        for (name, v) in [
            ("samples_rejected", self.samples_rejected),
            ("swaps_abandoned", self.swaps_abandoned),
        ] {
            if v != 0 {
                map.push((name.to_string(), serde::Serialize::to_value(&v)));
            }
        }
        serde::Value::Map(map)
    }
}

impl serde::Deserialize for TrajectoryPoint {
    /// Mirror of the conditional [`serde::Serialize`] impl: the defense
    /// counters default to 0 when absent, so pre-defense goldens parse.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct TrajectoryPoint"))?;
        let count = |name: &str| -> Result<usize, serde::Error> {
            serde::Deserialize::from_value(serde::__field(m, name))
                .map_err(|e| serde::Error::custom(format!("TrajectoryPoint.{name}: {e}")))
        };
        let metric = |name: &str| -> Result<f64, serde::Error> {
            serde::Deserialize::from_value(serde::__field(m, name))
                .map_err(|e| serde::Error::custom(format!("TrajectoryPoint.{name}: {e}")))
        };
        let optional = |name: &str| -> Result<u64, serde::Error> {
            match serde::__field(m, name) {
                serde::Value::Null => Ok(0),
                present => serde::Deserialize::from_value(present)
                    .map_err(|e| serde::Error::custom(format!("TrajectoryPoint.{name}: {e}"))),
            }
        };
        Ok(TrajectoryPoint {
            cycle: count("cycle")?,
            n: count("n")?,
            sdm: metric("sdm")?,
            gdm: metric("gdm")?,
            accuracy: metric("accuracy")?,
            honest_accuracy: metric("honest_accuracy")?,
            liars: count("liars")?,
            left: count("left")?,
            joined: count("joined")?,
            slice_changes: count("slice_changes")?,
            samples_rejected: optional("samples_rejected")?,
            swaps_abandoned: optional("swaps_abandoned")?,
        })
    }
}

/// Event and message counters accumulated over the whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Swap proposals sent (ordering family).
    pub swaps_proposed: u64,
    /// Swaps applied (either side).
    pub swaps_applied: u64,
    /// Unsuccessful swaps (§4.5.2).
    pub swaps_useless: u64,
    /// One-way `UPD` attribute samples sent (ranking family).
    pub updates_sent: u64,
    /// Attribute samples folded into rank estimates.
    pub samples_absorbed: u64,
    /// Messages dropped (loss model or departed endpoints).
    pub dropped_messages: u64,
    /// Total departures over the run.
    pub left: u64,
    /// Total arrivals over the run.
    pub joined: u64,
    /// Total believed-slice changes over the run.
    pub slice_changes: u64,
    /// Swap proposals abandoned unresolved (liveness-tracking ordering
    /// variant only; 0 for every paper-faithful protocol).
    pub swaps_abandoned: u64,
    /// Attribute samples rejected by outlier-robust admission (defended
    /// ranking variants only; 0 otherwise).
    pub samples_rejected: u64,
}

impl Totals {
    /// Folds one cycle's statistics in.
    pub fn accumulate(&mut self, stats: &CycleStats) {
        self.swaps_proposed += stats.events.swaps_proposed;
        self.swaps_applied += stats.events.swaps_applied;
        self.swaps_useless += stats.events.swaps_useless;
        self.updates_sent += stats.events.updates_sent;
        self.samples_absorbed += stats.events.samples_absorbed;
        self.dropped_messages += stats.dropped_messages;
        self.left += stats.left as u64;
        self.joined += stats.joined as u64;
        self.slice_changes += stats.slice_changes as u64;
        self.swaps_abandoned += stats.events.swaps_abandoned;
        self.samples_rejected += stats.events.samples_rejected;
    }
}

/// Field order of the nine original counters, shared by both hand-written
/// impls below so they cannot drift apart.
const TOTALS_FIELDS: [&str; 9] = [
    "swaps_proposed",
    "swaps_applied",
    "swaps_useless",
    "updates_sent",
    "samples_absorbed",
    "dropped_messages",
    "left",
    "joined",
    "slice_changes",
];

impl serde::Serialize for Totals {
    /// Hand-written to keep the golden files stable: the nine original
    /// counters serialize exactly as the derived impl always did, and the
    /// defense counters (`swaps_abandoned`, `samples_rejected`) are appended
    /// **only when non-zero** — undefended scenarios can never record them,
    /// so their goldens stay byte-identical.
    fn to_value(&self) -> serde::Value {
        let base = [
            self.swaps_proposed,
            self.swaps_applied,
            self.swaps_useless,
            self.updates_sent,
            self.samples_absorbed,
            self.dropped_messages,
            self.left,
            self.joined,
            self.slice_changes,
        ];
        let mut map: Vec<(String, serde::Value)> = TOTALS_FIELDS
            .iter()
            .zip(base)
            .map(|(name, v)| (name.to_string(), serde::Serialize::to_value(&v)))
            .collect();
        for (name, v) in [
            ("swaps_abandoned", self.swaps_abandoned),
            ("samples_rejected", self.samples_rejected),
        ] {
            if v != 0 {
                map.push((name.to_string(), serde::Serialize::to_value(&v)));
            }
        }
        serde::Value::Map(map)
    }
}

impl serde::Deserialize for Totals {
    /// Mirror of the conditional [`serde::Serialize`] impl: the defense
    /// counters default to 0 when absent, so pre-defense goldens parse.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct Totals"))?;
        let strict = |name: &str| -> Result<u64, serde::Error> {
            serde::Deserialize::from_value(serde::__field(m, name))
                .map_err(|e| serde::Error::custom(format!("Totals.{name}: {e}")))
        };
        let optional = |name: &str| -> Result<u64, serde::Error> {
            match serde::__field(m, name) {
                serde::Value::Null => Ok(0),
                present => serde::Deserialize::from_value(present)
                    .map_err(|e| serde::Error::custom(format!("Totals.{name}: {e}"))),
            }
        };
        let mut base = [0u64; 9];
        for (slot, name) in base.iter_mut().zip(TOTALS_FIELDS) {
            *slot = strict(name)?;
        }
        let [swaps_proposed, swaps_applied, swaps_useless, updates_sent, samples_absorbed, dropped_messages, left, joined, slice_changes] =
            base;
        Ok(Totals {
            swaps_proposed,
            swaps_applied,
            swaps_useless,
            updates_sent,
            samples_absorbed,
            dropped_messages,
            left,
            joined,
            slice_changes,
            swaps_abandoned: optional("swaps_abandoned")?,
            samples_rejected: optional("samples_rejected")?,
        })
    }
}

/// The structured result of one scenario run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name (the report/golden file stem).
    pub name: String,
    /// Protocol label (`jk`, `mod-jk`, `ranking`, …).
    pub protocol: String,
    /// Run seed.
    pub seed: u64,
    /// Initial population size.
    pub initial_n: usize,
    /// Population size at the end of the run.
    pub final_n: usize,
    /// Slices in the partition at the end of the run.
    pub slices: usize,
    /// Run length in cycles.
    pub cycles: usize,
    /// The compiled event schedule the run executed (cycle-ordered).
    pub events: Vec<TimedEvent>,
    /// Sampled SDM/accuracy trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Whole-run event and message totals.
    pub totals: Totals,
    /// Final slice disorder measure.
    pub final_sdm: f64,
    /// Final global disorder measure.
    pub final_gdm: f64,
    /// Final full-population accuracy.
    pub final_accuracy: f64,
    /// Final honest-only accuracy.
    pub final_honest_accuracy: f64,
    /// Live lying nodes at the end of the run.
    pub liars: usize,
    /// Per-phase wall-clock totals over the run — host noise, present only
    /// when the scenario opted into timing; never part of goldens.
    pub phase_us: Option<PhaseTimings>,
}

impl ScenarioReport {
    /// Serializes the report as pretty-printed JSON (the golden format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The trajectory point with the worst (highest) SDM — scenarios shock
    /// the system and this is the shock's peak.
    pub fn peak_sdm(&self) -> Option<&TrajectoryPoint> {
        self.trajectory
            .iter()
            .max_by(|a, b| a.sdm.total_cmp(&b.sdm))
    }

    /// One-line human summary for matrix output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<24} {:>8} {:>7} {:>6} {:>10.3} {:>9.3} {:>9.3}",
            self.name,
            self.protocol,
            self.cycles,
            self.final_n,
            self.final_sdm,
            self.final_accuracy,
            self.final_honest_accuracy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::ScenarioEvent;

    fn report() -> ScenarioReport {
        ScenarioReport {
            name: "t".into(),
            protocol: "ranking".into(),
            seed: 7,
            initial_n: 100,
            final_n: 120,
            slices: 4,
            cycles: 50,
            events: vec![TimedEvent {
                cycle: 10,
                event: ScenarioEvent::FlashCrowd { fraction: 0.2 },
            }],
            trajectory: vec![
                TrajectoryPoint {
                    cycle: 10,
                    n: 120,
                    sdm: 5.0,
                    gdm: 1.0,
                    accuracy: 0.8,
                    honest_accuracy: 0.8,
                    liars: 0,
                    left: 0,
                    joined: 20,
                    slice_changes: 3,
                    samples_rejected: 0,
                    swaps_abandoned: 0,
                },
                TrajectoryPoint {
                    cycle: 50,
                    n: 120,
                    sdm: 1.5,
                    gdm: 0.0,
                    accuracy: 0.95,
                    honest_accuracy: 0.95,
                    liars: 0,
                    left: 0,
                    joined: 0,
                    slice_changes: 0,
                    samples_rejected: 0,
                    swaps_abandoned: 0,
                },
            ],
            totals: Totals::default(),
            final_sdm: 1.5,
            final_gdm: 0.0,
            final_accuracy: 0.95,
            final_honest_accuracy: 0.95,
            liars: 0,
            phase_us: None,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let r = report();
        let parsed = ScenarioReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn peak_sdm_finds_the_shock() {
        let r = report();
        assert_eq!(r.peak_sdm().unwrap().cycle, 10);
    }

    #[test]
    fn totals_accumulate_cycle_stats() {
        let mut totals = Totals::default();
        let mut stats = CycleStats {
            cycle: 1,
            n: 100,
            sdm: 0.0,
            gdm: 0.0,
            events: Default::default(),
            dropped_messages: 2,
            left: 1,
            joined: 3,
            slice_changes: 4,
            timings: None,
        };
        stats.events.updates_sent = 10;
        stats.events.swaps_abandoned = 1;
        stats.events.samples_rejected = 5;
        totals.accumulate(&stats);
        totals.accumulate(&stats);
        assert_eq!(totals.updates_sent, 20);
        assert_eq!(totals.dropped_messages, 4);
        assert_eq!(totals.joined, 6);
        assert_eq!(totals.slice_changes, 8);
        assert_eq!(totals.swaps_abandoned, 2);
        assert_eq!(totals.samples_rejected, 10);
    }

    #[test]
    fn defense_counters_serialize_only_when_nonzero() {
        // Zero defense counters → invisible on the wire, so every
        // pre-defense golden stays byte-identical.
        let quiet = Totals {
            swaps_proposed: 3,
            ..Totals::default()
        };
        let json = serde_json::to_string(&quiet).unwrap();
        assert!(!json.contains("swaps_abandoned"), "golden drift: {json}");
        assert!(!json.contains("samples_rejected"), "golden drift: {json}");
        let parsed: Totals = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, quiet);

        // Non-zero counters round-trip.
        let loud = Totals {
            swaps_abandoned: 7,
            samples_rejected: 11,
            ..quiet.clone()
        };
        let json = serde_json::to_string(&loud).unwrap();
        assert!(json.contains("\"swaps_abandoned\""));
        assert!(json.contains("\"samples_rejected\""));
        let parsed: Totals = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, loud);
    }

    #[test]
    fn trajectory_defense_counters_serialize_only_when_nonzero() {
        let mut point = report().trajectory[0].clone();
        let json = serde_json::to_string(&point).unwrap();
        assert!(!json.contains("samples_rejected"), "golden drift: {json}");
        assert!(!json.contains("swaps_abandoned"), "golden drift: {json}");
        let parsed: TrajectoryPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, point);

        point.samples_rejected = 4;
        point.swaps_abandoned = 2;
        let json = serde_json::to_string(&point).unwrap();
        assert!(json.contains("\"samples_rejected\""));
        assert!(json.contains("\"swaps_abandoned\""));
        let parsed: TrajectoryPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, point);
    }

    #[test]
    fn pre_defense_trajectory_json_still_parses() {
        // The exact shape the derived impl used to emit (no defense keys).
        let json = r#"{"cycle":10,"n":120,"sdm":5.0,"gdm":1.0,"accuracy":0.8,
            "honest_accuracy":0.8,"liars":0,"left":0,"joined":20,
            "slice_changes":3}"#;
        let parsed: TrajectoryPoint = serde_json::from_str(json).unwrap();
        assert_eq!(parsed, report().trajectory[0]);
        // A truncated record (missing an original column) is still an error.
        let truncated = r#"{"cycle":10}"#;
        let err = serde_json::from_str::<TrajectoryPoint>(truncated)
            .unwrap_err()
            .to_string();
        assert!(err.contains("TrajectoryPoint.n"), "got: {err}");
    }

    #[test]
    fn pre_defense_totals_json_still_parses() {
        // The exact shape the derived impl used to emit (no defense keys).
        let json = r#"{"swaps_proposed":1,"swaps_applied":2,"swaps_useless":3,
            "updates_sent":4,"samples_absorbed":5,"dropped_messages":6,
            "left":7,"joined":8,"slice_changes":9}"#;
        let parsed: Totals = serde_json::from_str(json).unwrap();
        assert_eq!(parsed.slice_changes, 9);
        assert_eq!(parsed.swaps_abandoned, 0);
        assert_eq!(parsed.samples_rejected, 0);
        // A truncated record (missing an original counter) is still an error.
        let truncated = r#"{"swaps_proposed":1}"#;
        let err = serde_json::from_str::<Totals>(truncated)
            .unwrap_err()
            .to_string();
        assert!(err.contains("swaps_applied"), "got: {err}");
    }
}
