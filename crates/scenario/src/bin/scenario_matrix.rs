//! Runs the committed scenario library and writes one JSON report per
//! scenario.
//!
//! ```text
//! scenario_matrix [--out DIR] [--check | --update] [--goldens DIR] [--list]
//! ```
//!
//! * default: run every scenario, write `<name>.json` under `--out`
//!   (default `scenario-reports/`), print a summary table.
//! * `--check`: additionally compare each report **byte-for-byte** against
//!   the committed golden under `--goldens` (default
//!   `docs/scenarios/goldens/`); exit non-zero on any mismatch, missing
//!   golden, or orphaned golden (a `.json` on disk no library scenario
//!   produces). This is the CI mode — reports are deterministic at any
//!   shard count, so a diff means behavior actually changed.
//! * `--update`: rewrite the goldens from this run (then commit the diff
//!   alongside the change that caused it).
//! * `--list`: print the scenario names and exit.

use dslice_scenario::library;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    goldens: PathBuf,
    check: bool,
    update: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("scenario-reports"),
        goldens: PathBuf::from("docs/scenarios/goldens"),
        check: false,
        update: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a directory")?),
            "--goldens" => {
                args.goldens = PathBuf::from(it.next().ok_or("--goldens needs a directory")?)
            }
            "--check" => args.check = true,
            "--update" => args.update = true,
            "--list" => args.list = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.check && args.update {
        return Err("--check and --update are mutually exclusive".into());
    }
    Ok(args)
}

/// First line where the two texts differ: 1-based line number plus the
/// expected and actual line contents (`None` past the shorter text).
fn first_divergence<'a>(
    golden: &'a str,
    actual: &'a str,
) -> (usize, Option<&'a str>, Option<&'a str>) {
    let mut golden_lines = golden.lines();
    let mut actual_lines = actual.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (golden_lines.next(), actual_lines.next()) {
            (Some(g), Some(a)) if g == a => continue,
            (g, a) => return (line, g, a),
        }
    }
}

/// Minimal diff artifact for CI upload: the divergence point plus a few
/// lines of context from each side. Not a unified diff — the reports are
/// line-stable JSON, so the first divergent line plus context is enough to
/// read the change without rerunning locally.
fn diff_artifact(name: &str, golden: &str, actual: &str) -> String {
    const CONTEXT: usize = 3;
    let (line, _, _) = first_divergence(golden, actual);
    let start = line.saturating_sub(CONTEXT + 1);
    let mut out = format!("scenario `{name}` diverged at line {line}\n");
    for (marker, text) in [("expected", golden), ("actual", actual)] {
        out.push_str(&format!(
            "--- {marker} (lines {}..{}) ---\n",
            start + 1,
            line + CONTEXT
        ));
        for l in text.lines().skip(start).take(2 * CONTEXT + 1) {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("scenario_matrix: {msg}");
            eprintln!(
                "usage: scenario_matrix [--out DIR] [--check | --update] [--goldens DIR] [--list]"
            );
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for name in library::names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    if let Err(e) = fs::create_dir_all(&args.out) {
        eprintln!("scenario_matrix: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if args.update {
        if let Err(e) = fs::create_dir_all(&args.goldens) {
            eprintln!(
                "scenario_matrix: cannot create {}: {e}",
                args.goldens.display()
            );
            return ExitCode::FAILURE;
        }
    }

    println!(
        "{:<24} {:>8} {:>7} {:>6} {:>10} {:>9} {:>9}",
        "scenario", "protocol", "cycles", "n", "final-sdm", "accuracy", "honest"
    );
    let mut failures = Vec::new();
    for scenario in library::all() {
        let name = scenario.name().to_string();
        let report = match scenario.run() {
            Ok(report) => report,
            Err(e) => {
                eprintln!("scenario_matrix: `{name}` failed: {e}");
                failures.push(name);
                continue;
            }
        };
        println!("{}", report.summary_line());
        let json = report.to_json();
        let out_path = args.out.join(format!("{name}.json"));
        if let Err(e) = fs::write(&out_path, &json) {
            eprintln!("scenario_matrix: cannot write {}: {e}", out_path.display());
            failures.push(name.clone());
            continue;
        }
        let golden_path = args.goldens.join(format!("{name}.json"));
        if args.update {
            if let Err(e) = fs::write(&golden_path, &json) {
                eprintln!(
                    "scenario_matrix: cannot write {}: {e}",
                    golden_path.display()
                );
                failures.push(name);
            }
        } else if args.check {
            match fs::read_to_string(&golden_path) {
                Ok(golden) if golden == json => {}
                Ok(golden) => {
                    let (line, expected, actual) = first_divergence(&golden, &json);
                    eprintln!(
                        "scenario_matrix: `{name}` diverged from {} at line {line}:\n\
                         \x20 expected: {}\n\
                         \x20 actual:   {}\n\
                         \x20 (run with --update to accept the new behavior)",
                        golden_path.display(),
                        expected.unwrap_or("<end of file>"),
                        actual.unwrap_or("<end of file>"),
                    );
                    let diff_path = args.out.join(format!("{name}.diff"));
                    if let Err(e) = fs::write(&diff_path, diff_artifact(&name, &golden, &json)) {
                        eprintln!("scenario_matrix: cannot write {}: {e}", diff_path.display());
                    }
                    failures.push(name);
                }
                Err(e) => {
                    eprintln!(
                        "scenario_matrix: `{name}` has no golden at {}: {e}",
                        golden_path.display()
                    );
                    failures.push(name);
                }
            }
        }
    }

    if args.check {
        // Orphaned goldens pin nothing: a scenario renamed or removed
        // without its golden leaves CI green while the file rots.
        let expected: std::collections::HashSet<String> = library::names()
            .into_iter()
            .map(|name| format!("{name}.json"))
            .collect();
        match fs::read_dir(&args.goldens) {
            Ok(entries) => {
                for entry in entries.flatten() {
                    let file_name = entry.file_name().to_string_lossy().into_owned();
                    if file_name.ends_with(".json") && !expected.contains(&file_name) {
                        eprintln!(
                            "scenario_matrix: orphaned golden {} (no library scenario \
                             produces it — delete it or restore the scenario)",
                            entry.path().display()
                        );
                        failures.push(file_name);
                    }
                }
            }
            Err(e) => {
                eprintln!(
                    "scenario_matrix: cannot list {}: {e}",
                    args.goldens.display()
                );
                failures.push("goldens-dir".into());
            }
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "scenario_matrix: {} scenario(s) failed: {failures:?}",
            failures.len()
        );
        ExitCode::FAILURE
    }
}
