//! # dslice-scenario
//!
//! A scripted scenario engine for the cycle simulator: a fluent, timed-event
//! DSL that compiles to a deterministic event schedule, a library of
//! committed adversarial workloads, and structured JSON reports with
//! SDM/accuracy trajectories.
//!
//! The paper's central claim is that gossip-based slicing stays accurate
//! *under dynamics* — churn, concurrency, skewed attribute distributions.
//! This crate turns each such condition (and their compositions, and the
//! natural adversarial extension: **lying nodes** that claim inflated
//! ranks) into a first-class, replayable scenario:
//!
//! ```
//! use dslice_scenario::Scenario;
//!
//! let report = Scenario::new("demo")
//!     .population(200)
//!     .slices(4)
//!     .seed(7)
//!     .for_cycles(120)
//!     .at_cycle(40)
//!     .flash_crowd(0.5)        // +50% of the population at once
//!     .at_cycle(80)
//!     .lying_nodes(0.1, 5.0)   // 10% start claiming 5× their rank
//!     .run()
//!     .unwrap();
//! assert!(report.final_honest_accuracy > report.final_accuracy - 1e-9);
//! ```
//!
//! ## Structure
//!
//! * [`dsl`] — the [`Scenario`] builder, [`ScenarioEvent`]s, and the
//!   compiled [`Schedule`] (cycle-ordered, population-consistent).
//! * [`script`] — [`ScriptedChurn`], the churn model executing a schedule's
//!   population events inside the engine's churn phase.
//! * [`runner`] — [`Scenario::run`]: drives the engine, applies control
//!   events (corruption, repartitioning), samples the trajectory.
//! * [`report`] — the serializable [`ScenarioReport`] (the golden format).
//! * [`library`] — the committed scenario matrix (see `docs/SCENARIOS.md`).
//!
//! The `scenario_matrix` binary runs the whole library, writes one JSON
//! report per scenario, and — in `--check` mode — compares them
//! byte-for-byte against the goldens under `docs/scenarios/goldens/`.
//!
//! ## Determinism
//!
//! A report is pure simulated state: `(scenario, seed)` fully determines it
//! at **any** shard count. Event selection (leaver draws, regional band
//! placement, corruption targets) flows through the engine's sequential
//! seeded RNG; node-level work stays on per-node counter streams. The one
//! exception is the opt-in `phase_us` wall-clock block, which golden
//! scenarios keep disabled.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod dsl;
pub mod library;
pub mod report;
pub mod runner;
pub mod script;

pub use dsl::{
    fraction_count, population_delta, PopulationPoint, Scenario, ScenarioEvent, Schedule,
    TimedEvent,
};
pub use report::{ScenarioReport, Totals, TrajectoryPoint};
pub use script::ScriptedChurn;
