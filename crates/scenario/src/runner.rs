//! Executes a compiled scenario against the cycle engine.
//!
//! The runner owns the split the DSL promises: churn events ride the
//! engine's churn phase through [`ScriptedChurn`], while control events —
//! [`Corrupt`](crate::ScenarioEvent::Corrupt),
//! [`Repartition`](crate::ScenarioEvent::Repartition) — are applied to the
//! engine immediately **before** their cycle steps, so "at cycle c" means
//! the same thing for every event kind: in effect for cycle `c` and all
//! later ones.

use crate::dsl::{Scenario, ScenarioEvent, Schedule};
use crate::report::{ScenarioReport, Totals, TrajectoryPoint};
use crate::script::ScriptedChurn;
use dslice_core::{Partition, Result};
use dslice_obs::{FlightRecorder, TraceConfig};
use dslice_sim::{Engine, PhaseTimings};

impl Scenario {
    /// Compiles and runs the scenario, returning its structured report.
    ///
    /// The run is fully determined by `(scenario, seed)` and byte-identical
    /// at any [`shards`](dslice_sim::SimConfig::shards) setting, except for
    /// the wall-clock `phase_ns` block when
    /// [`time_phases`](dslice_sim::SimConfig::time_phases) is on.
    pub fn run(&self) -> Result<ScenarioReport> {
        let schedule = self.compile()?;
        Ok(self.execute(&schedule, None)?.0)
    }

    /// [`run`](Scenario::run) with a flight recorder attached: returns the
    /// report **and** the recorder holding the run's trace events.
    ///
    /// Tracing is observational only — the report is byte-identical to an
    /// untraced [`run`](Scenario::run) (the golden-identity test pins this).
    pub fn run_traced(&self, trace: TraceConfig) -> Result<(ScenarioReport, FlightRecorder)> {
        let schedule = self.compile()?;
        let (report, recorder) = self.execute(&schedule, Some(trace))?;
        Ok((
            report,
            recorder.unwrap_or_else(|| FlightRecorder::new(TraceConfig::off())),
        ))
    }

    fn execute(
        &self,
        schedule: &Schedule,
        trace: Option<TraceConfig>,
    ) -> Result<(ScenarioReport, Option<FlightRecorder>)> {
        let config = self.config().clone();
        let mut engine = Engine::new(config.clone(), self.protocol())?
            .with_churn(Box::new(ScriptedChurn::new(schedule, config.distribution)));
        if let Some(cfg) = trace {
            engine.set_tracer(cfg);
        }

        // Control events, cycle-ordered (the schedule already is).
        let controls: Vec<(usize, &ScenarioEvent)> = schedule
            .events
            .iter()
            .filter(|te| !te.event.is_churn())
            .map(|te| (te.cycle, &te.event))
            .collect();
        let mut next_control = 0usize;

        let mut totals = Totals::default();
        let mut trajectory = Vec::new();
        let mut phase_ns = config.time_phases.then(PhaseTimings::default);
        let mut slices = config.partition.len();

        for cycle in 1..=schedule.cycles {
            while next_control < controls.len() && controls[next_control].0 == cycle {
                match controls[next_control].1 {
                    ScenarioEvent::Corrupt {
                        fraction,
                        inflation,
                    } => {
                        engine.corrupt_nodes(*fraction, *inflation);
                    }
                    ScenarioEvent::CorruptBoundary {
                        fraction,
                        inflation,
                    } => {
                        engine.corrupt_boundary_nodes(*fraction, *inflation);
                    }
                    ScenarioEvent::Repartition { slices: k } => {
                        engine.set_partition(Partition::equal(*k)?);
                        slices = *k;
                    }
                    ScenarioEvent::PartitionBands { bands, heal_at } => {
                        engine.set_network_partition(*bands, *heal_at)?;
                    }
                    ScenarioEvent::Heal => engine.heal_network_partition(),
                    ScenarioEvent::DropRate { rate } => engine.set_drop_rate(*rate)?,
                    ScenarioEvent::RegionLatency { region, model } => {
                        engine.set_region_latency(*region, *model)?;
                    }
                    ScenarioEvent::AdaptiveLiars { fraction, attacker } => {
                        engine.corrupt_adaptive(*fraction, *attacker);
                    }
                    _ => unreachable!("is_churn() filtered everything else"),
                }
                next_control += 1;
            }

            let stats = engine.step();
            totals.accumulate(&stats);
            if let (Some(acc), Some(t)) = (phase_ns.as_mut(), stats.timings.as_ref()) {
                acc.accumulate(t);
            }
            if cycle.is_multiple_of(self.sampling()) || cycle == schedule.cycles {
                trajectory.push(TrajectoryPoint {
                    cycle,
                    n: stats.n,
                    sdm: stats.sdm,
                    gdm: stats.gdm,
                    accuracy: engine.accuracy(),
                    honest_accuracy: engine.honest_accuracy(),
                    liars: engine.liar_count(),
                    left: stats.left,
                    joined: stats.joined,
                    slice_changes: stats.slice_changes,
                    samples_rejected: if self.defense_tracking() {
                        stats.events.samples_rejected
                    } else {
                        0
                    },
                    swaps_abandoned: if self.defense_tracking() {
                        stats.events.swaps_abandoned
                    } else {
                        0
                    },
                });
            }
        }

        let report = ScenarioReport {
            name: self.name().to_string(),
            protocol: self.protocol().label().to_string(),
            seed: config.seed,
            initial_n: config.n,
            final_n: engine.population(),
            slices,
            cycles: schedule.cycles,
            events: schedule.events.clone(),
            trajectory,
            totals,
            final_sdm: engine.sdm(),
            final_gdm: engine.gdm(),
            final_accuracy: engine.accuracy(),
            final_honest_accuracy: engine.honest_accuracy(),
            liars: engine.liar_count(),
            phase_ns,
        };
        Ok((report, engine.take_recorder()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_sim::{AttackerSpec, AttributeDistribution, LatencyModel, ProtocolKind};

    fn small(name: &str) -> Scenario {
        Scenario::new(name)
            .population(150)
            .view_size(8)
            .slices(4)
            .seed(11)
            .sample_every(5)
            .for_cycles(60)
    }

    #[test]
    fn static_run_converges_and_reports() {
        let report = small("static").run().unwrap();
        assert_eq!(report.final_n, 150);
        assert_eq!(report.cycles, 60);
        assert_eq!(report.trajectory.len(), 12);
        let first = &report.trajectory[0];
        let last = report.trajectory.last().unwrap();
        assert!(last.sdm < first.sdm, "disorder must fall over a static run");
        assert_eq!(report.final_accuracy, report.final_honest_accuracy);
        assert_eq!(report.liars, 0);
        assert!(report.phase_ns.is_none(), "timings stay off by default");
    }

    #[test]
    fn population_matches_the_projection() {
        let scenario = small("pop")
            .at_cycle(10)
            .flash_crowd(0.5)
            .at_cycle(30)
            .mass_leave(0.2);
        let schedule = scenario.compile().unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.final_n, schedule.final_population());
        // The trajectory's population column agrees at the sampled cycles.
        for p in &report.trajectory {
            let projected = schedule
                .projection
                .iter()
                .take_while(|pp| pp.cycle <= p.cycle)
                .last()
                .map_or(schedule.initial_n, |pp| pp.n);
            assert_eq!(p.n, projected, "cycle {}", p.cycle);
        }
    }

    #[test]
    fn corruption_takes_effect_at_its_cycle() {
        let report = small("liars")
            .at_cycle(20)
            .lying_nodes(0.2, 8.0)
            .run()
            .unwrap();
        assert_eq!(report.liars, 30);
        for p in &report.trajectory {
            if p.cycle < 20 {
                assert_eq!(p.liars, 0, "cycle {}", p.cycle);
            } else {
                assert_eq!(p.liars, 30, "cycle {}", p.cycle);
            }
        }
        assert!(
            report.final_accuracy < report.final_honest_accuracy,
            "liars must drag the overall accuracy down"
        );
    }

    #[test]
    fn fault_events_drive_the_engine() {
        let report = small("faults")
            .at_cycle(10)
            .partition_bands(2)
            .at_cycle(12)
            .region_latency(1, LatencyModel::Fixed { cycles: 2 })
            .at_cycle(30)
            .heal()
            .at_cycle(35)
            .drop_rate(0.2)
            .run()
            .unwrap();
        assert!(
            report.totals.dropped_messages > 0,
            "severed and dropped messages must surface in the totals"
        );
        // The same scenario without faults drops nothing.
        let quiet = small("faults").run().unwrap();
        assert_eq!(quiet.totals.dropped_messages, 0);
    }

    #[test]
    fn adaptive_liars_take_effect_at_their_cycle() {
        let report = small("adaptive")
            .with_protocol(ProtocolKind::trimmed(32, 0.1))
            .track_defense()
            .at_cycle(20)
            .adaptive_liars(0.2, AttackerSpec::Colluder { target: 0.95 })
            .run()
            .unwrap();
        assert_eq!(report.liars, 30);
        for p in &report.trajectory {
            if p.cycle < 20 {
                assert_eq!(p.liars, 0, "cycle {}", p.cycle);
            } else {
                assert_eq!(p.liars, 30, "cycle {}", p.cycle);
            }
        }
        assert!(
            report.totals.samples_rejected > 0,
            "the trim defense must reject samples"
        );
        assert!(
            report.trajectory.iter().any(|p| p.samples_rejected > 0),
            "per-cycle defense counters must surface in the trajectory"
        );
        // Without the opt-in the trajectory keeps its pre-defense shape,
        // even though the protocol rejects samples — this is what holds the
        // legacy goldens byte-stable.
        let untracked = small("adaptive")
            .with_protocol(ProtocolKind::trimmed(32, 0.1))
            .at_cycle(20)
            .adaptive_liars(0.2, AttackerSpec::Colluder { target: 0.95 })
            .run()
            .unwrap();
        assert!(untracked.totals.samples_rejected > 0);
        assert!(untracked
            .trajectory
            .iter()
            .all(|p| p.samples_rejected == 0 && p.swaps_abandoned == 0));
    }

    #[test]
    fn repartition_switches_the_reported_slices() {
        let report = small("repart").at_cycle(30).repartition(2).run().unwrap();
        assert_eq!(report.slices, 2);
    }

    #[test]
    fn runs_are_deterministic_and_shard_invariant() {
        let scenario = || {
            small("det")
                .at_cycle(10)
                .regional_failure(0.2)
                .at_cycle(20)
                .lying_nodes(0.1, 4.0)
                .at_cycle(40)
                .flash_crowd(0.3)
        };
        let a = scenario().run().unwrap();
        let b = scenario().run().unwrap();
        assert_eq!(a, b, "identical scenario, identical report");
        let mut cfg = scenario().config().clone();
        cfg.shards = 4;
        let c = scenario().with_config(cfg).run().unwrap();
        assert_eq!(a.to_json(), c.to_json(), "shard count must be invisible");
    }

    #[test]
    fn shifted_distribution_changes_arrivals() {
        // Replace most of the population with joiners from a far-away
        // uniform band; the engine must keep running and end at full size.
        let mut s = small("shift")
            .at_cycle(10)
            .shift_distribution(AttributeDistribution::Uniform { lo: 1e6, hi: 2e6 });
        for c in (12..=40).step_by(2) {
            s = s.at_cycle(c).leave(10).join(10);
        }
        let report = s.run().unwrap();
        assert_eq!(report.final_n, 150);
        assert_eq!(report.totals.joined, 150);
        assert_eq!(report.totals.left, 150);
    }

    #[test]
    fn ordering_protocol_scenarios_run_too() {
        let report = small("mod-jk")
            .with_protocol(ProtocolKind::ModJk)
            .at_cycle(20)
            .lying_nodes(0.2, 10.0)
            .run()
            .unwrap();
        assert_eq!(report.protocol, "mod-jk");
        assert!(report.totals.swaps_proposed > 0);
    }
}
