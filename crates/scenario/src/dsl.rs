//! The fluent, timed-event scenario DSL.
//!
//! A [`Scenario`] is a simulation configuration plus a list of events pinned
//! to cycles, written in builder style:
//!
//! ```
//! use dslice_scenario::Scenario;
//!
//! let scenario = Scenario::new("doc-example")
//!     .population(200)
//!     .slices(4)
//!     .for_cycles(120)
//!     .at_cycle(40)
//!     .flash_crowd(0.5)
//!     .at_cycle(80)
//!     .regional_failure(0.2);
//! let schedule = scenario.compile().unwrap();
//! assert_eq!(schedule.events.len(), 2);
//! ```
//!
//! [`Scenario::compile`] validates the program and produces a deterministic
//! [`Schedule`]: events sorted by cycle (stable within a cycle, preserving
//! authoring order) together with a population projection proving the
//! population never empties. Execution ([`Scenario::run`]) splits the
//! schedule into *churn events*, which become a
//! [`ScriptedChurn`](crate::ScriptedChurn) model driven by the engine's
//! churn phase, and *control events* (corruption, repartitioning), which the
//! runner applies to the engine immediately before the event's cycle
//! executes.

use dslice_core::{Error, Result};
use dslice_sim::{AttackerSpec, AttributeDistribution, LatencyModel, ProtocolKind, SimConfig};
use serde::{Deserialize, Serialize};

/// One scenario event. Cycle placement lives in [`TimedEvent`].
///
/// Fraction-based population events are measured against the population at
/// the **start of the event's cycle** (before any same-cycle arrivals or
/// departures); when several events share a cycle, departures are capped so
/// at least one node always survives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// `count` nodes join, attributes drawn from the current joiner
    /// distribution (the base distribution until a
    /// [`ShiftDistribution`](ScenarioEvent::ShiftDistribution) replaces it).
    Join {
        /// Number of joining nodes.
        count: usize,
    },
    /// `count` uniformly random nodes leave.
    Leave {
        /// Number of departing nodes.
        count: usize,
    },
    /// A flash crowd: `round(fraction × population)` nodes join at once
    /// (at least one). `1.0` doubles the population.
    FlashCrowd {
        /// Arrivals as a fraction of the start-of-cycle population.
        fraction: f64,
    },
    /// A mass departure: `round(fraction × population)` uniformly random
    /// nodes leave at once.
    MassLeave {
        /// Departures as a fraction of the start-of-cycle population.
        fraction: f64,
    },
    /// A correlated regional failure: a **contiguous attribute band** of
    /// `round(fraction × population)` nodes crashes together (the band's
    /// position is drawn deterministically from the run seed) — e.g. one
    /// data center, hosting machines of similar capacity, going dark.
    RegionalFailure {
        /// Band width as a fraction of the start-of-cycle population.
        fraction: f64,
    },
    /// Replaces the joiner attribute distribution from this cycle on: all
    /// later joins (scripted or flash) sample the new shape.
    ShiftDistribution {
        /// The distribution future joiners are drawn from.
        distribution: AttributeDistribution,
    },
    /// Converts `round(fraction × still-honest population)` nodes into
    /// rank-inflating liars (see `dslice_sim::Engine::corrupt_nodes`).
    Corrupt {
        /// Fraction of the still-honest population to corrupt.
        fraction: f64,
        /// Rank inflation factor (≥ 1; claims clamp to rank 1.0).
        inflation: f64,
    },
    /// Converts the honest nodes whose *true* ranks sit nearest the slice
    /// boundaries into rank-inflating liars (see
    /// `dslice_sim::Engine::corrupt_boundary_nodes`) — the targeted
    /// adversary: boundary nodes buy the most slice displacement per
    /// corrupted node.
    CorruptBoundary {
        /// Fraction of the still-honest population to corrupt.
        fraction: f64,
        /// Rank inflation factor (≥ 1; claims clamp to rank 1.0).
        inflation: f64,
    },
    /// Installs a fresh equal partition with `slices` slices on every node
    /// (§3.2's re-broadcast of global knowledge).
    Repartition {
        /// Number of equal slices in the new partition.
        slices: usize,
    },
    /// Partitions the network into contiguous attribute bands: cross-band
    /// protocol messages and membership exchanges are severed until a
    /// [`Heal`](ScenarioEvent::Heal) event or the optional `heal_at` cycle
    /// (see `dslice_sim::Engine::set_network_partition`).
    PartitionBands {
        /// Number of equal-population attribute bands (≥ 2).
        bands: usize,
        /// Cycle at which the partition heals itself, if scheduled (must
        /// fall strictly after the event's own cycle).
        heal_at: Option<usize>,
    },
    /// Tears the installed network partition down (with its region latency
    /// overrides). A no-op when nothing is partitioned.
    Heal,
    /// Sets the per-message drop probability from this cycle on (`0.0`
    /// turns message drop back off).
    DropRate {
        /// Probability in `[0, 1)` that a routed message is lost.
        rate: f64,
    },
    /// Overrides the delivery latency of messages *into* one band of the
    /// installed partition — an asymmetric long-haul link. Requires a
    /// partition that is still holding at this cycle.
    RegionLatency {
        /// Band index (0-based) of the recipient region.
        region: usize,
        /// The latency model messages into the region follow.
        model: LatencyModel,
    },
    /// Converts `round(fraction × still-honest population)` nodes into
    /// adaptive adversaries running the given attacker strategy (see
    /// `dslice_sim::Engine::corrupt_adaptive`) — liars that probe the
    /// defenses instead of inflating blindly.
    AdaptiveLiars {
        /// Fraction of the still-honest population to corrupt.
        fraction: f64,
        /// The adaptive strategy the corrupted nodes run.
        attacker: AttackerSpec,
    },
}

impl ScenarioEvent {
    /// Whether this event is executed by the churn phase (via
    /// [`ScriptedChurn`](crate::ScriptedChurn)) rather than applied to the
    /// engine directly.
    pub fn is_churn(&self) -> bool {
        !matches!(
            self,
            ScenarioEvent::Corrupt { .. }
                | ScenarioEvent::CorruptBoundary { .. }
                | ScenarioEvent::Repartition { .. }
                | ScenarioEvent::PartitionBands { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::DropRate { .. }
                | ScenarioEvent::RegionLatency { .. }
                | ScenarioEvent::AdaptiveLiars { .. }
        )
    }

    /// Short label for summaries and progress output.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioEvent::Join { .. } => "join",
            ScenarioEvent::Leave { .. } => "leave",
            ScenarioEvent::FlashCrowd { .. } => "flash-crowd",
            ScenarioEvent::MassLeave { .. } => "mass-leave",
            ScenarioEvent::RegionalFailure { .. } => "regional-failure",
            ScenarioEvent::ShiftDistribution { .. } => "shift-distribution",
            ScenarioEvent::Corrupt { .. } => "corrupt",
            ScenarioEvent::CorruptBoundary { .. } => "corrupt-boundary",
            ScenarioEvent::Repartition { .. } => "repartition",
            ScenarioEvent::PartitionBands { .. } => "partition-bands",
            ScenarioEvent::Heal => "heal",
            ScenarioEvent::DropRate { .. } => "drop-rate",
            ScenarioEvent::RegionLatency { .. } => "region-latency",
            ScenarioEvent::AdaptiveLiars { .. } => "adaptive-liars",
        }
    }
}

/// An event pinned to a 1-based cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// The cycle (1-based) at whose start the event takes effect.
    pub cycle: usize,
    /// The event itself.
    pub event: ScenarioEvent,
}

/// Number of nodes a fraction-based event touches: `round(fraction × n)`,
/// at least 1 while the fraction is positive (so small test populations
/// still see the event) — the same convention as
/// `dslice_sim::churn::ChurnSchedule::count`.
pub fn fraction_count(n: usize, fraction: f64) -> usize {
    if fraction <= 0.0 || n == 0 {
        return 0;
    }
    ((n as f64 * fraction).round() as usize).max(1)
}

/// How many nodes `event` removes / adds given the start-of-cycle
/// population `n0`. Returns `(leave, join)`; exactly one side is non-zero
/// for population events, both are zero for non-population events.
pub fn population_delta(event: &ScenarioEvent, n0: usize) -> (usize, usize) {
    match event {
        ScenarioEvent::Join { count } => (0, *count),
        ScenarioEvent::Leave { count } => (*count, 0),
        ScenarioEvent::FlashCrowd { fraction } => (0, fraction_count(n0, *fraction)),
        ScenarioEvent::MassLeave { fraction } | ScenarioEvent::RegionalFailure { fraction } => {
            (fraction_count(n0, *fraction), 0)
        }
        ScenarioEvent::ShiftDistribution { .. }
        | ScenarioEvent::Corrupt { .. }
        | ScenarioEvent::CorruptBoundary { .. }
        | ScenarioEvent::Repartition { .. }
        | ScenarioEvent::PartitionBands { .. }
        | ScenarioEvent::Heal
        | ScenarioEvent::DropRate { .. }
        | ScenarioEvent::RegionLatency { .. }
        | ScenarioEvent::AdaptiveLiars { .. } => (0, 0),
    }
}

/// Projected population at the end of one cycle, in `(cycle, n)` form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationPoint {
    /// The cycle the events fired in.
    pub cycle: usize,
    /// Projected population after the cycle's churn.
    pub n: usize,
}

/// A compiled scenario: the validated, cycle-ordered event schedule plus
/// the population projection [`Scenario::compile`] proved consistent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Events sorted by cycle; authoring order is preserved within a cycle.
    pub events: Vec<TimedEvent>,
    /// Total run length in cycles.
    pub cycles: usize,
    /// Initial population size.
    pub initial_n: usize,
    /// Projected population after each cycle that has population events
    /// (cycles without such events keep the previous value and are omitted).
    pub projection: Vec<PopulationPoint>,
}

impl Schedule {
    /// Projected population after the last event cycle (and hence at the end
    /// of the run — scripted churn is the only churn source).
    pub fn final_population(&self) -> usize {
        self.projection.last().map_or(self.initial_n, |p| p.n)
    }

    /// Smallest projected population over the whole run (≥ 1 by
    /// construction — compilation rejects schedules that empty the system).
    pub fn min_population(&self) -> usize {
        self.projection
            .iter()
            .map(|p| p.n)
            .min()
            .unwrap_or(self.initial_n)
    }
}

/// A fluent scenario program: configuration, run length, and timed events.
///
/// See the [module docs](self) for an example. The builder keeps a cycle
/// *cursor*: [`at_cycle`](Scenario::at_cycle) moves it, event methods append
/// at it, so consecutive events at one cycle read naturally.
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    config: SimConfig,
    protocol: ProtocolKind,
    cycles: usize,
    sample_every: usize,
    track_defense: bool,
    cursor: usize,
    events: Vec<TimedEvent>,
}

impl Scenario {
    /// Creates a scenario with the default simulator configuration (the
    /// ranking protocol, 1000 nodes, 10 equal slices), a 200-cycle run and
    /// a trajectory sample every 10 cycles.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            config: SimConfig::default(),
            protocol: ProtocolKind::Ranking,
            cycles: 200,
            sample_every: 10,
            track_defense: false,
            cursor: 1,
            events: Vec::new(),
        }
    }

    /// The scenario's name (kebab-case by convention; used as the report
    /// and golden file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The protocol under test.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Total run length in cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The authored events, in authoring order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    // ----- configuration ---------------------------------------------------

    /// Replaces the whole simulator configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the protocol under test.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the initial population size.
    pub fn population(mut self, n: usize) -> Self {
        self.config.n = n;
        self
    }

    /// Sets the view size.
    pub fn view_size(mut self, c: usize) -> Self {
        self.config.view_size = c;
        self
    }

    /// Sets an equal partition with `slices` slices.
    ///
    /// # Panics
    /// Panics if `slices` is 0 (an unconditionally invalid partition).
    pub fn slices(mut self, slices: usize) -> Self {
        self.config.partition = dslice_core::Partition::equal(slices).expect("slices must be ≥ 1");
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the base attribute distribution (initial population and joiners
    /// until a [`shift_distribution`](Scenario::shift_distribution) event).
    pub fn distribution(mut self, distribution: AttributeDistribution) -> Self {
        self.config.distribution = distribution;
        self
    }

    /// Sets the total run length.
    pub fn for_cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles;
        self
    }

    /// Sets the trajectory sampling cadence (every `k` cycles; the final
    /// cycle is always sampled).
    pub fn sample_every(mut self, k: usize) -> Self {
        self.sample_every = k;
        self
    }

    /// The trajectory sampling cadence.
    pub fn sampling(&self) -> usize {
        self.sample_every
    }

    /// Records the per-cycle defense counters (`samples_rejected`,
    /// `swaps_abandoned`) in the sampled trajectory. Opt-in — like
    /// `time_phases`, tracking is off by default so reports (and goldens)
    /// authored before the counters existed stay byte-identical.
    pub fn track_defense(mut self) -> Self {
        self.track_defense = true;
        self
    }

    /// Whether the trajectory records per-cycle defense counters.
    pub fn defense_tracking(&self) -> bool {
        self.track_defense
    }

    // ----- the timed-event language ---------------------------------------

    /// Moves the cursor: subsequent events fire at the start of `cycle`
    /// (1-based).
    pub fn at_cycle(mut self, cycle: usize) -> Self {
        self.cursor = cycle;
        self
    }

    fn push(mut self, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent {
            cycle: self.cursor,
            event,
        });
        self
    }

    /// `count` nodes join at the cursor cycle.
    pub fn join(self, count: usize) -> Self {
        self.push(ScenarioEvent::Join { count })
    }

    /// `count` uniformly random nodes leave at the cursor cycle.
    pub fn leave(self, count: usize) -> Self {
        self.push(ScenarioEvent::Leave { count })
    }

    /// A flash crowd at the cursor cycle (see
    /// [`ScenarioEvent::FlashCrowd`]).
    pub fn flash_crowd(self, fraction: f64) -> Self {
        self.push(ScenarioEvent::FlashCrowd { fraction })
    }

    /// A mass departure at the cursor cycle (see
    /// [`ScenarioEvent::MassLeave`]).
    pub fn mass_leave(self, fraction: f64) -> Self {
        self.push(ScenarioEvent::MassLeave { fraction })
    }

    /// A correlated regional failure at the cursor cycle (see
    /// [`ScenarioEvent::RegionalFailure`]).
    pub fn regional_failure(self, fraction: f64) -> Self {
        self.push(ScenarioEvent::RegionalFailure { fraction })
    }

    /// Shifts the joiner distribution from the cursor cycle on (see
    /// [`ScenarioEvent::ShiftDistribution`]).
    pub fn shift_distribution(self, distribution: AttributeDistribution) -> Self {
        self.push(ScenarioEvent::ShiftDistribution { distribution })
    }

    /// Corrupts a fraction of the population into rank-inflating liars at
    /// the cursor cycle (see [`ScenarioEvent::Corrupt`]).
    pub fn lying_nodes(self, fraction: f64, inflation: f64) -> Self {
        self.push(ScenarioEvent::Corrupt {
            fraction,
            inflation,
        })
    }

    /// Corrupts the boundary-nearest honest nodes into rank-inflating liars
    /// at the cursor cycle (see [`ScenarioEvent::CorruptBoundary`]).
    pub fn lying_boundary_nodes(self, fraction: f64, inflation: f64) -> Self {
        self.push(ScenarioEvent::CorruptBoundary {
            fraction,
            inflation,
        })
    }

    /// Re-partitions into `slices` equal slices at the cursor cycle (see
    /// [`ScenarioEvent::Repartition`]).
    pub fn repartition(self, slices: usize) -> Self {
        self.push(ScenarioEvent::Repartition { slices })
    }

    /// Partitions the network into `bands` attribute bands at the cursor
    /// cycle; the partition holds until a [`heal`](Scenario::heal) event
    /// (see [`ScenarioEvent::PartitionBands`]).
    pub fn partition_bands(self, bands: usize) -> Self {
        self.push(ScenarioEvent::PartitionBands {
            bands,
            heal_at: None,
        })
    }

    /// Partitions the network at the cursor cycle, healing automatically at
    /// the start of cycle `heal_at` (see
    /// [`ScenarioEvent::PartitionBands`]).
    pub fn partition_bands_until(self, bands: usize, heal_at: usize) -> Self {
        self.push(ScenarioEvent::PartitionBands {
            bands,
            heal_at: Some(heal_at),
        })
    }

    /// Heals the installed network partition at the cursor cycle (see
    /// [`ScenarioEvent::Heal`]).
    pub fn heal(self) -> Self {
        self.push(ScenarioEvent::Heal)
    }

    /// Sets the per-message drop probability from the cursor cycle on (see
    /// [`ScenarioEvent::DropRate`]).
    pub fn drop_rate(self, rate: f64) -> Self {
        self.push(ScenarioEvent::DropRate { rate })
    }

    /// Overrides the delivery latency into band `region` of the installed
    /// partition from the cursor cycle on (see
    /// [`ScenarioEvent::RegionLatency`]).
    pub fn region_latency(self, region: usize, model: LatencyModel) -> Self {
        self.push(ScenarioEvent::RegionLatency { region, model })
    }

    /// Corrupts a fraction of the honest population into adaptive
    /// adversaries at the cursor cycle (see
    /// [`ScenarioEvent::AdaptiveLiars`]).
    pub fn adaptive_liars(self, fraction: f64, attacker: AttackerSpec) -> Self {
        self.push(ScenarioEvent::AdaptiveLiars { fraction, attacker })
    }

    // ----- compilation -----------------------------------------------------

    /// Validates the program and compiles it into a deterministic
    /// [`Schedule`]: events stably sorted by cycle, with a population
    /// projection proving no cycle empties the system.
    pub fn compile(&self) -> Result<Schedule> {
        self.config.validate()?;
        self.protocol.validate()?;
        if self.cycles == 0 {
            return Err(Error::InvalidFractions(
                "a scenario must run for at least one cycle".into(),
            ));
        }
        if self.sample_every == 0 {
            return Err(Error::InvalidFractions(
                "the sampling cadence must be at least 1".into(),
            ));
        }
        for te in &self.events {
            if te.cycle == 0 || te.cycle > self.cycles {
                return Err(Error::InvalidFractions(format!(
                    "event `{}` at cycle {} falls outside the run (1..={})",
                    te.event.label(),
                    te.cycle,
                    self.cycles
                )));
            }
            self.validate_event(&te.event)?;
        }

        let mut events = self.events.clone();
        events.sort_by_key(|te| te.cycle); // stable: authoring order kept

        // Partition-consistency scan (events are now cycle-ordered, matching
        // the order the runner applies them): a region latency override must
        // land inside a partition still holding at its cycle, and a
        // scheduled heal must fall strictly after the install cycle — the
        // engine would reject these at runtime, but rejecting them here
        // names the offending event before anything runs.
        let mut bands_now: Option<(usize, Option<usize>)> = None;
        for te in &events {
            if let Some((_, Some(at))) = bands_now {
                if te.cycle >= at {
                    bands_now = None; // the scheduled heal fired first
                }
            }
            match &te.event {
                ScenarioEvent::PartitionBands { bands, heal_at } => {
                    if let Some(at) = heal_at {
                        if *at <= te.cycle {
                            return Err(Error::InvalidFault(format!(
                                "partition installed at cycle {} cannot heal at cycle {at}",
                                te.cycle
                            )));
                        }
                    }
                    bands_now = Some((*bands, *heal_at));
                }
                ScenarioEvent::Heal => bands_now = None,
                ScenarioEvent::RegionLatency { region, .. } => match bands_now {
                    Some((bands, _)) if *region < bands => {}
                    Some((bands, _)) => {
                        return Err(Error::InvalidFault(format!(
                            "region {region} at cycle {} is out of range for {bands} bands",
                            te.cycle
                        )))
                    }
                    None => {
                        return Err(Error::InvalidFault(format!(
                            "region latency at cycle {} has no installed partition to override",
                            te.cycle
                        )))
                    }
                },
                _ => {}
            }
        }

        // Population projection: replay the exact arithmetic the scripted
        // churn model will use — fraction counts against the start-of-cycle
        // population, departures capped so one node always survives.
        let mut projection = Vec::new();
        let mut n = self.config.n;
        let mut i = 0;
        while i < events.len() {
            let cycle = events[i].cycle;
            let n0 = n;
            let mut remaining = n0;
            let mut joined = 0usize;
            while i < events.len() && events[i].cycle == cycle {
                let (leave, join) = population_delta(&events[i].event, n0);
                if leave >= remaining {
                    return Err(Error::InvalidFractions(format!(
                        "event `{}` at cycle {cycle} would empty the population \
                         ({remaining} alive, {leave} leaving)",
                        events[i].event.label()
                    )));
                }
                remaining -= leave;
                joined += join;
                i += 1;
            }
            let after = remaining + joined;
            if after != n {
                projection.push(PopulationPoint { cycle, n: after });
            }
            n = after;
        }

        Ok(Schedule {
            events,
            cycles: self.cycles,
            initial_n: self.config.n,
            projection,
        })
    }

    fn validate_event(&self, event: &ScenarioEvent) -> Result<()> {
        let bad = |msg: String| Err(Error::InvalidFractions(msg));
        match event {
            ScenarioEvent::Join { count } | ScenarioEvent::Leave { count } => {
                if *count == 0 {
                    return bad(format!("`{}` of zero nodes is a no-op", event.label()));
                }
            }
            ScenarioEvent::FlashCrowd { fraction } => {
                if !fraction.is_finite() || *fraction <= 0.0 {
                    return bad(format!(
                        "flash-crowd fraction must be positive and finite, got {fraction}"
                    ));
                }
            }
            ScenarioEvent::MassLeave { fraction } | ScenarioEvent::RegionalFailure { fraction } => {
                if !(0.0..1.0).contains(fraction) || *fraction <= 0.0 {
                    return bad(format!(
                        "`{}` fraction must lie in (0, 1), got {fraction}",
                        event.label()
                    ));
                }
            }
            ScenarioEvent::ShiftDistribution { distribution } => {
                distribution.validate()?;
            }
            ScenarioEvent::Corrupt {
                fraction,
                inflation,
            }
            | ScenarioEvent::CorruptBoundary {
                fraction,
                inflation,
            } => {
                if !(0.0..=1.0).contains(fraction) || *fraction <= 0.0 {
                    return bad(format!(
                        "`{}` fraction must lie in (0, 1], got {fraction}",
                        event.label()
                    ));
                }
                if !inflation.is_finite() || *inflation < 1.0 {
                    return bad(format!(
                        "rank inflation must be finite and ≥ 1, got {inflation}"
                    ));
                }
            }
            ScenarioEvent::Repartition { slices } => {
                if *slices == 0 {
                    return bad("a repartition needs at least one slice".into());
                }
            }
            ScenarioEvent::PartitionBands { bands, .. } => {
                if *bands < 2 {
                    return bad(format!(
                        "a network partition needs at least 2 bands, got {bands}"
                    ));
                }
            }
            ScenarioEvent::Heal => {}
            ScenarioEvent::DropRate { rate } => {
                if !rate.is_finite() || !(0.0..1.0).contains(rate) {
                    return bad(format!("drop rate must lie in [0, 1), got {rate}"));
                }
            }
            ScenarioEvent::RegionLatency { model, .. } => {
                model.validate()?;
            }
            ScenarioEvent::AdaptiveLiars { fraction, attacker } => {
                if !(0.0..=1.0).contains(fraction) || *fraction <= 0.0 {
                    return bad(format!(
                        "`adaptive-liars` fraction must lie in (0, 1], got {fraction}"
                    ));
                }
                attacker.validate()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_places_events() {
        let s = Scenario::new("t")
            .for_cycles(100)
            .at_cycle(10)
            .join(5)
            .leave(3)
            .at_cycle(50)
            .flash_crowd(0.5);
        let cycles: Vec<usize> = s.events().iter().map(|te| te.cycle).collect();
        assert_eq!(cycles, vec![10, 10, 50]);
    }

    #[test]
    fn compile_sorts_stably_by_cycle() {
        let s = Scenario::new("t")
            .population(100)
            .for_cycles(100)
            .at_cycle(50)
            .join(1)
            .at_cycle(10)
            .leave(2)
            .at_cycle(50)
            .leave(3);
        let schedule = s.compile().unwrap();
        let got: Vec<(usize, &'static str)> = schedule
            .events
            .iter()
            .map(|te| (te.cycle, te.event.label()))
            .collect();
        assert_eq!(got, vec![(10, "leave"), (50, "join"), (50, "leave")]);
    }

    #[test]
    fn projection_tracks_population() {
        let s = Scenario::new("t")
            .population(100)
            .for_cycles(100)
            .at_cycle(10)
            .flash_crowd(1.0) // 100 join -> 200
            .at_cycle(20)
            .mass_leave(0.25) // 50 leave -> 150
            .at_cycle(30)
            .join(10)
            .leave(60); // same cycle: 150 - 60 + 10 = 100
        let schedule = s.compile().unwrap();
        assert_eq!(
            schedule.projection,
            vec![
                PopulationPoint { cycle: 10, n: 200 },
                PopulationPoint { cycle: 20, n: 150 },
                PopulationPoint { cycle: 30, n: 100 },
            ]
        );
        assert_eq!(schedule.final_population(), 100);
        assert_eq!(schedule.min_population(), 100);
    }

    #[test]
    fn emptying_the_population_is_rejected() {
        let s = Scenario::new("t")
            .population(10)
            .for_cycles(50)
            .at_cycle(5)
            .leave(10);
        assert!(s.compile().is_err());
        // Leaving all-but-one is fine.
        let s = Scenario::new("t")
            .population(10)
            .for_cycles(50)
            .at_cycle(5)
            .leave(9);
        assert_eq!(s.compile().unwrap().final_population(), 1);
    }

    #[test]
    fn out_of_range_events_are_rejected() {
        let base = || Scenario::new("t").population(100).for_cycles(50);
        assert!(base().at_cycle(0).join(1).compile().is_err());
        assert!(base().at_cycle(51).join(1).compile().is_err());
        assert!(base().at_cycle(10).join(0).compile().is_err());
        assert!(base().at_cycle(10).flash_crowd(-0.5).compile().is_err());
        assert!(base().at_cycle(10).mass_leave(1.0).compile().is_err());
        assert!(base().at_cycle(10).regional_failure(1.5).compile().is_err());
        assert!(base().at_cycle(10).lying_nodes(0.0, 2.0).compile().is_err());
        assert!(base().at_cycle(10).lying_nodes(0.5, 0.5).compile().is_err());
        assert!(base()
            .at_cycle(10)
            .lying_boundary_nodes(1.5, 2.0)
            .compile()
            .is_err());
        assert!(base()
            .at_cycle(10)
            .lying_boundary_nodes(0.1, 0.5)
            .compile()
            .is_err());
        assert!(base().at_cycle(10).repartition(0).compile().is_err());
        assert!(base().at_cycle(10).join(1).compile().is_ok());
        assert!(base()
            .at_cycle(10)
            .lying_boundary_nodes(0.1, 10.0)
            .compile()
            .is_ok());
    }

    #[test]
    fn fault_events_are_validated() {
        let base = || Scenario::new("t").population(100).for_cycles(50);
        assert!(base().at_cycle(10).partition_bands(1).compile().is_err());
        assert!(base().at_cycle(10).partition_bands(2).compile().is_ok());
        // A scheduled heal must fall strictly after the install cycle.
        assert!(base()
            .at_cycle(10)
            .partition_bands_until(2, 10)
            .compile()
            .is_err());
        assert!(base()
            .at_cycle(10)
            .partition_bands_until(2, 30)
            .compile()
            .is_ok());
        assert!(base().at_cycle(10).drop_rate(1.0).compile().is_err());
        assert!(base().at_cycle(10).drop_rate(-0.1).compile().is_err());
        assert!(base().at_cycle(10).drop_rate(f64::NAN).compile().is_err());
        assert!(base().at_cycle(10).drop_rate(0.25).compile().is_ok());
        assert!(base()
            .at_cycle(10)
            .adaptive_liars(0.0, AttackerSpec::Colluder { target: 0.9 })
            .compile()
            .is_err());
        assert!(
            base()
                .at_cycle(10)
                .adaptive_liars(0.2, AttackerSpec::Colluder { target: 2.0 })
                .compile()
                .is_err(),
            "the attacker spec itself must validate"
        );
        assert!(base()
            .at_cycle(10)
            .adaptive_liars(0.2, AttackerSpec::Colluder { target: 0.9 })
            .compile()
            .is_ok());
    }

    #[test]
    fn region_latency_needs_a_holding_partition() {
        let base = || Scenario::new("t").population(100).for_cycles(50);
        let slow = LatencyModel::Fixed { cycles: 3 };
        // No partition at all.
        assert!(base()
            .at_cycle(10)
            .region_latency(0, slow)
            .compile()
            .is_err());
        // Region index out of range for the installed band count.
        assert!(base()
            .at_cycle(10)
            .partition_bands(2)
            .at_cycle(12)
            .region_latency(2, slow)
            .compile()
            .is_err());
        // After an explicit heal the override has nothing to attach to.
        assert!(base()
            .at_cycle(10)
            .partition_bands(2)
            .at_cycle(20)
            .heal()
            .at_cycle(25)
            .region_latency(1, slow)
            .compile()
            .is_err());
        // Same once the scheduled heal has fired (heal cycle inclusive:
        // the engine heals before the cycle's exchanges run).
        assert!(base()
            .at_cycle(10)
            .partition_bands_until(2, 20)
            .at_cycle(20)
            .region_latency(1, slow)
            .compile()
            .is_err());
        // Inside the holding window the override compiles; a degenerate
        // latency model is still rejected.
        assert!(base()
            .at_cycle(10)
            .partition_bands_until(2, 30)
            .at_cycle(12)
            .region_latency(1, slow)
            .compile()
            .is_ok());
        assert!(base()
            .at_cycle(10)
            .partition_bands(2)
            .at_cycle(12)
            .region_latency(1, LatencyModel::Uniform { min: 5, max: 2 })
            .compile()
            .is_err());
    }

    #[test]
    fn degenerate_protocol_parameters_fail_compilation() {
        let bad = Scenario::new("t")
            .population(100)
            .for_cycles(50)
            .with_protocol(ProtocolKind::SlidingRanking { window: 0 });
        assert!(bad.compile().is_err());
        let ok = Scenario::new("t")
            .population(100)
            .for_cycles(50)
            .with_protocol(ProtocolKind::SlidingRanking { window: 64 });
        assert!(ok.compile().is_ok());
    }

    #[test]
    fn fraction_count_convention() {
        assert_eq!(fraction_count(1000, 0.001), 1);
        assert_eq!(fraction_count(1000, 0.5), 500);
        assert_eq!(
            fraction_count(10, 0.0001),
            1,
            "positive fractions round up to 1"
        );
        assert_eq!(fraction_count(0, 0.5), 0);
        assert_eq!(fraction_count(100, 0.0), 0);
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let schedule = Scenario::new("t")
            .population(50)
            .for_cycles(60)
            .at_cycle(10)
            .shift_distribution(AttributeDistribution::Pareto {
                scale: 1.0,
                shape: 1.5,
            })
            .at_cycle(20)
            .lying_nodes(0.1, 5.0)
            .at_cycle(30)
            .partition_bands_until(2, 45)
            .at_cycle(32)
            .region_latency(1, LatencyModel::Uniform { min: 1, max: 3 })
            .at_cycle(35)
            .drop_rate(0.05)
            .at_cycle(40)
            .heal()
            .at_cycle(50)
            .adaptive_liars(
                0.1,
                AttackerSpec::Throttler {
                    accept_period: 2,
                    inflation: 8.0,
                },
            )
            .compile()
            .unwrap();
        let json = serde_json::to_string(&schedule).unwrap();
        let parsed: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, schedule);
    }
}
