//! The paper's Cyclon variant (Fig. 3).
//!
//! > Node `i` copies its view, selects the oldest neighbor `j` of its view,
//! > removes the entry `e_j` of `j` from the copy of its view, and finally
//! > sends the resulting copy to `j`. When `j` receives the view, `j` sends
//! > its own view back to `i` discarding possible pointers to `i`, and `i`
//! > and `j` update their view with the one they receive. This variant of
//! > Cyclon, as opposed to the original version, exchanges **all entries of
//! > the view** at each step.
//!
//! ## Exchange semantics: swap, not union
//!
//! Like the original Cyclon (Voulgaris et al. 2005), the exchange is a
//! **swap**: each side *replaces* its view with the entries it received,
//! topping up with its own freshest entries only if the payload falls short
//! of the capacity `c`. Duplicated ids and self-pointers are discarded
//! (lines 5–6 / 9–10 of Fig. 3).
//!
//! This conservation property is essential. A union-and-truncate merge
//! (keep the freshest `c` of both views) lets fresh self-descriptors crowd
//! out everything else: within tens of cycles one node's descriptor floods
//! every view, most nodes vanish from the overlay, the views freeze, and
//! every protocol on top halts — the overlay degenerates instead of staying
//! "reportedly the best approach to achieve a uniform random neighbor set"
//! (§4.3.1). The swap keeps the global multiset of pointers roughly
//! invariant (each node is referenced ≈ `c` times forever), which is what
//! makes the continuous stream of fresh samples the ranking algorithm
//! relies on actually uniform. The regression test
//! `overlay_stays_diverse_over_many_cycles` pins this property.

use crate::sampler::{ExchangeRequest, PeerSampler, SamplerKind};
use dslice_core::{NodeId, Result, View, ViewEntry};
use rand::RngCore;

/// The Cyclon-variant peer sampler of Fig. 3.
#[derive(Debug, Clone)]
pub struct CyclonSampler {
    owner: NodeId,
    view: View,
}

impl CyclonSampler {
    /// Creates a sampler for `owner` with view capacity `c`.
    pub fn new(owner: NodeId, capacity: usize) -> Result<Self> {
        Ok(CyclonSampler {
            owner,
            view: View::new(capacity)?,
        })
    }

    /// Replaces the view with `incoming` (self-pointers and duplicate ids
    /// dropped), topping up with the freshest previous entries if the
    /// payload is shorter than the capacity.
    fn replace_view(&mut self, incoming: &[ViewEntry]) {
        let capacity = self.view.capacity();
        let mut fresh = View::new(capacity).expect("capacity >= 1");
        for e in incoming {
            if e.id != self.owner && !fresh.contains(e.id) && fresh.len() < capacity {
                fresh.insert(*e);
            }
        }
        if fresh.len() < capacity {
            // Top up with our freshest previous entries.
            let mut old: Vec<ViewEntry> = self.view.entries().to_vec();
            old.sort_by(|a, b| a.age.cmp(&b.age).then_with(|| a.id.cmp(&b.id)));
            for e in old {
                if fresh.len() >= capacity {
                    break;
                }
                if e.id != self.owner && !fresh.contains(e.id) {
                    fresh.insert(e);
                }
            }
        }
        self.view = fresh;
    }
}

impl PeerSampler for CyclonSampler {
    fn owner(&self) -> NodeId {
        self.owner
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::Cyclon
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    fn initiate(
        &mut self,
        self_entry: ViewEntry,
        rng: &mut dyn RngCore,
    ) -> Option<ExchangeRequest> {
        let partner = self.schedule_exchange(rng)?;
        Some(self.initiate_with(partner, self_entry, rng))
    }

    fn schedule_exchange(&mut self, _rng: &mut dyn RngCore) -> Option<NodeId> {
        // Line 1: age every entry.
        self.view.increment_ages();
        // Line 2: pick the oldest neighbor.
        Some(self.view.oldest()?.id)
    }

    fn initiate_with(
        &mut self,
        partner: NodeId,
        self_entry: ViewEntry,
        _rng: &mut dyn RngCore,
    ) -> ExchangeRequest {
        // Line 3: the request payload is the view copy, minus the partner's
        // own entry, plus a fresh self-descriptor.
        let mut entries: Vec<ViewEntry> = self
            .view
            .iter()
            .filter(|e| e.id != partner)
            .copied()
            .collect();
        entries.push(self_entry);
        ExchangeRequest { partner, entries }
    }

    fn handle_request(
        &mut self,
        self_entry: ViewEntry,
        from: NodeId,
        entries: &[ViewEntry],
    ) -> Vec<ViewEntry> {
        // Line 8: reply with the pre-merge view, discarding pointers to the
        // requester, plus a fresh self-descriptor so the requester learns
        // our current value.
        let mut reply: Vec<ViewEntry> =
            self.view.iter().filter(|e| e.id != from).copied().collect();
        reply.push(self_entry);
        // Lines 9–10: adopt the received entries (swap).
        self.replace_view(entries);
        reply
    }

    fn handle_reply(&mut self, _from: NodeId, entries: &[ViewEntry]) {
        // Lines 5–6: adopt the received entries (swap).
        self.replace_view(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::Attribute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn entry(id: u64, age: u32) -> ViewEntry {
        ViewEntry::with_age(NodeId::new(id), age, attr(id as f64), 0.5)
    }

    fn descriptor(id: u64) -> ViewEntry {
        ViewEntry::new(NodeId::new(id), attr(id as f64), 0.5)
    }

    #[test]
    fn initiate_targets_oldest_and_excludes_it() {
        let mut s = CyclonSampler::new(NodeId::new(0), 4).unwrap();
        s.view_mut().insert(entry(1, 5));
        s.view_mut().insert(entry(2, 1));
        s.view_mut().insert(entry(3, 9));
        let mut rng = StdRng::seed_from_u64(1);
        let req = s.initiate(descriptor(0), &mut rng).unwrap();
        assert_eq!(req.partner, NodeId::new(3), "oldest after aging");
        assert!(
            req.entries.iter().all(|e| e.id != NodeId::new(3)),
            "partner's entry removed from payload"
        );
        assert!(
            req.entries
                .iter()
                .any(|e| e.id == NodeId::new(0) && e.age == 0),
            "fresh self-descriptor included"
        );
        // Aging happened before selection.
        assert_eq!(s.view().get(NodeId::new(2)).unwrap().age, 2);
    }

    #[test]
    fn initiate_on_empty_view_returns_none() {
        let mut s = CyclonSampler::new(NodeId::new(0), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.initiate(descriptor(0), &mut rng).is_none());
    }

    #[test]
    fn handle_request_replies_preimage_and_adopts_payload() {
        let mut s = CyclonSampler::new(NodeId::new(9), 4).unwrap();
        s.view_mut().insert(entry(1, 1));
        s.view_mut().insert(entry(7, 2)); // the requester: filtered from reply
        let reply = s.handle_request(descriptor(9), NodeId::new(7), &[entry(2, 0), entry(3, 1)]);
        assert!(reply.iter().any(|e| e.id == NodeId::new(1)));
        assert!(reply.iter().all(|e| e.id != NodeId::new(7)));
        assert!(
            reply.iter().any(|e| e.id == NodeId::new(9)),
            "self descriptor"
        );
        // Swap semantics: the incoming payload forms the new view…
        assert!(s.view().contains(NodeId::new(2)));
        assert!(s.view().contains(NodeId::new(3)));
        // …topped up with previous entries (capacity 4, payload 2).
        assert!(s.view().contains(NodeId::new(1)));
        assert!(s.view().contains(NodeId::new(7)));
    }

    #[test]
    fn replace_discards_self_and_duplicates_and_respects_capacity() {
        let mut s = CyclonSampler::new(NodeId::new(0), 2).unwrap();
        s.view_mut().insert(entry(1, 3));
        s.replace_view(&[
            entry(0, 0), // self pointer → dropped
            entry(5, 1),
            entry(5, 0), // duplicate id → first occurrence wins
            entry(6, 2),
            entry(7, 0), // beyond capacity → dropped
        ]);
        assert_eq!(s.view().len(), 2);
        assert!(s.view().contains(NodeId::new(5)));
        assert!(s.view().contains(NodeId::new(6)));
        s.view().check_invariants(Some(NodeId::new(0))).unwrap();
    }

    #[test]
    fn full_exchange_swaps_views() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let mut sa = CyclonSampler::new(a, 3).unwrap();
        let mut sb = CyclonSampler::new(b, 3).unwrap();
        sa.view_mut().insert(entry(1, 3)); // a knows b
        sa.view_mut().insert(entry(2, 1));
        sb.view_mut().insert(entry(3, 2));
        sb.view_mut().insert(entry(4, 0));

        let mut rng = StdRng::seed_from_u64(1);
        let req = sa.initiate(descriptor(0), &mut rng).unwrap();
        assert_eq!(req.partner, b);
        let reply = sb.handle_request(descriptor(1), a, &req.entries);
        sa.handle_reply(b, &reply);

        sa.view().check_invariants(Some(a)).unwrap();
        sb.view().check_invariants(Some(b)).unwrap();
        // b adopted a's payload: a's descriptor and node 2.
        assert!(sb.view().contains(a));
        assert!(sb.view().contains(NodeId::new(2)));
        // a adopted b's reply: b's descriptor and b's old neighbors.
        assert!(sa.view().contains(b));
        assert!(sa.view().contains(NodeId::new(3)));
        assert!(sa.view().contains(NodeId::new(4)));
    }

    #[test]
    fn exchange_never_installs_self_pointer() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let mut sa = CyclonSampler::new(a, 3).unwrap();
        let mut sb = CyclonSampler::new(b, 3).unwrap();
        sa.view_mut().insert(entry(1, 1));
        sb.view_mut().insert(entry(0, 4)); // b already knows a
        let mut rng = StdRng::seed_from_u64(2);
        let req = sa.initiate(descriptor(0), &mut rng).unwrap();
        let reply = sb.handle_request(descriptor(1), a, &req.entries);
        sa.handle_reply(b, &reply);
        assert!(!sa.view().contains(a), "no self pointer at a");
        assert!(!sb.view().contains(b), "no self pointer at b");
    }

    #[test]
    fn remove_dead_prunes_view() {
        let mut s = CyclonSampler::new(NodeId::new(0), 4).unwrap();
        s.view_mut().insert(entry(1, 0));
        s.view_mut().insert(entry(2, 0));
        s.remove_dead(&|id| id != NodeId::new(1));
        assert!(!s.view().contains(NodeId::new(1)));
        assert!(s.view().contains(NodeId::new(2)));
    }

    #[test]
    fn bootstrap_seeds_view() {
        let mut s = CyclonSampler::new(NodeId::new(0), 4).unwrap();
        s.bootstrap(&[entry(5, 0), entry(0, 0)]); // self pointer filtered
        assert!(s.view().contains(NodeId::new(5)));
        assert!(!s.view().contains(NodeId::new(0)));
    }

    /// Regression test for the overlay-degeneration bug: run a full overlay
    /// of Cyclon samplers for many cycles and verify the pointer
    /// distribution stays healthy (no node floods the views, almost no node
    /// vanishes, views keep rotating).
    #[test]
    fn overlay_stays_diverse_over_many_cycles() {
        const N: usize = 96;
        const C: usize = 8;
        let mut rng = StdRng::seed_from_u64(77);
        let mut samplers: Vec<CyclonSampler> = (0..N)
            .map(|i| CyclonSampler::new(NodeId::new(i as u64), C).unwrap())
            .collect();
        // Bootstrap: random initial neighbors.
        for (i, sampler) in samplers.iter_mut().enumerate() {
            for _ in 0..C {
                let j = rng.gen_range(0..N);
                if j != i {
                    sampler.view_mut().insert(entry(j as u64, 0));
                }
            }
        }
        let mut prev_views: Vec<Vec<u64>> = Vec::new();
        for cycle in 0..120 {
            for i in 0..N {
                let desc = descriptor(i as u64);
                let Some(req) = samplers[i].initiate(desc, &mut rng) else {
                    continue;
                };
                let p = req.partner.as_u64() as usize;
                let p_desc = descriptor(p as u64);
                let reply = samplers[p].handle_request(p_desc, NodeId::new(i as u64), &req.entries);
                samplers[i].handle_reply(req.partner, &reply);
            }
            if cycle == 119 {
                let mut indeg: HashMap<u64, usize> = HashMap::new();
                for s in &samplers {
                    for e in s.view().iter() {
                        *indeg.entry(e.id.as_u64()).or_default() += 1;
                    }
                }
                let max_in = indeg.values().max().copied().unwrap();
                let missing = N - indeg.len();
                assert!(
                    max_in <= 4 * C,
                    "in-degree concentration: max {max_in} > {}",
                    4 * C
                );
                assert!(
                    missing <= N / 20,
                    "{missing} nodes vanished from the overlay"
                );
            }
            let views: Vec<Vec<u64>> = samplers
                .iter()
                .map(|s| {
                    let mut ids: Vec<u64> = s.view().ids().map(|i| i.as_u64()).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect();
            if cycle > 100 {
                let changed = views
                    .iter()
                    .zip(&prev_views)
                    .filter(|(a, b)| a != b)
                    .count();
                assert!(
                    changed > N / 2,
                    "views frozen at cycle {cycle}: only {changed}/{N} changed"
                );
            }
            prev_views = views;
        }
    }
}
