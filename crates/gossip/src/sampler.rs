//! The [`PeerSampler`] interface.
//!
//! A peer sampler owns a node's [`View`] and refreshes it by periodic
//! pairwise exchanges. The interface is deliberately message-shaped — an
//! exchange is `initiate` (active side) → `handle_request` (passive side) →
//! `handle_reply` (active side) — so that:
//!
//! * the **cycle simulator** can run the three phases back-to-back, which is
//!   exactly the atomic view exchange of the paper's PeerSim setup (§4.5);
//! * the **network runtime** can ship the two payloads as real `ViewReq` /
//!   `ViewAck` messages.

use dslice_core::{NodeId, View, ViewEntry};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which peer-sampling substrate to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SamplerKind {
    /// The paper's Cyclon variant (Fig. 3): full-view swap with the oldest
    /// neighbor. The default.
    Cyclon,
    /// Newscast-style: random partner, freshest-`c` merge.
    Newscast,
    /// Lpbcast-style: push-only digests, random eviction.
    Lpbcast,
    /// Idealized uniform sampler refilled by the runtime each cycle
    /// (the "uniform" curve of Fig. 6(b)).
    UniformOracle,
}

impl fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerKind::Cyclon => write!(f, "cyclon"),
            SamplerKind::Newscast => write!(f, "newscast"),
            SamplerKind::Lpbcast => write!(f, "lpbcast"),
            SamplerKind::UniformOracle => write!(f, "uniform"),
        }
    }
}

/// Static sampler configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Which substrate to instantiate.
    pub kind: SamplerKind,
    /// View capacity `c`.
    pub capacity: usize,
}

impl SamplerConfig {
    /// The paper's default: Cyclon variant with view size `c`.
    pub fn cyclon(capacity: usize) -> Self {
        SamplerConfig {
            kind: SamplerKind::Cyclon,
            capacity,
        }
    }
}

/// The outcome of starting an exchange on the active side.
#[derive(Clone, Debug, PartialEq)]
pub struct ExchangeRequest {
    /// The chosen gossip partner.
    pub partner: NodeId,
    /// The entries to send (`N_i \ {e_j} ∪ {⟨i,0,a_i,r_i⟩}` for Cyclon).
    pub entries: Vec<ViewEntry>,
}

/// A peer-sampling service instance owned by one node.
pub trait PeerSampler: Send {
    /// The owning node.
    fn owner(&self) -> NodeId;

    /// Which substrate this is.
    fn kind(&self) -> SamplerKind;

    /// Read access to the current view.
    fn view(&self) -> &View;

    /// Mutable access to the current view (used by the runtime for value
    /// refreshes and churn cleanup).
    fn view_mut(&mut self) -> &mut View;

    /// Active side, phase 1: age the view, pick a partner, build the request
    /// payload. Returns `None` when the view is empty (isolated node) or the
    /// substrate does not gossip (the uniform oracle).
    fn initiate(&mut self, self_entry: ViewEntry, rng: &mut dyn RngCore)
        -> Option<ExchangeRequest>;

    /// Schedule half of a **schedule-then-execute** runtime: age the view
    /// and choose the partner [`initiate`](PeerSampler::initiate) would
    /// pick, *without* building the payload. The runtime collects every
    /// node's choice up front, partitions the pairs into conflict-free
    /// batches, and later calls
    /// [`initiate_with`](PeerSampler::initiate_with) to build the payload at
    /// execution time (possibly on another thread).
    ///
    /// Any randomness must come from `rng`, and the *same* stream must be
    /// handed back to `initiate_with` so the pair (choice, payload) consumes
    /// exactly the draws `initiate` would.
    ///
    /// The default declines to gossip (`None`) — correct for oracle-refilled
    /// substrates. **A substrate that gossips must override this** (together
    /// with [`initiate_with`](PeerSampler::initiate_with)): the cycle
    /// simulator drives membership exclusively through the split path, so a
    /// sampler implementing only the combined
    /// [`initiate`](PeerSampler::initiate) would never exchange views there.
    fn schedule_exchange(&mut self, rng: &mut dyn RngCore) -> Option<NodeId> {
        let _ = rng;
        None
    }

    /// Execute half of a schedule-then-execute runtime: build the request
    /// payload for `partner`, chosen earlier by
    /// [`schedule_exchange`](PeerSampler::schedule_exchange). The view must
    /// **not** be re-aged (aging happened at schedule time). The view seen
    /// here may differ from the one the partner was chosen from — the node
    /// may have responded to other exchanges in earlier batches.
    ///
    /// The default sends only the fresh self-descriptor; substrates that can
    /// return a partner from `schedule_exchange` override it.
    fn initiate_with(
        &mut self,
        partner: NodeId,
        self_entry: ViewEntry,
        rng: &mut dyn RngCore,
    ) -> ExchangeRequest {
        let _ = rng;
        ExchangeRequest {
            partner,
            entries: vec![self_entry],
        }
    }

    /// Passive side: absorb the request payload, produce the reply payload
    /// (the passive node's view, minus pointers to the requester).
    fn handle_request(
        &mut self,
        self_entry: ViewEntry,
        from: NodeId,
        entries: &[ViewEntry],
    ) -> Vec<ViewEntry>;

    /// Active side, phase 2: absorb the reply payload.
    fn handle_reply(&mut self, from: NodeId, entries: &[ViewEntry]);

    /// Drops entries for nodes that are no longer alive. Runtimes call this
    /// after churn so protocols never gossip with the departed.
    fn remove_dead(&mut self, is_alive: &dyn Fn(NodeId) -> bool) {
        self.view_mut().retain(is_alive);
    }

    /// Seeds the view with bootstrap entries (used at join time).
    fn bootstrap(&mut self, entries: &[ViewEntry]) {
        let owner = self.owner();
        self.view_mut().merge(owner, entries);
    }

    /// Replaces the whole view with `entries` — the oracle-refill path of
    /// idealized substrates, where the runtime re-draws a fresh uniform
    /// sample every cycle instead of gossiping for it.
    fn refill(&mut self, entries: &[ViewEntry]) {
        let view = self.view_mut();
        view.retain(|_| false);
        for e in entries {
            view.insert(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(SamplerKind::Cyclon.to_string(), "cyclon");
        assert_eq!(SamplerKind::Newscast.to_string(), "newscast");
        assert_eq!(SamplerKind::UniformOracle.to_string(), "uniform");
    }

    #[test]
    fn config_constructor() {
        let cfg = SamplerConfig::cyclon(20);
        assert_eq!(cfg.kind, SamplerKind::Cyclon);
        assert_eq!(cfg.capacity, 20);
    }

    /// The schedule-then-execute split must be a pure refactoring of
    /// `initiate`: same partner, same payload, same post-state, same rng
    /// consumption — for every gossiping substrate.
    #[test]
    fn split_exchange_matches_combined_initiate() {
        use crate::{CyclonSampler, LpbcastSampler, NewscastSampler, UniformOracle};
        use dslice_core::Attribute;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        fn entry(id: u64, age: u32) -> ViewEntry {
            ViewEntry::with_age(
                NodeId::new(id),
                age,
                Attribute::new(id as f64).unwrap(),
                0.5,
            )
        }

        fn check(mut combined: Box<dyn PeerSampler>, mut split: Box<dyn PeerSampler>, seed: u64) {
            for i in 1..=6 {
                combined.view_mut().insert(entry(i, i as u32 % 3));
                split.view_mut().insert(entry(i, i as u32 % 3));
            }
            let self_entry = entry(combined.owner().as_u64(), 0);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let direct = combined.initiate(self_entry, &mut rng_a);
            let staged = split
                .schedule_exchange(&mut rng_b)
                .map(|partner| split.initiate_with(partner, self_entry, &mut rng_b));
            assert_eq!(direct, staged, "{} diverged", combined.kind());
            assert_eq!(
                combined.view().entries(),
                split.view().entries(),
                "{} post-state diverged",
                combined.kind()
            );
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "rng draw counts differ");
        }

        let owner = NodeId::new(0);
        check(
            Box::new(CyclonSampler::new(owner, 8).unwrap()),
            Box::new(CyclonSampler::new(owner, 8).unwrap()),
            11,
        );
        check(
            Box::new(NewscastSampler::new(owner, 8).unwrap()),
            Box::new(NewscastSampler::new(owner, 8).unwrap()),
            12,
        );
        check(
            Box::new(LpbcastSampler::new(owner, 8).unwrap()),
            Box::new(LpbcastSampler::new(owner, 8).unwrap()),
            13,
        );
        // The oracle declines both paths.
        let mut oracle = UniformOracle::new(owner, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        assert!(oracle.schedule_exchange(&mut rng).is_none());
        assert!(oracle.initiate(entry(1, 0), &mut rng).is_none());
    }
}
