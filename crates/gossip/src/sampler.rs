//! The [`PeerSampler`] interface.
//!
//! A peer sampler owns a node's [`View`] and refreshes it by periodic
//! pairwise exchanges. The interface is deliberately message-shaped — an
//! exchange is `initiate` (active side) → `handle_request` (passive side) →
//! `handle_reply` (active side) — so that:
//!
//! * the **cycle simulator** can run the three phases back-to-back, which is
//!   exactly the atomic view exchange of the paper's PeerSim setup (§4.5);
//! * the **network runtime** can ship the two payloads as real `ViewReq` /
//!   `ViewAck` messages.

use dslice_core::{NodeId, View, ViewEntry};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which peer-sampling substrate to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SamplerKind {
    /// The paper's Cyclon variant (Fig. 3): full-view swap with the oldest
    /// neighbor. The default.
    Cyclon,
    /// Newscast-style: random partner, freshest-`c` merge.
    Newscast,
    /// Lpbcast-style: push-only digests, random eviction.
    Lpbcast,
    /// Idealized uniform sampler refilled by the runtime each cycle
    /// (the "uniform" curve of Fig. 6(b)).
    UniformOracle,
}

impl fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerKind::Cyclon => write!(f, "cyclon"),
            SamplerKind::Newscast => write!(f, "newscast"),
            SamplerKind::Lpbcast => write!(f, "lpbcast"),
            SamplerKind::UniformOracle => write!(f, "uniform"),
        }
    }
}

/// Static sampler configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Which substrate to instantiate.
    pub kind: SamplerKind,
    /// View capacity `c`.
    pub capacity: usize,
}

impl SamplerConfig {
    /// The paper's default: Cyclon variant with view size `c`.
    pub fn cyclon(capacity: usize) -> Self {
        SamplerConfig {
            kind: SamplerKind::Cyclon,
            capacity,
        }
    }
}

/// The outcome of starting an exchange on the active side.
#[derive(Clone, Debug, PartialEq)]
pub struct ExchangeRequest {
    /// The chosen gossip partner.
    pub partner: NodeId,
    /// The entries to send (`N_i \ {e_j} ∪ {⟨i,0,a_i,r_i⟩}` for Cyclon).
    pub entries: Vec<ViewEntry>,
}

/// A peer-sampling service instance owned by one node.
pub trait PeerSampler: Send {
    /// The owning node.
    fn owner(&self) -> NodeId;

    /// Which substrate this is.
    fn kind(&self) -> SamplerKind;

    /// Read access to the current view.
    fn view(&self) -> &View;

    /// Mutable access to the current view (used by the runtime for value
    /// refreshes and churn cleanup).
    fn view_mut(&mut self) -> &mut View;

    /// Active side, phase 1: age the view, pick a partner, build the request
    /// payload. Returns `None` when the view is empty (isolated node) or the
    /// substrate does not gossip (the uniform oracle).
    fn initiate(&mut self, self_entry: ViewEntry, rng: &mut dyn RngCore)
        -> Option<ExchangeRequest>;

    /// Passive side: absorb the request payload, produce the reply payload
    /// (the passive node's view, minus pointers to the requester).
    fn handle_request(
        &mut self,
        self_entry: ViewEntry,
        from: NodeId,
        entries: &[ViewEntry],
    ) -> Vec<ViewEntry>;

    /// Active side, phase 2: absorb the reply payload.
    fn handle_reply(&mut self, from: NodeId, entries: &[ViewEntry]);

    /// Drops entries for nodes that are no longer alive. Runtimes call this
    /// after churn so protocols never gossip with the departed.
    fn remove_dead(&mut self, is_alive: &dyn Fn(NodeId) -> bool) {
        self.view_mut().retain(is_alive);
    }

    /// Seeds the view with bootstrap entries (used at join time).
    fn bootstrap(&mut self, entries: &[ViewEntry]) {
        let owner = self.owner();
        self.view_mut().merge(owner, entries);
    }

    /// Replaces the whole view with `entries` — the oracle-refill path of
    /// idealized substrates, where the runtime re-draws a fresh uniform
    /// sample every cycle instead of gossiping for it.
    fn refill(&mut self, entries: &[ViewEntry]) {
        let view = self.view_mut();
        view.retain(|_| false);
        for e in entries {
            view.insert(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(SamplerKind::Cyclon.to_string(), "cyclon");
        assert_eq!(SamplerKind::Newscast.to_string(), "newscast");
        assert_eq!(SamplerKind::UniformOracle.to_string(), "uniform");
    }

    #[test]
    fn config_constructor() {
        let cfg = SamplerConfig::cyclon(20);
        assert_eq!(cfg.kind, SamplerKind::Cyclon);
        assert_eq!(cfg.capacity, 20);
    }
}
