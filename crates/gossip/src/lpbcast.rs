//! Lpbcast-style peer sampler.
//!
//! Lpbcast (*lightweight probabilistic broadcast*; Eugster, Guerraoui,
//! Handurukande, Kouznetsov, Kermarrec 2003) is the third peer-sampling
//! substrate §4.3.1 of the paper names next to Newscast and Cyclon:
//!
//! > Several protocols may be used to provide a random and dynamic sampling
//! > in a peer to peer system such as Newscast, Cyclon or Lpbcast.
//!
//! Its membership layer differs from the other two in two ways that matter
//! for sampling quality:
//!
//! 1. **Push-only dissemination.** A node gossips a digest of its
//!    subscription list (a random subset of its view plus its own fresh
//!    descriptor) to a random partner; nothing flows back. Under the
//!    three-phase [`PeerSampler`] interface the reply payload is therefore
//!    empty, and a full "exchange" moves descriptors in one direction only.
//! 2. **Random eviction.** When the view overflows, the evicted entry is
//!    chosen *uniformly at random* rather than by age. This keeps old but
//!    live descriptors circulating longer (good for connectivity) at the
//!    cost of slower purging of stale ones — the reason the paper prefers
//!    the Cyclon variant, and a trade-off the ablation benches quantify.
//!
//! Unsubscriptions (departed nodes) are handled by the runtime through
//! [`PeerSampler::remove_dead`], standing in for Lpbcast's `unsubs` list.
//!
//! Eviction randomness is drawn from a private deterministic RNG seeded from
//! the owner id, so simulation runs stay reproducible even though
//! `handle_request` receives no runtime RNG.

use crate::sampler::{ExchangeRequest, PeerSampler, SamplerKind};
use dslice_core::{NodeId, Result, View, ViewEntry};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Default number of view entries included in each gossip digest.
pub const DEFAULT_DIGEST_SIZE: usize = 8;

/// An Lpbcast-style peer sampler: push-only digests, random eviction.
#[derive(Debug, Clone)]
pub struct LpbcastSampler {
    owner: NodeId,
    view: View,
    digest_size: usize,
    evict_rng: StdRng,
}

impl LpbcastSampler {
    /// Creates a sampler for `owner` with view capacity `c` and the default
    /// digest size.
    pub fn new(owner: NodeId, capacity: usize) -> Result<Self> {
        Self::with_digest_size(owner, capacity, DEFAULT_DIGEST_SIZE)
    }

    /// Creates a sampler with an explicit digest (gossip payload) size.
    pub fn with_digest_size(owner: NodeId, capacity: usize, digest_size: usize) -> Result<Self> {
        Ok(LpbcastSampler {
            owner,
            view: View::new(capacity)?,
            digest_size: digest_size.max(1),
            evict_rng: StdRng::seed_from_u64(owner.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        })
    }

    /// The digest size used by this sampler.
    pub fn digest_size(&self) -> usize {
        self.digest_size
    }

    /// Lpbcast merge: add unseen descriptors (preferring the younger copy of
    /// a duplicate), then trim back to capacity by *random* eviction.
    fn lpbcast_merge(&mut self, incoming: &[ViewEntry]) {
        let mut pool: Vec<ViewEntry> = self.view.entries().to_vec();
        for e in incoming {
            if e.id == self.owner {
                continue;
            }
            match pool.iter_mut().find(|p| p.id == e.id) {
                Some(existing) => {
                    if e.age < existing.age {
                        *existing = *e;
                    }
                }
                None => pool.push(*e),
            }
        }
        while pool.len() > self.view.capacity() {
            let victim = self.evict_rng.gen_range(0..pool.len());
            pool.swap_remove(victim);
        }
        let capacity = self.view.capacity();
        let mut fresh = View::new(capacity).expect("capacity >= 1");
        for e in pool {
            fresh.insert(e);
        }
        self.view = fresh;
    }

    /// Builds the digest payload: up to `digest_size` random view entries
    /// plus the fresh self-descriptor.
    fn digest(&self, self_entry: ViewEntry, rng: &mut dyn RngCore) -> Vec<ViewEntry> {
        let mut pool: Vec<ViewEntry> = self.view.entries().to_vec();
        // Partial Fisher–Yates: the first `digest_size` slots end up holding
        // a uniform sample without cloning the whole pool twice.
        let take = self.digest_size.min(pool.len());
        for i in 0..take {
            let j = i + (rng.next_u64() as usize) % (pool.len() - i);
            pool.swap(i, j);
        }
        pool.truncate(take);
        pool.push(self_entry);
        pool
    }
}

impl PeerSampler for LpbcastSampler {
    fn owner(&self) -> NodeId {
        self.owner
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::Lpbcast
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    fn initiate(
        &mut self,
        self_entry: ViewEntry,
        rng: &mut dyn RngCore,
    ) -> Option<ExchangeRequest> {
        let partner = self.schedule_exchange(rng)?;
        Some(self.initiate_with(partner, self_entry, rng))
    }

    fn schedule_exchange(&mut self, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.view.increment_ages();
        Some(self.view.random(rng)?.id)
    }

    fn initiate_with(
        &mut self,
        partner: NodeId,
        self_entry: ViewEntry,
        rng: &mut dyn RngCore,
    ) -> ExchangeRequest {
        let entries = self.digest(self_entry, rng);
        ExchangeRequest { partner, entries }
    }

    fn handle_request(
        &mut self,
        _self_entry: ViewEntry,
        _from: NodeId,
        entries: &[ViewEntry],
    ) -> Vec<ViewEntry> {
        self.lpbcast_merge(entries);
        Vec::new() // push-only: nothing flows back
    }

    fn handle_reply(&mut self, _from: NodeId, entries: &[ViewEntry]) {
        // Push-only protocol: the reply payload is empty. Merge defensively
        // anyway so a mixed-substrate runtime cannot lose descriptors.
        if !entries.is_empty() {
            self.lpbcast_merge(entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn entry(id: u64, age: u32) -> ViewEntry {
        ViewEntry::with_age(NodeId::new(id), age, attr(id as f64), 0.5)
    }

    fn descriptor(id: u64) -> ViewEntry {
        ViewEntry::new(NodeId::new(id), attr(id as f64), 0.5)
    }

    #[test]
    fn merge_respects_capacity_and_skips_self() {
        let mut s = LpbcastSampler::new(NodeId::new(0), 3).unwrap();
        s.view_mut().insert(entry(1, 5));
        s.view_mut().insert(entry(2, 3));
        s.lpbcast_merge(&[entry(3, 0), entry(4, 1), entry(0, 0)]);
        assert_eq!(s.view().len(), 3);
        assert!(!s.view().contains(NodeId::new(0)));
        s.view().check_invariants(Some(NodeId::new(0))).unwrap();
    }

    #[test]
    fn merge_prefers_younger_duplicate() {
        let mut s = LpbcastSampler::new(NodeId::new(0), 4).unwrap();
        s.view_mut().insert(entry(1, 6));
        s.lpbcast_merge(&[entry(1, 2)]);
        assert_eq!(s.view().get(NodeId::new(1)).unwrap().age, 2);
    }

    #[test]
    fn random_eviction_is_not_age_biased() {
        // Fill to capacity, merge one newcomer many times across fresh
        // samplers: the oldest entry must survive in a non-trivial fraction
        // of runs (age-based eviction would always kill it).
        let mut survived = 0;
        for seed in 0..200u64 {
            let mut s = LpbcastSampler::new(NodeId::new(seed + 1000), 4).unwrap();
            s.view_mut().insert(entry(1, 99)); // oldest
            for i in 2..=4 {
                s.view_mut().insert(entry(i, 0));
            }
            s.lpbcast_merge(&[entry(5, 0)]);
            if s.view().contains(NodeId::new(1)) {
                survived += 1;
            }
        }
        assert!(
            survived > 100,
            "oldest survived only {survived}/200 merges; eviction looks age-biased"
        );
    }

    #[test]
    fn digest_is_bounded_and_contains_self() {
        let mut s = LpbcastSampler::with_digest_size(NodeId::new(0), 20, 4).unwrap();
        for i in 1..=20 {
            s.view_mut().insert(entry(i, 0));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let req = s.initiate(descriptor(0), &mut rng).unwrap();
        assert_eq!(req.entries.len(), 5, "4 digest entries + self descriptor");
        assert!(req.entries.iter().any(|e| e.id == NodeId::new(0)));
        // Digest entries are distinct.
        for (i, a) in req.entries.iter().enumerate() {
            for b in &req.entries[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn exchange_is_push_only() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let mut sa = LpbcastSampler::new(a, 4).unwrap();
        let mut sb = LpbcastSampler::new(b, 4).unwrap();
        sa.view_mut().insert(entry(1, 2));
        sb.view_mut().insert(entry(7, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let req = sa.initiate(descriptor(0), &mut rng).unwrap();
        let reply = sb.handle_request(descriptor(1), a, &req.entries);
        assert!(reply.is_empty(), "lpbcast never replies");
        sa.handle_reply(b, &reply);
        assert!(sb.view().contains(a), "b learned a's descriptor");
        assert!(
            !sa.view().contains(NodeId::new(7)),
            "push-only: a learned nothing from b"
        );
    }

    #[test]
    fn initiate_on_empty_view_returns_none() {
        let mut s = LpbcastSampler::new(NodeId::new(0), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(s.initiate(descriptor(0), &mut rng).is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_entries() -> impl Strategy<Value = Vec<ViewEntry>> {
            proptest::collection::vec((0u64..40, 0u32..50), 0..20)
                .prop_map(|pairs| pairs.into_iter().map(|(id, age)| entry(id, age)).collect())
        }

        proptest! {
            /// Any merge sequence keeps the view within capacity, free of
            /// self-pointers, and free of duplicate ids.
            #[test]
            fn merge_preserves_view_invariants(
                capacity in 1usize..12,
                batches in proptest::collection::vec(arbitrary_entries(), 1..6),
            ) {
                let owner = NodeId::new(0);
                let mut s = LpbcastSampler::new(owner, capacity).unwrap();
                for batch in batches {
                    s.lpbcast_merge(&batch);
                    prop_assert!(s.view().check_invariants(Some(owner)).is_ok());
                }
            }

            /// Merging never loses an entry while there is room: the view
            /// after a merge contains every incoming id (≠ owner) whenever
            /// |view ∪ incoming| ≤ capacity.
            #[test]
            fn merge_is_lossless_under_capacity(
                entries in arbitrary_entries(),
            ) {
                let owner = NodeId::new(0);
                let mut distinct: Vec<u64> = entries
                    .iter()
                    .filter(|e| e.id != owner)
                    .map(|e| e.id.as_u64())
                    .collect();
                distinct.sort_unstable();
                distinct.dedup();
                let mut s = LpbcastSampler::new(owner, distinct.len().max(1)).unwrap();
                s.lpbcast_merge(&entries);
                for id in distinct {
                    prop_assert!(s.view().contains(NodeId::new(id)));
                }
            }

            /// The digest is a subset of view ∪ {self}, within size bounds.
            #[test]
            fn digest_is_a_bounded_subset(
                entries in arbitrary_entries(),
                digest_size in 1usize..8,
                seed in 0u64..1000,
            ) {
                let owner = NodeId::new(0);
                let mut s =
                    LpbcastSampler::with_digest_size(owner, 20, digest_size).unwrap();
                s.lpbcast_merge(&entries);
                let mut rng = StdRng::seed_from_u64(seed);
                if let Some(req) = s.initiate(descriptor(0), &mut rng) {
                    prop_assert!(req.entries.len() <= digest_size + 1);
                    for e in &req.entries {
                        prop_assert!(
                            e.id == owner || s.view().contains(e.id),
                            "digest leaked an unknown descriptor"
                        );
                    }
                    prop_assert!(req.entries.iter().any(|e| e.id == owner));
                }
            }
        }
    }

    #[test]
    fn descriptors_spread_through_a_small_network() {
        // 16 nodes in a ring of initial views; after enough push rounds every
        // node's view should hold descriptors beyond its ring neighbors.
        let n = 16u64;
        let mut samplers: Vec<LpbcastSampler> = (0..n)
            .map(|i| {
                let mut s = LpbcastSampler::new(NodeId::new(i), 6).unwrap();
                s.view_mut().insert(entry((i + 1) % n, 0));
                s
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            for i in 0..n as usize {
                let desc = descriptor(i as u64);
                let Some(req) = samplers[i].initiate(desc, &mut rng) else {
                    continue;
                };
                let partner = req.partner.as_u64() as usize;
                samplers[partner].handle_request(descriptor(partner as u64), desc.id, &req.entries);
            }
        }
        let mean_degree: f64 =
            samplers.iter().map(|s| s.view().len() as f64).sum::<f64>() / n as f64;
        assert!(
            mean_degree > 4.0,
            "views stayed thin (mean {mean_degree}); digests are not spreading"
        );
    }
}
